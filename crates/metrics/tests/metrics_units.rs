//! Unit tests for the evaluation metrics: similarity normalization,
//! script canonicalization, bin/category coverage arithmetic (including
//! the expected-coverage correction behind Table 1), aggregate statistics
//! on synthetic cells, and the JSON round-trip the grid cache relies on.

use proof_metrics::coverage::{bin_coverage, category_coverage, coverage_under};
use proof_metrics::experiment::{CellResult, TheoremOutcome};
use proof_metrics::levenshtein::{canonical_script, levenshtein, random_pair_baseline, similarity};
use proof_metrics::report::ResultSet;
use proof_oracle::tokenizer::bin_of;

// ------------------------------------------------------------- levenshtein

#[test]
fn edit_distance_basics() {
    assert_eq!(levenshtein("", ""), 0);
    assert_eq!(levenshtein("abc", "abc"), 0);
    assert_eq!(levenshtein("abc", ""), 3);
    assert_eq!(levenshtein("kitten", "sitting"), 3);
    assert_eq!(levenshtein("intros", "intro"), 1);
}

#[test]
fn similarity_is_normalized_and_symmetric() {
    assert_eq!(similarity("", ""), 1.0);
    assert_eq!(similarity("same", "same"), 1.0);
    for (a, b) in [("intros. auto.", "intros. lia."), ("x", ""), ("ab", "ba")] {
        let s = similarity(a, b);
        assert!((0.0..=1.0).contains(&s), "{a} / {b} -> {s}");
        assert_eq!(s, similarity(b, a));
    }
    assert!(similarity("intros. reflexivity.", "intros. reflexivity.") > 0.99);
    assert!(similarity("abcdef", "uvwxyz") < 0.2);
}

#[test]
fn canonical_script_drops_bullets_and_whitespace_noise() {
    let a = canonical_script("intros n.  - reflexivity. - simpl.\n  auto.");
    let b = canonical_script("intros n. reflexivity. simpl. auto.");
    assert_eq!(a, b);
    // Bullets of any depth are focus bookkeeping, not content.
    let c = canonical_script("+ * - intros.");
    assert_eq!(c, canonical_script("intros."));
}

#[test]
fn canonical_script_preserves_tactic_content() {
    let s = canonical_script("apply foo. rewrite <- bar in H.");
    assert!(s.contains("apply foo"));
    assert!(s.contains("rewrite <- bar in H"));
}

#[test]
fn random_pair_baseline_is_deterministic_and_sane() {
    let proofs: Vec<String> = (0..40)
        .map(|i| format!("intros x{i}. apply lemma_{i}. reflexivity."))
        .collect();
    let b1 = random_pair_baseline(&proofs, 200);
    let b2 = random_pair_baseline(&proofs, 200);
    assert_eq!(b1, b2, "baseline must be seeded");
    assert!((0.0..1.0).contains(&b1));
    // Identical corpora pin the baseline at 1.
    let same: Vec<String> = vec!["auto.".into(); 10];
    assert!(random_pair_baseline(&same, 50) > 0.99);
}

// ----------------------------------------------------------- synthetic cells

fn outcome(
    name: &str,
    category: &str,
    human: usize,
    out: &str,
    gen: Option<usize>,
) -> TheoremOutcome {
    TheoremOutcome {
        name: name.to_string(),
        file: "T".to_string(),
        category: category.to_string(),
        human_tokens: human,
        bin: bin_of(human),
        outcome: out.to_string(),
        script: (out == "proved").then(|| "auto.".to_string()),
        gen_tokens: gen,
        similarity: (out == "proved").then_some(0.5),
        queries: 3,
        pruned: 0,
        pruned_reasons: Default::default(),
    }
}

fn cell(outcomes: Vec<TheoremOutcome>) -> CellResult {
    CellResult {
        label: "synthetic".to_string(),
        setting: "hints".to_string(),
        variant: String::new(),
        outcomes,
    }
}

#[test]
fn rates_count_outcomes() {
    let c = cell(vec![
        outcome("a", "Utilities", 10, "proved", Some(8)),
        outcome("b", "Utilities", 20, "stuck", None),
        outcome("c", "CHL", 40, "fuelout", None),
        outcome("d", "CHL", 80, "proved", Some(120)),
    ]);
    assert_eq!(c.proved_rate(), 0.5);
    assert_eq!(c.rate_of("stuck"), 0.25);
    assert_eq!(c.rate_of("fuelout"), 0.25);
    assert_eq!(c.rate_of("nonsense"), 0.0);
}

#[test]
fn empty_cells_do_not_divide_by_zero() {
    let c = cell(vec![]);
    assert_eq!(c.proved_rate(), 0.0);
    assert_eq!(c.avg_similarity(), 0.0);
    assert_eq!(c.avg_length_ratio(), 0.0);
}

#[test]
fn length_ratio_uses_only_proved_theorems() {
    let c = cell(vec![
        outcome("a", "Utilities", 10, "proved", Some(5)), // 50%
        outcome("b", "Utilities", 10, "proved", Some(15)), // 150%
        outcome("c", "CHL", 10, "stuck", None),
    ]);
    assert!((c.avg_length_ratio() - 100.0).abs() < 1e-9);
}

#[test]
fn bin_coverage_tracks_per_bin_rates() {
    let c = cell(vec![
        outcome("a", "U", 8, "proved", Some(8)),   // bin 0
        outcome("b", "U", 8, "stuck", None),       // bin 0
        outcome("c", "U", 20, "proved", Some(20)), // bin 1
        outcome("d", "U", 600, "stuck", None),     // bin 6
    ]);
    let bc = bin_coverage(&c);
    let rates = bc.rates();
    assert_eq!(rates[0], Some(0.5));
    assert_eq!(rates[1], Some(1.0));
    assert_eq!(rates[2], None, "empty bin must be None, not 0%");
    assert_eq!(rates[6], Some(0.0));
    assert_eq!(bc.overall(), 0.5);
}

#[test]
fn coverage_under_reports_share_and_rate() {
    let c = cell(vec![
        outcome("a", "U", 8, "proved", Some(8)),
        outcome("b", "U", 20, "stuck", None),
        outcome("c", "U", 500, "stuck", None),
    ]);
    let (rate, share) = coverage_under(&c, 64);
    assert!((rate - 0.5).abs() < 1e-9);
    assert!((share - 2.0 / 3.0).abs() < 1e-9);
}

#[test]
fn category_expectation_corrects_for_length_mix() {
    // Two categories with identical *actual* coverage but different length
    // mixes: the long-proof category must get a lower expectation.
    let mut outs = Vec::new();
    // Short category: ten theorems in bin 0, half proved.
    for i in 0..10 {
        outs.push(outcome(
            &format!("s{i}"),
            "Utilities",
            8,
            if i < 5 { "proved" } else { "stuck" },
            Some(8),
        ));
    }
    // Long category: ten theorems in bin 3, half proved.
    for i in 0..10 {
        outs.push(outcome(
            &format!("l{i}"),
            "CHL",
            100,
            if i < 5 { "proved" } else { "stuck" },
            Some(100),
        ));
    }
    let c = cell(outs);
    let cats = category_coverage(&c);
    let find = |n: &str| cats.iter().find(|x| x.category == n).unwrap();
    let short = find("Utilities");
    let long = find("CHL");
    assert!((short.actual - 0.5).abs() < 1e-9);
    assert!((long.actual - 0.5).abs() < 1e-9);
    // The model proves 50% of bin-0 and 50% of bin-3 overall, so each
    // category's expectation equals its own bin mix folded over the global
    // curve — here both bins have global rate 0.5, hence expectation 0.5.
    assert!((short.expected - 0.5).abs() < 1e-9);
    assert!((long.expected - 0.5).abs() < 1e-9);
}

#[test]
fn category_expectation_follows_the_global_curve() {
    // Global curve: bin 0 proves at 100%, bin 3 at 0%. A category living
    // in bin 3 must be *expected* to fail, one in bin 0 to succeed.
    let mut outs = Vec::new();
    for i in 0..6 {
        outs.push(outcome(&format!("e{i}"), "Utilities", 8, "proved", Some(8)));
    }
    for i in 0..6 {
        outs.push(outcome(&format!("h{i}"), "CHL", 100, "stuck", None));
    }
    let c = cell(outs);
    let cats = category_coverage(&c);
    let find = |n: &str| cats.iter().find(|x| x.category == n).unwrap();
    assert!((find("Utilities").expected - 1.0).abs() < 1e-9);
    assert!(find("CHL").expected.abs() < 1e-9);
}

// ------------------------------------------------------------------ report

#[test]
fn result_sets_round_trip_through_json() {
    let rs = ResultSet {
        cells: vec![cell(vec![
            outcome("a", "Utilities", 10, "proved", Some(12)),
            outcome("b", "CHL", 90, "stuck", None),
        ])],
    };
    let json = rs.to_json();
    let back = ResultSet::from_json(&json).unwrap();
    assert_eq!(back.cells.len(), 1);
    assert_eq!(back.cells[0].outcomes.len(), 2);
    assert_eq!(back.cells[0].outcomes[0].name, "a");
    assert_eq!(back.cells[0].outcomes[0].gen_tokens, Some(12));
    assert!(back.cell("synthetic").is_some());
    assert!(back.cell("missing").is_none());
}

#[test]
fn malformed_json_is_an_error_not_a_panic() {
    assert!(ResultSet::from_json("{").is_err());
    assert!(ResultSet::from_json("{\"cells\": 3}").is_err());
}

// --------------------------------------------------------------- rendering

#[test]
fn fig1_render_contains_bins_and_rates() {
    use proof_metrics::report::render_fig1;
    let c = cell(vec![
        outcome("a", "Utilities", 8, "proved", Some(8)),
        outcome("b", "Utilities", 8, "proved", Some(9)),
        outcome("c", "CHL", 20, "stuck", None),
        outcome("d", "File System", 600, "stuck", None),
    ]);
    let s = render_fig1(&[&c], "Figure 1a");
    assert!(s.contains("Figure 1a"));
    assert!(s.contains("[0,16)"), "{s}");
    assert!(s.contains("100%"), "bin-0 rate missing: {s}");
    assert!(s.contains("50.0%"), "overall missing: {s}");
    // Empty bins render as a dash with their count, never as 0%.
    assert!(s.contains("-/0"), "{s}");
}

#[test]
fn table1_render_lists_all_three_categories() {
    use proof_metrics::report::render_table1;
    let c = cell(vec![
        outcome("a", "Utilities", 8, "proved", Some(8)),
        outcome("b", "CHL", 8, "stuck", None),
        outcome("c", "File System", 8, "stuck", None),
    ]);
    let s = render_table1(&[&c]);
    for col in ["Utilities", "CHL", "File System"] {
        assert!(s.contains(col), "{s}");
    }
    assert!(s.contains("100.0%"), "{s}");
}

#[test]
fn table2_render_pairs_vanilla_with_hints() {
    use proof_metrics::report::render_table2;
    let vanilla = cell(vec![outcome("a", "Utilities", 8, "stuck", None)]);
    let mut hints = cell(vec![outcome("a", "Utilities", 8, "proved", Some(8))]);
    hints.label = "synthetic (w/ hints)".into();
    let s = render_table2(&[(&vanilla, &hints)], 0.25);
    assert!(
        s.contains("0.0% -> 100.0%") || s.contains("0.0% -> 100.0"),
        "{s}"
    );
    assert!(s.contains("baseline: 0.250"), "{s}");
}
