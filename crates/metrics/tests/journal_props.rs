//! Property tests for the crash-safe progress journal: a run interrupted
//! at *any* byte — mid-line, mid-payload, between entries — must lose at
//! most the cell whose entry was torn, and a resume pass over the
//! survivors must reconstruct exactly the outcomes a clean run records.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proof_metrics::journal::Journal;
use proof_metrics::{CellResult, TheoremOutcome};
use proptest::prelude::*;

static CASE: AtomicU64 = AtomicU64::new(0);

fn scratch_journal() -> Journal {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let path: PathBuf =
        std::env::temp_dir().join(format!("journal-props-{}-{n}.jsonl", std::process::id()));
    let j = Journal::at(path);
    j.clear();
    j
}

/// A synthetic cell result whose content is a function of its index, so
/// equality checks catch any cross-cell mixup.
fn cell_result(i: usize, script: &str) -> CellResult {
    CellResult {
        label: format!("cell-{i}"),
        setting: if i.is_multiple_of(2) {
            "vanilla"
        } else {
            "hints"
        }
        .into(),
        variant: String::new(),
        outcomes: (0..=i % 3)
            .map(|k| TheoremOutcome {
                name: format!("thm_{i}_{k} \"{script}\""),
                file: format!("Mod{i}"),
                category: "log".into(),
                human_tokens: 10 + i,
                bin: i % 5,
                outcome: if k == 0 { "proved" } else { "stuck" }.into(),
                script: (k == 0).then(|| format!("{script}\nqed_{i}.")),
                gen_tokens: (k == 0).then_some(3 + i),
                similarity: (k == 0).then_some(1.0 / (i + 1) as f64),
                queries: (i * 7 + k) as u32,
                pruned: k as u32,
                pruned_reasons: BTreeMap::new(),
            })
            .collect(),
    }
}

fn same_result(a: &CellResult, b: &CellResult) -> bool {
    serde_json::to_string(a).unwrap() == serde_json::to_string(b).unwrap()
}

proptest! {
    #[test]
    fn truncated_journal_resumes_to_full_state(
        n_cells in 1usize..6,
        crashed_mask in 0u32..64,
        cut_millis in 0u32..1000,
        script in "[a-z\\\\\" \\.\\n]{0,16}",
    ) {
        let j = scratch_journal();
        let originals: Vec<(String, CellResult)> = (0..n_cells)
            .map(|i| (format!("key-{i}"), cell_result(i, &script)))
            .collect();
        // A run: every cell starts; some crash once and retry before
        // completing (bit i of the mask), all eventually complete.
        for (i, (key, result)) in originals.iter().enumerate() {
            j.record_start(key, &result.label);
            if crashed_mask & (1 << i) != 0 {
                j.record_crashed(key, &result.label, "injected: worker panic");
                j.record_start(key, &result.label);
            }
            j.record_done(key, result);
        }

        // The interruption: keep an arbitrary byte prefix of the file.
        let bytes = std::fs::read(j.path()).unwrap();
        let cut = (bytes.len() as u64 * cut_millis as u64 / 1000) as usize;
        std::fs::write(j.path(), &bytes[..cut]).unwrap();

        // Reading the torn journal: whatever survived must be exact, and
        // a `done` cell can only be one we actually wrote.
        let torn = j.load();
        for (key, result) in &torn.done {
            let original = originals.iter().find(|(k, _)| k == key);
            prop_assert!(original.is_some(), "journal invented a cell: {key}");
            prop_assert!(
                same_result(result, &original.unwrap().1),
                "torn journal corrupted cell {key}"
            );
        }

        // The resume pass: re-record every cell the torn journal lost.
        for (key, result) in &originals {
            if !torn.is_done(key) {
                j.record_start(key, &result.label);
                j.record_done(key, result);
            }
        }
        let resumed = j.load();
        for (key, result) in &originals {
            prop_assert!(resumed.is_done(key), "cell {key} lost after resume");
            prop_assert!(
                same_result(&resumed.done[key], result),
                "cell {key} diverged after resume"
            );
            // Attempts survive as a lower bound: at least the resume's own
            // start entry is visible (earlier ones may sit past the cut).
            prop_assert!(resumed.attempts_of(key) >= 1);
        }
        // No crash marker survives for a completed cell.
        prop_assert!(resumed.crashes.is_empty());
        j.clear();
    }
}
