//! The parallel runner's two contracts: bit-identical results regardless of
//! worker count, and a disk cache that round-trips a cell exactly.

use fscq_corpus::Corpus;
use proof_metrics::runner::{cell_cache_key, run_cell_jobs, run_indices_jobs, Runner};
use proof_metrics::{run_cell, CellConfig};
use proof_oracle::profiles::ModelProfile;
use proof_oracle::prompt::PromptSetting;

/// A small-budget cell that still exercises every outcome class.
fn small_cell() -> CellConfig {
    let mut cell = CellConfig::standard(ModelProfile::gpt4o(), PromptSetting::Hints);
    cell.search.query_limit = 4;
    cell
}

fn as_json(r: &proof_metrics::CellResult) -> String {
    serde_json::to_string(r).expect("serializable")
}

#[test]
fn parallel_is_bit_identical_to_serial() {
    let corpus = Corpus::load();
    let cell = small_cell();
    let serial = run_cell(&corpus, &cell);
    for jobs in [2, 4] {
        let parallel = run_cell_jobs(&corpus, &cell, jobs);
        // Serialized equality is the strongest observable check: every
        // outcome field (scripts, similarities, query counts) and the
        // corpus order must survive the work-stealing schedule.
        assert_eq!(
            as_json(&serial),
            as_json(&parallel),
            "jobs={jobs} diverged from serial"
        );
    }
}

#[test]
fn slice_evaluation_preserves_request_order() {
    let corpus = Corpus::load();
    let cell = small_cell();
    let all = cell.eval_indices(&corpus.dev);
    let slice: Vec<usize> = all.iter().rev().take(5).copied().collect();
    let outcomes = run_indices_jobs(&corpus, &cell, &slice, 3);
    assert_eq!(outcomes.len(), slice.len());
    for (o, &i) in outcomes.iter().zip(&slice) {
        assert_eq!(o.name, corpus.dev.theorems[i].name);
    }
}

#[test]
fn cell_cache_round_trips() {
    let corpus = Corpus::load();
    let cell = small_cell();
    let dir = std::path::Path::new("target/test-cells");
    let _ = std::fs::remove_dir_all(dir);

    let runner = Runner::from_env().with_jobs(2).with_cache_dir(dir);
    let first = runner.run_cell(&corpus, &cell);
    let second = runner.run_cell(&corpus, &cell);
    assert_eq!(as_json(&first), as_json(&second));

    let records = runner.bench_records();
    assert_eq!(records.len(), 2);
    assert!(!records[0].cache_hit, "first run must compute");
    assert!(records[1].cache_hit, "second run must load from disk");
    assert!(dir
        .join(format!("{}.json", cell_cache_key(&cell)))
        .is_file());

    // A different configuration must miss.
    let mut other = small_cell();
    other.search.query_limit = 5;
    let third = runner.run_cell(&corpus, &other);
    assert!(!runner.bench_records()[2].cache_hit);
    assert_ne!(as_json(&first), as_json(&third));

    let _ = std::fs::remove_dir_all(dir);
}
