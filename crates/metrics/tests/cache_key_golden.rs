//! Golden-key regression tests for the per-cell cache key.
//!
//! Cached per-theorem results are stored under files derived from
//! [`proof_metrics::runner::cell_cache_key`], and `prove --incremental`
//! additionally keys cone-level entries as `{cell_key}-{cone}.json`.  If the
//! key derivation changes silently, stale caches from an older layout are
//! reinterpreted under the new scheme (or vice versa) and incremental runs
//! can serve wrong results.  These tests pin the exact key strings for
//! representative configurations: any intentional change to the key inputs
//! must be accompanied by a `CACHE_SCHEMA` bump, which changes every key and
//! makes old cache files unreadable rather than wrongly readable.

use proof_metrics::runner::cell_cache_key;
use proof_metrics::CellConfig;
use proof_oracle::{ModelProfile, PromptSetting};

const BUMP_MSG: &str = "cell_cache_key changed for an existing configuration. If the key inputs \
     changed intentionally, bump CACHE_SCHEMA in crates/metrics/src/runner.rs \
     so stale cache files are invalidated instead of misread.";

fn golden(cell: &CellConfig, expected: &str) {
    let key = cell_cache_key(cell);
    assert_eq!(
        key.len(),
        16,
        "cache keys are 16 hex chars; got {key:?} for {}",
        cell.label()
    );
    assert_eq!(key, expected, "{} — {BUMP_MSG}", cell.label());
}

#[test]
fn golden_key_gpt4o_hints() {
    golden(
        &CellConfig::standard(ModelProfile::gpt4o(), PromptSetting::Hints),
        "d9cf883ecfcf594d",
    );
}

#[test]
fn golden_key_gpt4o_mini_vanilla() {
    golden(
        &CellConfig::standard(ModelProfile::gpt4o_mini(), PromptSetting::Vanilla),
        "9acd93b2da3dfb82",
    );
}

#[test]
fn golden_key_gpt4o_mini_hints() {
    golden(
        &CellConfig::standard(ModelProfile::gpt4o_mini(), PromptSetting::Hints),
        "21dc7442c4a6a655",
    );
}

#[test]
fn golden_key_variant_and_retrieval() {
    let mut cell = CellConfig::standard(ModelProfile::gpt4o_mini(), PromptSetting::Hints);
    cell.retrieval = Some(8);
    cell.variant = Some("premise-rank=on".to_string());
    golden(&cell, "d680d89e8dd35da5");
}

/// The schema version is part of the hashed representation, so distinct
/// configurations must still never collide under the current schema.
#[test]
fn golden_keys_are_pairwise_distinct() {
    let mut retr = CellConfig::standard(ModelProfile::gpt4o_mini(), PromptSetting::Hints);
    retr.retrieval = Some(8);
    retr.variant = Some("premise-rank=on".to_string());
    let cells = [
        CellConfig::standard(ModelProfile::gpt4o(), PromptSetting::Hints),
        CellConfig::standard(ModelProfile::gpt4o_mini(), PromptSetting::Vanilla),
        CellConfig::standard(ModelProfile::gpt4o_mini(), PromptSetting::Hints),
        retr,
    ];
    let keys: Vec<String> = cells.iter().map(cell_cache_key).collect();
    for i in 0..keys.len() {
        for j in (i + 1)..keys.len() {
            assert_ne!(
                keys[i],
                keys[j],
                "{} and {} must not share a cache key",
                cells[i].label(),
                cells[j].label()
            );
        }
    }
}
