//! The tracing layer's determinism contract: arming the collector must
//! not change a single byte of the primary experiment output. Timing is a
//! side channel — it never flows into outcomes, scripts, query counts,
//! cache keys, or anything else that is byte-compared or cached.

use std::sync::Mutex;

use fscq_corpus::Corpus;
use proof_metrics::runner::{cell_cache_key, Runner};
use proof_metrics::{run_cell, CellConfig};
use proof_oracle::profiles::ModelProfile;
use proof_oracle::prompt::PromptSetting;

/// Tracing's enabled flag is process-global; serialize the tests here.
static LOCK: Mutex<()> = Mutex::new(());

fn small_cell() -> CellConfig {
    let mut cell = CellConfig::standard(ModelProfile::gpt4o(), PromptSetting::Hints);
    cell.search.query_limit = 4;
    cell
}

#[test]
fn traced_run_is_byte_identical_to_untraced() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let corpus = Corpus::load();
    let cell = small_cell();

    proof_trace::set_enabled(false);
    let untraced = run_cell(&corpus, &cell);
    let untraced_json = serde_json::to_string(&untraced).unwrap();

    proof_trace::set_enabled(true);
    let _ = proof_trace::drain();
    let traced = run_cell(&corpus, &cell);
    let data = proof_trace::drain();
    proof_trace::set_enabled(false);
    let traced_json = serde_json::to_string(&traced).unwrap();

    // The whole point: the serialized cell — the unit every grid JSON,
    // cache file, and journal record is built from — must not move by one
    // byte when the collector is armed.
    assert_eq!(untraced_json, traced_json);
    // And the traced run must actually have been traced, or the assert
    // above proves nothing.
    assert!(
        data.spans.iter().any(|s| s.kind == "oracle"),
        "traced run recorded oracle spans"
    );
    assert!(
        data.spans.iter().any(|s| s.kind.starts_with("stm")),
        "traced run recorded stm spans"
    );
}

#[test]
fn tracing_does_not_change_the_cell_cache_key() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cell = small_cell();
    let before = cell_cache_key(&cell);
    proof_trace::set_enabled(true);
    let during = cell_cache_key(&cell);
    proof_trace::set_enabled(false);
    assert_eq!(before, during, "cache key is timing-free");
}

#[test]
fn bench_log_surfaces_fault_counters_and_outcome_labels() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let corpus = Corpus::load();
    let cell = small_cell();
    let dir = std::path::Path::new("target/test-trace-bench");
    let _ = std::fs::remove_dir_all(dir);
    let runner = Runner::from_env().with_jobs(1).with_cache_dir(dir);
    let _ = runner.run_cell(&corpus, &cell);
    let _ = runner.run_cell(&corpus, &cell);

    // Satellite contract: computed and cache-hit cells both carry a wall
    // time and an explicit source label.
    let records = runner.bench_records();
    assert_eq!(records[0].outcome, "computed");
    assert_eq!(records[1].outcome, "cache_hit");
    assert!(records.iter().all(|r| r.wall_ms >= 0.0));

    let path = dir.join("bench.json");
    runner.write_bench(&path, "trace determinism test").unwrap();
    let v: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    // The fault counters ride through the metrics registry into the bench
    // log (zero in this clean run, but the fields must exist).
    assert!(v.get("oracle_faults").and_then(|x| x.as_i64()).is_some());
    assert!(v.get("oracle_retries").and_then(|x| x.as_i64()).is_some());
    let _ = std::fs::remove_dir_all(dir);
}
