//! The tracing layer's determinism contract: arming the collector must
//! not change a single byte of the primary experiment output. Timing is a
//! side channel — it never flows into outcomes, scripts, query counts,
//! cache keys, or anything else that is byte-compared or cached.

use std::sync::Mutex;

use fscq_corpus::Corpus;
use proof_metrics::runner::{cell_cache_key, Runner};
use proof_metrics::{run_cell, CellConfig};
use proof_oracle::profiles::ModelProfile;
use proof_oracle::prompt::PromptSetting;

/// Tracing's enabled flag is process-global; serialize the tests here.
static LOCK: Mutex<()> = Mutex::new(());

fn small_cell() -> CellConfig {
    let mut cell = CellConfig::standard(ModelProfile::gpt4o(), PromptSetting::Hints);
    cell.search.query_limit = 4;
    cell
}

#[test]
fn traced_run_is_byte_identical_to_untraced() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let corpus = Corpus::load();
    let cell = small_cell();

    proof_trace::set_enabled(false);
    let untraced = run_cell(&corpus, &cell);
    let untraced_json = serde_json::to_string(&untraced).unwrap();

    proof_trace::set_enabled(true);
    let _ = proof_trace::drain();
    let traced = run_cell(&corpus, &cell);
    let data = proof_trace::drain();
    proof_trace::set_enabled(false);
    let traced_json = serde_json::to_string(&traced).unwrap();

    // The whole point: the serialized cell — the unit every grid JSON,
    // cache file, and journal record is built from — must not move by one
    // byte when the collector is armed.
    assert_eq!(untraced_json, traced_json);
    // And the traced run must actually have been traced, or the assert
    // above proves nothing.
    assert!(
        data.spans.iter().any(|s| s.kind == "oracle"),
        "traced run recorded oracle spans"
    );
    assert!(
        data.spans.iter().any(|s| s.kind.starts_with("stm")),
        "traced run recorded stm spans"
    );
}

#[test]
fn sampled_and_full_fidelity_runs_are_byte_identical() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let corpus = Corpus::load();
    let cell = small_cell();

    proof_trace::set_enabled(false);
    let untraced_json = serde_json::to_string(&run_cell(&corpus, &cell)).unwrap();

    // Aggressive sampling (1 in 64): most hot spans elide into residues.
    proof_trace::set_enabled(true);
    proof_trace::set_sample_rate(64);
    let _ = proof_trace::drain();
    let sampled_json = serde_json::to_string(&run_cell(&corpus, &cell)).unwrap();
    let sampled_data = proof_trace::drain();

    // Full fidelity (rate 1): every span records.
    proof_trace::set_sample_rate(1);
    let full_json = serde_json::to_string(&run_cell(&corpus, &cell)).unwrap();
    let full_data = proof_trace::drain();
    proof_trace::set_enabled(false);
    proof_trace::set_sample_rate(0); // back to env/default latching

    assert_eq!(untraced_json, sampled_json, "sampling changed the output");
    assert_eq!(untraced_json, full_json, "full tracing changed the output");
    // Sampling must actually thin the span stream and bank the elided
    // time as residues, or the byte-identity above tested nothing.
    assert!(
        sampled_data.spans.len() < full_data.spans.len(),
        "sampled {} vs full {} spans",
        sampled_data.spans.len(),
        full_data.spans.len()
    );
    assert!(
        !sampled_data.sampled.is_empty(),
        "elided spans must surface as residues"
    );
    // Residues are exact: phase self-time totals (recorded + residue)
    // must agree between the sampled and full runs to within scheduling
    // noise — the correction is accounting, not estimation. Counters are
    // unconditional, so the comparison keys exist in both runs.
    let phases = |data: &proof_trace::TraceData| {
        let spans: Vec<proof_trace::report::Span> = data
            .spans
            .iter()
            .map(|s| proof_trace::report::Span {
                id: s.id,
                parent: s.parent,
                tid: s.tid,
                kind: s.kind.to_string(),
                name: s.name.clone(),
                start_ns: s.start_ns,
                dur_ns: s.dur_ns,
            })
            .collect();
        proof_trace::report::phase_breakdown_full(&spans, &data.sampled)
    };
    let sampled_bd = phases(&sampled_data);
    let full_bd = phases(&full_data);
    for phase in ["stm", "frontier"] {
        assert!(
            sampled_bd.phases.contains_key(phase),
            "residue-corrected breakdown keeps phase `{phase}`"
        );
        assert!(
            full_bd.phases.contains_key(phase),
            "full breakdown has phase `{phase}`"
        );
    }
}

#[test]
fn tracing_does_not_change_the_cell_cache_key() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cell = small_cell();
    let before = cell_cache_key(&cell);
    proof_trace::set_enabled(true);
    let during = cell_cache_key(&cell);
    proof_trace::set_enabled(false);
    assert_eq!(before, during, "cache key is timing-free");
}

#[test]
fn bench_log_surfaces_fault_counters_and_outcome_labels() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let corpus = Corpus::load();
    let cell = small_cell();
    let dir = std::path::Path::new("target/test-trace-bench");
    let _ = std::fs::remove_dir_all(dir);
    let runner = Runner::from_env().with_jobs(1).with_cache_dir(dir);
    let _ = runner.run_cell(&corpus, &cell);
    let _ = runner.run_cell(&corpus, &cell);

    // Satellite contract: computed and cache-hit cells both carry a wall
    // time and an explicit source label.
    let records = runner.bench_records();
    assert_eq!(records[0].outcome, "computed");
    assert_eq!(records[1].outcome, "cache_hit");
    assert!(records.iter().all(|r| r.wall_ms >= 0.0));

    let path = dir.join("bench.json");
    runner.write_bench(&path, "trace determinism test").unwrap();
    let v: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    // The fault counters ride through the metrics registry into the bench
    // log (zero in this clean run, but the fields must exist).
    assert!(v.get("oracle_faults").and_then(|x| x.as_i64()).is_some());
    assert!(v.get("oracle_retries").and_then(|x| x.as_i64()).is_some());
    let _ = std::fs::remove_dir_all(dir);
}
