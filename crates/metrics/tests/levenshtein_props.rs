//! Property tests for the similarity metric.

use proof_metrics::levenshtein::{canonical_script, levenshtein, similarity};
use proptest::prelude::*;

proptest! {
    #[test]
    fn distance_is_a_metric(a in ".{0,24}", b in ".{0,24}", c in ".{0,24}") {
        // Identity and symmetry.
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        // Triangle inequality.
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    #[test]
    fn similarity_is_normalized(a in ".{0,32}", b in ".{0,32}") {
        let s = similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(similarity(&a, &a), 1.0);
    }

    #[test]
    fn canonicalization_is_idempotent(a in "[a-z;,\\. \\-\\+\\*]{0,48}") {
        let once = canonical_script(&a);
        prop_assert_eq!(canonical_script(&once), once.clone());
        // Canonical scripts never start with a bullet.
        prop_assert!(!once.starts_with(['-', '+', '*']));
    }
}
