//! The experiment runner: one *cell* is a (model configuration, prompt
//! setting) pair evaluated over a set of theorems.

use std::collections::{BTreeMap, BTreeSet};

use fscq_corpus::{Category, Corpus};
use minicoq_vernac::Development;
use proof_oracle::profiles::ModelProfile;
use proof_oracle::prompt::{build_prompt_cached, PromptCache, PromptConfig, PromptSetting};
use proof_oracle::split::{eval_set, eval_set_small, hint_set};
use proof_oracle::tokenizer::{bin_of, count_tokens};
use proof_oracle::SimulatedModel;
use proof_search::{search_with_recovery, Outcome, RecoveryConfig, SearchConfig};
use serde::{Deserialize, Serialize};

use crate::levenshtein::{canonical_script, similarity};

/// Which theorems a cell evaluates (§4 "Data").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalScope {
    /// All theorems outside the hint split (smaller models).
    Full,
    /// The reduced deterministic sample (larger models).
    Sampled,
}

/// One experiment cell.
#[derive(Debug, Clone)]
pub struct CellConfig {
    /// Model capability profile.
    pub profile: ModelProfile,
    /// Vanilla or hints.
    pub setting: PromptSetting,
    /// Evaluation scope.
    pub scope: EvalScope,
    /// Search hyper-parameters.
    pub search: SearchConfig,
    /// Simulator shape parameters (calibration sweeps).
    pub tuning: proof_oracle::sim::Tuning,
    /// Automated premise selection: keep only the top-k retrieved lemmas
    /// in the prompt (`None` = the paper's full-context protocol).
    pub retrieval: Option<usize>,
    /// Experiment-variant tag for A/B runs (e.g. `premise-rank=on`).
    /// Flows into [`CellConfig::label`], the persisted [`CellResult`], and
    /// the `BENCH_eval.json` timing records, so two cells that differ only
    /// in a search knob no longer collapse onto one ambiguous label.
    /// `None` (every standard cell) adds nothing anywhere.
    pub variant: Option<String>,
}

impl CellConfig {
    /// The standard cell for a profile and setting, with the paper's scope
    /// rule (larger models on the 10% sample).
    pub fn standard(profile: ModelProfile, setting: PromptSetting) -> CellConfig {
        let scope = if profile.is_large() {
            EvalScope::Sampled
        } else {
            EvalScope::Full
        };
        CellConfig {
            profile,
            setting,
            scope,
            search: SearchConfig::default(),
            tuning: proof_oracle::sim::Tuning::default(),
            retrieval: None,
            variant: None,
        }
    }

    /// Display label, e.g. `GPT-4o (w/ hints)`; a variant tag, when set,
    /// is appended as `GPT-4o (w/ hints) [premise-rank=on]`.
    pub fn label(&self) -> String {
        let base = match self.setting {
            PromptSetting::Vanilla => self.profile.name.to_string(),
            PromptSetting::Hints => format!("{} (w/ hints)", self.profile.name),
        };
        match &self.variant {
            Some(v) => format!("{base} [{v}]"),
            None => base,
        }
    }

    /// The theorem indices this cell evaluates, in corpus order.
    pub fn eval_indices(&self, dev: &Development) -> Vec<usize> {
        match self.scope {
            EvalScope::Full => eval_set(dev),
            EvalScope::Sampled => eval_set_small(dev),
        }
    }

    /// The prompt configuration this cell evaluates under.
    pub fn prompt_config(&self) -> PromptConfig {
        PromptConfig {
            setting: self.setting,
            window: Some(self.profile.window),
            minimal: false,
            retrieval: self.retrieval,
        }
    }

    /// A fresh simulated model for this cell. The simulator's randomness is
    /// a pure hash of (model, theorem, query, candidate), so every worker's
    /// clone behaves identically — parallel evaluation is bit-reproducible.
    pub fn model(&self) -> SimulatedModel {
        SimulatedModel::new(self.profile.clone()).with_tuning(self.tuning.clone())
    }
}

/// The per-theorem record a cell produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TheoremOutcome {
    /// Theorem name.
    pub name: String,
    /// Module name.
    pub file: String,
    /// Category label (Table 1).
    pub category: String,
    /// Token length of the human proof.
    pub human_tokens: usize,
    /// Figure 1 length bin.
    pub bin: usize,
    /// `proved` / `stuck` / `fuelout`.
    pub outcome: String,
    /// The found script, when proved.
    pub script: Option<String>,
    /// Token length of the found script.
    pub gen_tokens: Option<usize>,
    /// Normalized similarity to the human proof.
    pub similarity: Option<f64>,
    /// Model queries issued.
    pub queries: u32,
    /// Proposals pruned statically by the pre-flight analyzer.
    pub pruned: u32,
    /// Pre-flight prunes per reason code.
    pub pruned_reasons: BTreeMap<String, u32>,
}

/// A completed experiment cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResult {
    /// Display label.
    pub label: String,
    /// Prompt setting (`vanilla` / `hints`).
    pub setting: String,
    /// Experiment-variant tag ([`CellConfig::variant`]); empty for
    /// standard cells, and then absent from the JSON so standard grids
    /// serialize exactly as before the field existed.
    #[serde(default, skip_serializing_if = "String::is_empty")]
    pub variant: String,
    /// Per-theorem outcomes.
    pub outcomes: Vec<TheoremOutcome>,
}

impl CellResult {
    /// Fraction of theorems proved.
    pub fn proved_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .filter(|o| o.outcome == "proved")
            .count() as f64
            / self.outcomes.len() as f64
    }

    /// Fraction with the given outcome string.
    pub fn rate_of(&self, outcome: &str) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .filter(|o| o.outcome == outcome)
            .count() as f64
            / self.outcomes.len() as f64
    }

    /// Average similarity of generated proofs to human proofs.
    pub fn avg_similarity(&self) -> f64 {
        let vals: Vec<f64> = self.outcomes.iter().filter_map(|o| o.similarity).collect();
        if vals.is_empty() {
            return 0.0;
        }
        vals.iter().sum::<f64>() / vals.len() as f64
    }

    /// Average generated length as a percentage of the human length.
    pub fn avg_length_ratio(&self) -> f64 {
        let vals: Vec<f64> = self
            .outcomes
            .iter()
            .filter(|o| o.outcome == "proved")
            .filter_map(|o| {
                o.gen_tokens
                    .map(|g| g as f64 / o.human_tokens.max(1) as f64)
            })
            .collect();
        if vals.is_empty() {
            return 0.0;
        }
        100.0 * vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// Evaluates one theorem under a cell's configuration: build the prompt,
/// search, and classify. This is the unit of work shared by the serial
/// [`run_cell`] and the parallel [`runner`](crate::runner).
pub fn eval_theorem(
    dev: &Development,
    index: usize,
    hints: &BTreeSet<String>,
    prompt_cfg: &PromptConfig,
    search_cfg: &SearchConfig,
    model: &mut SimulatedModel,
    prompt_cache: &PromptCache,
) -> TheoremOutcome {
    eval_theorem_with_recovery(
        dev,
        index,
        hints,
        prompt_cfg,
        search_cfg,
        model,
        prompt_cache,
        &RecoveryConfig::default(),
    )
}

/// As [`eval_theorem`], under an explicit oracle-recovery policy (fault
/// injection and retry). The recovery layer never changes a successful
/// evaluation's outcome — retried queries reuse their `query_index` and
/// fault counters are not serialized — so the clean and recovered records
/// are byte-identical.
#[allow(clippy::too_many_arguments)]
pub fn eval_theorem_with_recovery(
    dev: &Development,
    index: usize,
    hints: &BTreeSet<String>,
    prompt_cfg: &PromptConfig,
    search_cfg: &SearchConfig,
    model: &mut SimulatedModel,
    prompt_cache: &PromptCache,
    recovery: &RecoveryConfig,
) -> TheoremOutcome {
    let thm = &dev.theorems[index];
    let mut thm_sp = proof_trace::span("theorem", &thm.name);
    let env = dev.env_before(thm);
    let prompt = build_prompt_cached(dev, thm, hints, prompt_cfg, prompt_cache);
    let result = {
        let _sp = proof_trace::span("search", &thm.name);
        search_with_recovery(
            env, &thm.stmt, &thm.name, model, &prompt, search_cfg, recovery,
        )
    };
    let _classify_sp = proof_trace::span("classify", &thm.name);
    let human = canonical_script(&thm.proof_text);
    let human_tokens = count_tokens(&thm.proof_text);
    let (outcome, script) = match &result.outcome {
        Outcome::Proved { .. } => ("proved", result.script_text()),
        Outcome::Stuck => ("stuck", None),
        Outcome::Fuelout => ("fuelout", None),
    };
    if thm_sp.is_armed() {
        thm_sp.field_str("outcome", outcome);
        thm_sp.field_u64("queries", result.stats.queries as u64);
    }
    let (gen_tokens, sim) = match &script {
        Some(s) => {
            let c = canonical_script(s);
            (Some(count_tokens(&c)), Some(similarity(&c, &human)))
        }
        None => (None, None),
    };
    TheoremOutcome {
        name: thm.name.clone(),
        file: thm.file.clone(),
        category: Category::of_module(&thm.file).label().to_string(),
        human_tokens,
        bin: bin_of(human_tokens),
        outcome: outcome.to_string(),
        script,
        gen_tokens,
        similarity: sim,
        queries: result.stats.queries,
        pruned: result.stats.preflight_pruned,
        pruned_reasons: result.stats.preflight_reasons.clone(),
    }
}

/// Wraps a cell's outcomes into a [`CellResult`].
pub(crate) fn finish_cell(cell: &CellConfig, outcomes: Vec<TheoremOutcome>) -> CellResult {
    CellResult {
        label: cell.label(),
        setting: match cell.setting {
            PromptSetting::Vanilla => "vanilla".into(),
            PromptSetting::Hints => "hints".into(),
        },
        variant: cell.variant.clone().unwrap_or_default(),
        outcomes,
    }
}

/// Runs one experiment cell over the corpus, serially. The parallel
/// equivalent is [`runner::run_cell_jobs`](crate::runner::run_cell_jobs),
/// which is bit-identical by construction (and by test).
pub fn run_cell(corpus: &Corpus, cell: &CellConfig) -> CellResult {
    let dev = &corpus.dev;
    let hints = hint_set(dev);
    let indices = cell.eval_indices(dev);
    let prompt_cfg = cell.prompt_config();
    let prompt_cache = PromptCache::new();
    let mut model = cell.model();
    let outcomes = indices
        .iter()
        .map(|&i| {
            eval_theorem(
                dev,
                i,
                &hints,
                &prompt_cfg,
                &cell.search,
                &mut model,
                &prompt_cache,
            )
        })
        .collect();
    finish_cell(cell, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_runs_on_a_slice() {
        // A fast smoke test: tiny query budget over the sampled scope.
        let corpus = Corpus::load();
        let mut cell = CellConfig::standard(ModelProfile::gpt4o(), PromptSetting::Hints);
        cell.search.query_limit = 4;
        let r = run_cell(&corpus, &cell);
        assert!(!r.outcomes.is_empty());
        assert!(r.label.contains("hints"));
        for o in &r.outcomes {
            assert!(o.queries <= 4);
            assert!(["proved", "stuck", "fuelout"].contains(&o.outcome.as_str()));
        }
    }
}
