//! The experiment runner: one *cell* is a (model configuration, prompt
//! setting) pair evaluated over a set of theorems.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::{OnceLock, RwLock};

use fscq_corpus::{Category, Corpus};
use minicoq_vernac::Development;
use proof_oracle::profiles::ModelProfile;
use proof_oracle::prompt::{build_prompt_cached, PromptCache, PromptConfig, PromptSetting};
use proof_oracle::split::{eval_set, eval_set_small, hint_set};
use proof_oracle::tokenizer::{bin_of, count_tokens};
use proof_oracle::SimulatedModel;
use proof_search::{search_with_recovery, Outcome, RecoveryConfig, SearchConfig, SearchStats};
use proof_trace::attempts::{AttemptLog, AttemptRecord};
use serde::{Deserialize, Serialize};

use crate::levenshtein::{canonical_script, similarity};

// ---------------------------------------------------------------------------
// Attempt-log sink: when installed (programmatically or via the
// `ATTEMPT_LOG` env var), every theorem evaluation collects per-proposal
// attempt records and appends them to the log — the raw material the
// `rank` pipeline mines. Strictly a side channel: outcomes, cell records,
// and cache contents are byte-identical with the sink on or off.

fn sink_cell() -> &'static RwLock<Option<AttemptLog>> {
    static SINK: OnceLock<RwLock<Option<AttemptLog>>> = OnceLock::new();
    SINK.get_or_init(|| {
        RwLock::new(
            std::env::var("ATTEMPT_LOG")
                .ok()
                .filter(|p| !p.trim().is_empty())
                .map(AttemptLog::at),
        )
    })
}

/// Routes every subsequent theorem evaluation's attempt records to the
/// given JSONL log (overriding any `ATTEMPT_LOG` env var).
pub fn install_attempt_log(path: impl Into<PathBuf>) {
    *sink_cell().write().unwrap() = Some(AttemptLog::at(path));
}

/// Stops attempt-log emission.
pub fn clear_attempt_log() {
    *sink_cell().write().unwrap() = None;
}

fn active_attempt_log() -> Option<AttemptLog> {
    sink_cell().read().unwrap().clone()
}

/// Appends one finished search's attempt records to the installed sink.
/// Returns `false` when no sink is installed or the write fails.
pub fn append_attempts(theorem: &str, stats: &SearchStats) -> bool {
    match active_attempt_log() {
        Some(log) => log.append_all(&attempt_records(theorem, stats)),
        None => false,
    }
}

/// Converts a finished search's collected attempts into attempt-log
/// records for `theorem`, extracting each tactic's premise argument.
pub fn attempt_records(theorem: &str, stats: &SearchStats) -> Vec<AttemptRecord> {
    stats
        .attempts
        .iter()
        .map(|a| AttemptRecord {
            theorem: theorem.to_string(),
            tactic: a.tactic.clone(),
            premise: corpus_analysis::features::premise_of_tactic(&a.tactic)
                .unwrap_or("")
                .to_string(),
            features_schema: corpus_analysis::features::FEATURES_SCHEMA as u64,
            outcome: a.outcome.label().to_string(),
            expansions: a.expansions,
            depth: a.depth as u64,
            query: a.query as u64,
            on_path: a.on_path,
        })
        .collect()
}

/// Which theorems a cell evaluates (§4 "Data").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalScope {
    /// All theorems outside the hint split (smaller models).
    Full,
    /// The reduced deterministic sample (larger models).
    Sampled,
}

/// One experiment cell.
#[derive(Debug, Clone)]
pub struct CellConfig {
    /// Model capability profile.
    pub profile: ModelProfile,
    /// Vanilla or hints.
    pub setting: PromptSetting,
    /// Evaluation scope.
    pub scope: EvalScope,
    /// Search hyper-parameters.
    pub search: SearchConfig,
    /// Simulator shape parameters (calibration sweeps).
    pub tuning: proof_oracle::sim::Tuning,
    /// Automated premise selection: keep only the top-k retrieved lemmas
    /// in the prompt (`None` = the paper's full-context protocol).
    pub retrieval: Option<usize>,
    /// Experiment-variant tag for A/B runs (e.g. `rank-learned`).
    /// Flows into [`CellConfig::label`], the persisted [`CellResult`], and
    /// the `BENCH_eval.json` timing records, so two cells that differ only
    /// in a search knob no longer collapse onto one ambiguous label.
    /// `None` (every standard cell) adds nothing anywhere.
    pub variant: Option<String>,
    /// Restricts evaluation to these theorem names, intersected with the
    /// scope's eval set. Drives tiered runs (e.g. the generated corpus's
    /// hard tier in the `rank` A/B); part of the `Debug` form, so the
    /// cell cache key covers it.
    pub subset: Option<Vec<String>>,
}

impl CellConfig {
    /// The standard cell for a profile and setting, with the paper's scope
    /// rule (larger models on the 10% sample).
    pub fn standard(profile: ModelProfile, setting: PromptSetting) -> CellConfig {
        let scope = if profile.is_large() {
            EvalScope::Sampled
        } else {
            EvalScope::Full
        };
        CellConfig {
            profile,
            setting,
            scope,
            search: SearchConfig::default(),
            tuning: proof_oracle::sim::Tuning::default(),
            retrieval: None,
            variant: None,
            subset: None,
        }
    }

    /// Display label, e.g. `GPT-4o (w/ hints)`; a variant tag, when set,
    /// is appended as `GPT-4o (w/ hints) [premise-rank=on]`.
    pub fn label(&self) -> String {
        let base = match self.setting {
            PromptSetting::Vanilla => self.profile.name.to_string(),
            PromptSetting::Hints => format!("{} (w/ hints)", self.profile.name),
        };
        match &self.variant {
            Some(v) => format!("{base} [{v}]"),
            None => base,
        }
    }

    /// The theorem indices this cell evaluates, in corpus order.
    pub fn eval_indices(&self, dev: &Development) -> Vec<usize> {
        let base = match self.scope {
            EvalScope::Full => eval_set(dev),
            EvalScope::Sampled => eval_set_small(dev),
        };
        match &self.subset {
            None => base,
            Some(names) => {
                let keep: std::collections::BTreeSet<&str> =
                    names.iter().map(String::as_str).collect();
                base.into_iter()
                    .filter(|&i| keep.contains(dev.theorems[i].name.as_str()))
                    .collect()
            }
        }
    }

    /// The prompt configuration this cell evaluates under.
    pub fn prompt_config(&self) -> PromptConfig {
        PromptConfig {
            setting: self.setting,
            window: Some(self.profile.window),
            minimal: false,
            retrieval: self.retrieval,
        }
    }

    /// A fresh simulated model for this cell. The simulator's randomness is
    /// a pure hash of (model, theorem, query, candidate), so every worker's
    /// clone behaves identically — parallel evaluation is bit-reproducible.
    pub fn model(&self) -> SimulatedModel {
        SimulatedModel::new(self.profile.clone()).with_tuning(self.tuning.clone())
    }
}

/// The per-theorem record a cell produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TheoremOutcome {
    /// Theorem name.
    pub name: String,
    /// Module name.
    pub file: String,
    /// Category label (Table 1).
    pub category: String,
    /// Token length of the human proof.
    pub human_tokens: usize,
    /// Figure 1 length bin.
    pub bin: usize,
    /// `proved` / `stuck` / `fuelout`.
    pub outcome: String,
    /// The found script, when proved.
    pub script: Option<String>,
    /// Token length of the found script.
    pub gen_tokens: Option<usize>,
    /// Normalized similarity to the human proof.
    pub similarity: Option<f64>,
    /// Model queries issued.
    pub queries: u32,
    /// Proposals pruned statically by the pre-flight analyzer.
    pub pruned: u32,
    /// Pre-flight prunes per reason code.
    pub pruned_reasons: BTreeMap<String, u32>,
}

/// A completed experiment cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResult {
    /// Display label.
    pub label: String,
    /// Prompt setting (`vanilla` / `hints`).
    pub setting: String,
    /// Experiment-variant tag ([`CellConfig::variant`]); empty for
    /// standard cells, and then absent from the JSON so standard grids
    /// serialize exactly as before the field existed.
    #[serde(default, skip_serializing_if = "String::is_empty")]
    pub variant: String,
    /// Per-theorem outcomes.
    pub outcomes: Vec<TheoremOutcome>,
}

impl CellResult {
    /// Fraction of theorems proved.
    pub fn proved_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .filter(|o| o.outcome == "proved")
            .count() as f64
            / self.outcomes.len() as f64
    }

    /// Fraction with the given outcome string.
    pub fn rate_of(&self, outcome: &str) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .filter(|o| o.outcome == outcome)
            .count() as f64
            / self.outcomes.len() as f64
    }

    /// Average similarity of generated proofs to human proofs.
    pub fn avg_similarity(&self) -> f64 {
        let vals: Vec<f64> = self.outcomes.iter().filter_map(|o| o.similarity).collect();
        if vals.is_empty() {
            return 0.0;
        }
        vals.iter().sum::<f64>() / vals.len() as f64
    }

    /// Average generated length as a percentage of the human length.
    pub fn avg_length_ratio(&self) -> f64 {
        let vals: Vec<f64> = self
            .outcomes
            .iter()
            .filter(|o| o.outcome == "proved")
            .filter_map(|o| {
                o.gen_tokens
                    .map(|g| g as f64 / o.human_tokens.max(1) as f64)
            })
            .collect();
        if vals.is_empty() {
            return 0.0;
        }
        100.0 * vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// Evaluates one theorem under a cell's configuration: build the prompt,
/// search, and classify. This is the unit of work shared by the serial
/// [`run_cell`] and the parallel [`runner`](crate::runner).
pub fn eval_theorem(
    dev: &Development,
    index: usize,
    hints: &BTreeSet<String>,
    prompt_cfg: &PromptConfig,
    search_cfg: &SearchConfig,
    model: &mut SimulatedModel,
    prompt_cache: &PromptCache,
) -> TheoremOutcome {
    eval_theorem_with_recovery(
        dev,
        index,
        hints,
        prompt_cfg,
        search_cfg,
        model,
        prompt_cache,
        &RecoveryConfig::default(),
    )
}

/// As [`eval_theorem`], under an explicit oracle-recovery policy (fault
/// injection and retry). The recovery layer never changes a successful
/// evaluation's outcome — retried queries reuse their `query_index` and
/// fault counters are not serialized — so the clean and recovered records
/// are byte-identical.
#[allow(clippy::too_many_arguments)]
pub fn eval_theorem_with_recovery(
    dev: &Development,
    index: usize,
    hints: &BTreeSet<String>,
    prompt_cfg: &PromptConfig,
    search_cfg: &SearchConfig,
    model: &mut SimulatedModel,
    prompt_cache: &PromptCache,
    recovery: &RecoveryConfig,
) -> TheoremOutcome {
    let thm = &dev.theorems[index];
    let mut thm_sp = proof_trace::span("theorem", &thm.name);
    let env = dev.env_before(thm);
    let prompt = build_prompt_cached(dev, thm, hints, prompt_cfg, prompt_cache);
    // When an attempt sink is installed, switch on per-proposal
    // collection (a transport knob: results are unchanged).
    let sink = active_attempt_log();
    let recovery_with_sink;
    let recovery = if sink.is_some() && !recovery.collect_attempts {
        recovery_with_sink = RecoveryConfig {
            collect_attempts: true,
            ..recovery.clone()
        };
        &recovery_with_sink
    } else {
        recovery
    };
    let result = {
        let _sp = proof_trace::span("search", &thm.name);
        search_with_recovery(
            env, &thm.stmt, &thm.name, model, &prompt, search_cfg, recovery,
        )
    };
    if let Some(log) = &sink {
        log.append_all(&attempt_records(&thm.name, &result.stats));
    }
    let _classify_sp = proof_trace::span("classify", &thm.name);
    let human = canonical_script(&thm.proof_text);
    let human_tokens = count_tokens(&thm.proof_text);
    let (outcome, script) = match &result.outcome {
        Outcome::Proved { .. } => ("proved", result.script_text()),
        Outcome::Stuck => ("stuck", None),
        Outcome::Fuelout => ("fuelout", None),
    };
    if thm_sp.is_armed() {
        thm_sp.field_str("outcome", outcome);
        thm_sp.field_u64("queries", result.stats.queries as u64);
    }
    let (gen_tokens, sim) = match &script {
        Some(s) => {
            let c = canonical_script(s);
            (Some(count_tokens(&c)), Some(similarity(&c, &human)))
        }
        None => (None, None),
    };
    TheoremOutcome {
        name: thm.name.clone(),
        file: thm.file.clone(),
        category: Category::of_module(&thm.file).label().to_string(),
        human_tokens,
        bin: bin_of(human_tokens),
        outcome: outcome.to_string(),
        script,
        gen_tokens,
        similarity: sim,
        queries: result.stats.queries,
        pruned: result.stats.preflight_pruned,
        pruned_reasons: result.stats.preflight_reasons.clone(),
    }
}

/// Wraps a cell's outcomes into a [`CellResult`].
pub(crate) fn finish_cell(cell: &CellConfig, outcomes: Vec<TheoremOutcome>) -> CellResult {
    CellResult {
        label: cell.label(),
        setting: match cell.setting {
            PromptSetting::Vanilla => "vanilla".into(),
            PromptSetting::Hints => "hints".into(),
        },
        variant: cell.variant.clone().unwrap_or_default(),
        outcomes,
    }
}

/// Runs one experiment cell over the corpus, serially. The parallel
/// equivalent is [`runner::run_cell_jobs`](crate::runner::run_cell_jobs),
/// which is bit-identical by construction (and by test).
pub fn run_cell(corpus: &Corpus, cell: &CellConfig) -> CellResult {
    let dev = &corpus.dev;
    let hints = hint_set(dev);
    let indices = cell.eval_indices(dev);
    let prompt_cfg = cell.prompt_config();
    let prompt_cache = PromptCache::new();
    let mut model = cell.model();
    let outcomes = indices
        .iter()
        .map(|&i| {
            eval_theorem(
                dev,
                i,
                &hints,
                &prompt_cfg,
                &cell.search,
                &mut model,
                &prompt_cache,
            )
        })
        .collect();
    finish_cell(cell, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_runs_on_a_slice() {
        // A fast smoke test: tiny query budget over the sampled scope.
        let corpus = Corpus::load();
        let mut cell = CellConfig::standard(ModelProfile::gpt4o(), PromptSetting::Hints);
        cell.search.query_limit = 4;
        let r = run_cell(&corpus, &cell);
        assert!(!r.outcomes.is_empty());
        assert!(r.label.contains("hints"));
        for o in &r.outcomes {
            assert!(o.queries <= 4);
            assert!(["proved", "stuck", "fuelout"].contains(&o.outcome.as_str()));
        }
    }
}
