//! An Elo-style leaderboard over per-theorem cell outcomes.
//!
//! Model configurations are ranked by pairwise duels: for every theorem
//! (in corpus order) and every ordered pair of cells (in cell order), a
//! cell that proved the theorem beats one that did not; two cells with
//! the same outcome class draw. Ratings update sequentially from
//! [`ELO_START`] with K-factor [`ELO_K`]. The schedule is fully
//! deterministic — same cells in, byte-identical leaderboard out — so the
//! table can be diffed across runs like every other bench artifact.

use serde::{Deserialize, Serialize};

use crate::experiment::CellResult;

/// Initial rating.
pub const ELO_START: f64 = 1000.0;
/// K-factor: rating shift per decisive duel at equal strength is K/2.
pub const ELO_K: f64 = 24.0;

/// One leaderboard row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EloEntry {
    /// Cell label (model profile plus setting/variant).
    pub model: String,
    /// Final rating, rounded to 0.1 for a stable, readable artifact.
    pub rating: f64,
    /// Decisive duels won.
    pub wins: u64,
    /// Decisive duels lost.
    pub losses: u64,
    /// Drawn duels.
    pub draws: u64,
}

/// The leaderboard: entries sorted by rating (descending), ties broken by
/// label.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EloLeaderboard {
    /// Theorems each pair dueled over.
    pub theorems: usize,
    /// Ranked entries.
    pub entries: Vec<EloEntry>,
}

fn expected(ra: f64, rb: f64) -> f64 {
    1.0 / (1.0 + 10f64.powf((rb - ra) / 400.0))
}

/// Runs the ladder. Cells duel on the theorems they all share (matched by
/// `module::name`), in the order the first cell lists them; a cell's
/// outcome counts as a win iff it is `proved` and the opponent's is not.
pub fn elo_ladder(cells: &[&CellResult]) -> EloLeaderboard {
    let mut ratings = vec![ELO_START; cells.len()];
    let mut wins = vec![0u64; cells.len()];
    let mut losses = vec![0u64; cells.len()];
    let mut draws = vec![0u64; cells.len()];

    let shared: Vec<(String, String)> = match cells.first() {
        None => Vec::new(),
        Some(first) => first
            .outcomes
            .iter()
            .map(|o| (o.file.clone(), o.name.clone()))
            .filter(|(file, name)| {
                cells.iter().all(|c| {
                    c.outcomes
                        .iter()
                        .any(|o| &o.file == file && &o.name == name)
                })
            })
            .collect(),
    };

    for (file, name) in &shared {
        let proved: Vec<bool> = cells
            .iter()
            .map(|c| {
                c.outcomes
                    .iter()
                    .find(|o| &o.file == file && &o.name == name)
                    .map(|o| o.outcome == "proved")
                    .unwrap_or(false)
            })
            .collect();
        for i in 0..cells.len() {
            for j in (i + 1)..cells.len() {
                let (si, sj) = match (proved[i], proved[j]) {
                    (true, false) => {
                        wins[i] += 1;
                        losses[j] += 1;
                        (1.0, 0.0)
                    }
                    (false, true) => {
                        losses[i] += 1;
                        wins[j] += 1;
                        (0.0, 1.0)
                    }
                    _ => {
                        draws[i] += 1;
                        draws[j] += 1;
                        (0.5, 0.5)
                    }
                };
                let ei = expected(ratings[i], ratings[j]);
                let ej = expected(ratings[j], ratings[i]);
                ratings[i] += ELO_K * (si - ei);
                ratings[j] += ELO_K * (sj - ej);
            }
        }
    }

    let mut entries: Vec<EloEntry> = cells
        .iter()
        .enumerate()
        .map(|(i, c)| EloEntry {
            model: c.label.clone(),
            rating: (ratings[i] * 10.0).round() / 10.0,
            wins: wins[i],
            losses: losses[i],
            draws: draws[i],
        })
        .collect();
    entries.sort_by(|a, b| {
        b.rating
            .partial_cmp(&a.rating)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.model.cmp(&b.model))
    });
    EloLeaderboard {
        theorems: shared.len(),
        entries,
    }
}

/// Renders the leaderboard as an aligned plain-text table.
pub fn render_leaderboard(board: &EloLeaderboard) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Elo leaderboard ({} shared theorems)\n",
        board.theorems
    ));
    out.push_str(&format!(
        "{:<4} {:<42} {:>8} {:>6} {:>6} {:>6}\n",
        "#", "model", "rating", "W", "L", "D"
    ));
    for (rank, e) in board.entries.iter().enumerate() {
        out.push_str(&format!(
            "{:<4} {:<42} {:>8.1} {:>6} {:>6} {:>6}\n",
            rank + 1,
            e.model,
            e.rating,
            e.wins,
            e.losses,
            e.draws
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::TheoremOutcome;

    fn cell(label: &str, proved: &[bool]) -> CellResult {
        CellResult {
            label: label.to_string(),
            setting: "vanilla".to_string(),
            variant: String::new(),
            outcomes: proved
                .iter()
                .enumerate()
                .map(|(i, p)| TheoremOutcome {
                    name: format!("t{i}"),
                    file: "M".to_string(),
                    category: "Utilities".to_string(),
                    human_tokens: 4,
                    bin: 0,
                    outcome: if *p { "proved" } else { "stuck" }.to_string(),
                    script: None,
                    gen_tokens: None,
                    similarity: None,
                    queries: 1,
                    pruned: 0,
                    pruned_reasons: Default::default(),
                })
                .collect(),
        }
    }

    #[test]
    fn stronger_cell_ranks_higher() {
        let strong = cell("strong", &[true, true, true, true]);
        let mid = cell("mid", &[true, true, false, false]);
        let weak = cell("weak", &[false, false, false, false]);
        let board = elo_ladder(&[&weak, &strong, &mid]);
        assert_eq!(board.theorems, 4);
        let order: Vec<&str> = board.entries.iter().map(|e| e.model.as_str()).collect();
        assert_eq!(order, vec!["strong", "mid", "weak"]);
        assert!(board.entries[0].rating > board.entries[2].rating);
    }

    #[test]
    fn ladder_is_deterministic_and_zero_sum_on_draws() {
        let a = cell("a", &[true, false]);
        let b = cell("b", &[true, false]);
        let b1 = elo_ladder(&[&a, &b]);
        let b2 = elo_ladder(&[&a, &b]);
        assert_eq!(
            serde_json::to_string(&b1).unwrap(),
            serde_json::to_string(&b2).unwrap()
        );
        // Identical records: every duel draws, ratings stay at start.
        assert!(b1.entries.iter().all(|e| e.rating == ELO_START));
        assert!(b1.entries.iter().all(|e| e.wins == 0 && e.losses == 0));
    }

    #[test]
    fn duels_run_only_on_shared_theorems() {
        let a = cell("a", &[true, true, true]);
        let mut b = cell("b", &[false, false]);
        b.outcomes[1].name = "other".to_string();
        let board = elo_ladder(&[&a, &b]);
        assert_eq!(board.theorems, 1);
    }
}
