//! Incremental re-verification: dirty-cone evaluation plus journal merge.
//!
//! The flow mirrors what an always-on verification server does when the
//! corpus is edited:
//!
//! 1. load the *edited* corpus (elaboration only, no proof replay) and
//!    build its dependency graph;
//! 2. diff the baseline [`Snapshot`] against it
//!    ([`corpus_analysis::diff_and_cone`]) to get the dirty cone;
//! 3. re-verify only the dirty theorems (on the same work-stealing pool
//!    full runs use, so the schedule-independence invariants carry over),
//!    consulting a **cone-keyed** per-theorem cache first: entries key on
//!    `<cell key>:<cone fingerprint>`, where the cone fingerprint covers
//!    everything on the corpus side that can influence one theorem's
//!    outcome ([`corpus_analysis::cone_fingerprint`]) — so an edit to
//!    module X never invalidates cached results whose cones exclude X;
//! 4. serve every clean theorem from the baseline `CellResult` and
//!    assemble the merged cell in eval order.
//!
//! Soundness rests on the dirty cone being conservative (see
//! `corpus_analysis::impact`); the property tests in
//! `tests/incremental_tests.rs` check the merged result is byte-identical
//! to a full cold re-run of the edited corpus, including under injected
//! oracle faults. When the theorem *set* changed, the deterministic
//! hint/eval splits reshuffle and the run falls back to a full
//! re-verification ([`IncrementalOutcome::fallback_full`]).

use std::collections::BTreeMap;
use std::path::PathBuf;

use corpus_analysis::{
    cone_fingerprint_in, diff_and_cone, ConeIndex, DepGraph, ImpactReport, Snapshot,
};
use fscq_corpus::Corpus;
use minicoq_vernac::Loader;
use proof_search::RecoveryConfig;

use crate::experiment::{finish_cell, CellConfig, CellResult, TheoremOutcome};
use crate::runner::{
    cell_cache_key, default_cache_dir, load_envelope, run_indices_checked, store_envelope,
};

/// Configuration of one incremental run.
pub struct IncrementalConfig {
    /// The cell (profile, setting, scope, search knobs) being re-verified.
    pub cell: CellConfig,
    /// Oracle-recovery policy (and optional fault plan) for the pool.
    pub recovery: RecoveryConfig,
    /// Worker count.
    pub jobs: usize,
    /// Directory of the cone-keyed per-theorem cache; `None` disables it.
    pub cone_cache_dir: Option<PathBuf>,
}

impl IncrementalConfig {
    /// A config with the given cell, serial evaluation, and the default
    /// cone cache under `target/cells/cones`.
    pub fn new(cell: CellConfig) -> IncrementalConfig {
        IncrementalConfig {
            cell,
            recovery: RecoveryConfig::default(),
            jobs: 1,
            cone_cache_dir: Some(default_cache_dir().join("cones")),
        }
    }
}

/// What an incremental run did, alongside the merged result.
pub struct IncrementalOutcome {
    /// The merged cell result, in eval order — byte-identical (as JSON)
    /// to a full cold run of the same cell on the edited corpus.
    pub result: CellResult,
    /// Names of the theorems actually re-verified on the pool.
    pub reverified: Vec<String>,
    /// Dirty theorems served from the cone-keyed cache instead.
    pub cone_cache_hits: usize,
    /// Clean theorems served from the baseline result.
    pub served_baseline: usize,
    /// True when the theorem set changed and the run fell back to a full
    /// re-verification.
    pub fallback_full: bool,
    /// The impact report the dirty set came from.
    pub impact: ImpactReport,
}

/// Loads an edited corpus (no proof replay — incremental verification is
/// exactly the workflow where human proofs may be stale) and builds its
/// dependency graph.
pub fn load_edited(sources: &[(String, String)]) -> Result<(Corpus, DepGraph), String> {
    let mut loader = Loader::new().check_proofs(false);
    for (name, text) in sources {
        loader.add_source(name.clone(), text.clone());
    }
    let dev = loader.load().map_err(|e| e.to_string())?;
    let graph = DepGraph::build(&dev, sources);
    Ok((Corpus { dev }, graph))
}

/// Runs the cell incrementally against `sources` (the edited corpus),
/// re-verifying only the dirty cone of the edit between `baseline_snapshot`
/// and the edited corpus, and merging `baseline` outcomes for the clean
/// remainder. With `baseline: None` every eval theorem is re-verified
/// (still through the cone-keyed cache).
///
/// The baseline must come from the same cell as `cfg.cell`: merging
/// outcomes across cells (a different `--model` or `--vanilla` than the
/// saved baseline) would silently mix two incomparable runs, so a
/// label/setting/variant mismatch is an error rather than a fallback.
pub fn run_incremental(
    baseline: Option<&CellResult>,
    baseline_snapshot: &Snapshot,
    sources: &[(String, String)],
    cfg: &IncrementalConfig,
) -> Result<IncrementalOutcome, String> {
    let _sp = proof_trace::span("metrics", "incremental");
    if let Some(b) = baseline {
        let want = finish_cell(&cfg.cell, Vec::new());
        if (b.label.as_str(), b.setting.as_str(), b.variant.as_str())
            != (
                want.label.as_str(),
                want.setting.as_str(),
                want.variant.as_str(),
            )
        {
            return Err(format!(
                "baseline cell `{}` (setting `{}`) does not match the requested cell `{}` \
                 (setting `{}`): outcomes from different cells cannot be merged — re-save \
                 the baseline or pass matching cell flags",
                b.label, b.setting, want.label, want.setting
            ));
        }
    }
    let (corpus, graph) = load_edited(sources)?;
    let impact = diff_and_cone(baseline_snapshot, &corpus.dev, &graph);
    let by_name: BTreeMap<&str, &TheoremOutcome> = baseline
        .map(|b| b.outcomes.iter().map(|o| (o.name.as_str(), o)).collect())
        .unwrap_or_default();
    let fallback_full = baseline.is_none() || impact.theorem_set_changed;

    let indices = cfg.cell.eval_indices(&corpus.dev);
    let cell_key = cell_cache_key(&cfg.cell);
    // The snapshot capture and collision scan behind cone fingerprints
    // are O(corpus): build the index once, not once per dirty theorem.
    let cone_ix = cfg
        .cone_cache_dir
        .as_ref()
        .map(|_| ConeIndex::build(&corpus.dev, &graph));
    let mut slots: Vec<Option<TheoremOutcome>> = vec![None; indices.len()];
    let mut to_eval: Vec<usize> = Vec::new(); // positions into `indices`
    let mut eval_keys: Vec<Option<PathBuf>> = Vec::new();
    let mut reverified = Vec::new();
    let mut cone_cache_hits = 0usize;
    let mut served_baseline = 0usize;
    for (k, &i) in indices.iter().enumerate() {
        let name = corpus.dev.theorems[i].name.clone();
        let dirty = fallback_full
            || impact.dirty.contains_key(&name)
            || !by_name.contains_key(name.as_str());
        if !dirty {
            slots[k] = Some((*by_name[name.as_str()]).clone());
            served_baseline += 1;
            continue;
        }
        // Dirty: consult the cone-keyed cache before paying for a search.
        let cache_path = cfg
            .cone_cache_dir
            .as_ref()
            .zip(cone_ix.as_ref())
            .and_then(|(dir, ix)| {
                cone_fingerprint_in(ix, &corpus.dev, &graph, &name)
                    .map(|cone| dir.join(format!("{cell_key}-{cone}.json")))
            });
        if let Some(path) = &cache_path {
            if let Some(hit) = load_envelope::<TheoremOutcome>(path) {
                proof_trace::event("cache", "cone-hit");
                slots[k] = Some(hit);
                cone_cache_hits += 1;
                continue;
            }
        }
        to_eval.push(k);
        eval_keys.push(cache_path);
        reverified.push(name);
    }

    if !to_eval.is_empty() {
        let eval_indices: Vec<usize> = to_eval.iter().map(|&k| indices[k]).collect();
        let outcomes = run_indices_checked(
            &corpus,
            &cfg.cell,
            &eval_indices,
            cfg.jobs,
            &cfg.recovery,
            0,
        )
        .map_err(|crash| crash.to_string())?;
        for ((&k, path), outcome) in to_eval.iter().zip(&eval_keys).zip(outcomes) {
            if let Some(path) = path {
                store_envelope(path, &outcome);
            }
            slots[k] = Some(outcome);
        }
    }

    let merged: Vec<TheoremOutcome> = slots
        .into_iter()
        .map(|o| o.expect("every eval slot filled"))
        .collect();
    proof_trace::metrics::counter_add("incremental.reverified", reverified.len() as u64);
    proof_trace::metrics::counter_add("incremental.cone_cache_hits", cone_cache_hits as u64);
    proof_trace::metrics::counter_add("incremental.served_baseline", served_baseline as u64);
    Ok(IncrementalOutcome {
        result: finish_cell(&cfg.cell, merged),
        reverified,
        cone_cache_hits,
        served_baseline,
        fallback_full,
        impact,
    })
}
