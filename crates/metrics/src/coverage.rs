//! Coverage analyses: Figure 1 bins and Table 1 categories.

use serde::{Deserialize, Serialize};

use crate::experiment::CellResult;
use proof_oracle::tokenizer::LENGTH_BINS;

/// Per-bin coverage for one cell (a Figure 1 series).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BinCoverage {
    /// Cell label.
    pub label: String,
    /// Theorems per bin.
    pub totals: Vec<usize>,
    /// Proved theorems per bin.
    pub proved: Vec<usize>,
}

impl BinCoverage {
    /// Coverage fraction per bin (`None` for empty bins).
    pub fn rates(&self) -> Vec<Option<f64>> {
        self.totals
            .iter()
            .zip(&self.proved)
            .map(|(t, p)| {
                if *t == 0 {
                    None
                } else {
                    Some(*p as f64 / *t as f64)
                }
            })
            .collect()
    }

    /// Overall coverage across all bins.
    pub fn overall(&self) -> f64 {
        let t: usize = self.totals.iter().sum();
        let p: usize = self.proved.iter().sum();
        if t == 0 {
            0.0
        } else {
            p as f64 / t as f64
        }
    }
}

/// Computes a cell's per-bin coverage.
pub fn bin_coverage(cell: &CellResult) -> BinCoverage {
    let nbins = LENGTH_BINS.len() + 1;
    let mut totals = vec![0usize; nbins];
    let mut proved = vec![0usize; nbins];
    for o in &cell.outcomes {
        totals[o.bin] += 1;
        if o.outcome == "proved" {
            proved[o.bin] += 1;
        }
    }
    BinCoverage {
        label: cell.label.clone(),
        totals,
        proved,
    }
}

/// The coverage of theorems whose human proofs are under `max_tokens`, and
/// the share of such theorems (the headline "57% of theorems under 64
/// tokens, which make up 60% of the corpus").
pub fn coverage_under(cell: &CellResult, max_tokens: usize) -> (f64, f64) {
    let short: Vec<_> = cell
        .outcomes
        .iter()
        .filter(|o| o.human_tokens < max_tokens)
        .collect();
    let share = if cell.outcomes.is_empty() {
        0.0
    } else {
        short.len() as f64 / cell.outcomes.len() as f64
    };
    let proved = short.iter().filter(|o| o.outcome == "proved").count();
    let rate = if short.is_empty() {
        0.0
    } else {
        proved as f64 / short.len() as f64
    };
    (rate, share)
}

/// One Table 1 row: actual and expected coverage for a category.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CategoryCoverage {
    /// Category label.
    pub category: String,
    /// Theorems evaluated in the category.
    pub total: usize,
    /// Fraction of the category proved.
    pub actual: f64,
    /// Category-agnostic expectation: for each lemma, the cell's Figure 1
    /// coverage of the lemma's length bin (§4.1).
    pub expected: f64,
}

/// Computes Table 1 for one cell.
pub fn category_coverage(cell: &CellResult) -> Vec<CategoryCoverage> {
    let bins = bin_coverage(cell);
    let rates = bins.rates();
    let mut out = Vec::new();
    for cat in ["Utilities", "CHL", "File System"] {
        let members: Vec<_> = cell.outcomes.iter().filter(|o| o.category == cat).collect();
        if members.is_empty() {
            out.push(CategoryCoverage {
                category: cat.to_string(),
                total: 0,
                actual: 0.0,
                expected: 0.0,
            });
            continue;
        }
        let proved = members.iter().filter(|o| o.outcome == "proved").count();
        let actual = proved as f64 / members.len() as f64;
        let expected = members
            .iter()
            .map(|o| rates[o.bin].unwrap_or(0.0))
            .sum::<f64>()
            / members.len() as f64;
        out.push(CategoryCoverage {
            category: cat.to_string(),
            total: members.len(),
            actual,
            expected,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::TheoremOutcome;

    fn outcome(cat: &str, tokens: usize, proved: bool) -> TheoremOutcome {
        TheoremOutcome {
            name: "t".into(),
            file: "f".into(),
            category: cat.into(),
            human_tokens: tokens,
            bin: proof_oracle::tokenizer::bin_of(tokens),
            outcome: if proved { "proved" } else { "stuck" }.into(),
            script: None,
            gen_tokens: None,
            similarity: None,
            queries: 1,
            pruned: 0,
            pruned_reasons: Default::default(),
        }
    }

    fn cell(outcomes: Vec<TheoremOutcome>) -> CellResult {
        CellResult {
            label: "test".into(),
            setting: "hints".into(),
            variant: String::new(),
            outcomes,
        }
    }

    #[test]
    fn bins_and_overall() {
        let c = cell(vec![
            outcome("Utilities", 10, true),
            outcome("Utilities", 10, false),
            outcome("CHL", 100, true),
        ]);
        let b = bin_coverage(&c);
        assert_eq!(b.totals.iter().sum::<usize>(), 3);
        assert!((b.overall() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(b.rates()[0], Some(0.5));
    }

    #[test]
    fn expected_coverage_is_bin_weighted() {
        // Utilities: both short (bin0), one proved => bin0 rate 0.5.
        // CHL: one long proved (bin4 rate 1.0).
        let c = cell(vec![
            outcome("Utilities", 10, true),
            outcome("Utilities", 12, false),
            outcome("CHL", 200, true),
        ]);
        let cats = category_coverage(&c);
        let util = cats.iter().find(|c| c.category == "Utilities").unwrap();
        assert!((util.actual - 0.5).abs() < 1e-9);
        assert!((util.expected - 0.5).abs() < 1e-9);
        let chl = cats.iter().find(|c| c.category == "CHL").unwrap();
        assert!((chl.actual - 1.0).abs() < 1e-9);
        assert!((chl.expected - 1.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_under_counts_share() {
        let c = cell(vec![
            outcome("Utilities", 10, true),
            outcome("Utilities", 100, false),
        ]);
        let (rate, share) = coverage_under(&c, 64);
        assert_eq!(rate, 1.0);
        assert_eq!(share, 0.5);
    }
}
