//! Crash-safe JSONL journal of cell-level evaluation progress.
//!
//! A grid run appends one line per event to a journal file:
//!
//! * `start` — a cell evaluation began (written *before* the work, so an
//!   attempt that dies mid-flight still leaves a trace);
//! * `done` — a cell completed; the full [`CellResult`] rides along as an
//!   escaped JSON string with an FNV-1a checksum;
//! * `crashed` — a cell's evaluation panicked; the payload text is kept
//!   for diagnosis.
//!
//! On `--resume`, [`Journal::load`] replays the log: `done` cells are
//! served from the journal without re-evaluation, and the per-cell
//! `start` counts tell the fault plan how many attempts already happened,
//! so a deterministic worker-panic fault that fired on attempt 0 does not
//! fire again on the resumed attempt 1 (see
//! [`proof_chaos::FaultPlan::should_fault_at`]).
//!
//! The format is deliberately line-oriented and append-only: a crash can
//! at worst truncate the final line, and the loader skips any line that
//! fails to parse or whose checksum does not match, so a torn tail write
//! costs one cell recompute, never the run.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

use serde_json::Value;

use crate::experiment::CellResult;

/// FNV-1a over a byte string; the journal's (and cell cache's) integrity
/// checksum. Not cryptographic — it guards against torn writes, not
/// adversaries.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// JSON-escapes a string (delegating to the serializer so the journal and
/// the cell cache agree with the parser byte-for-byte).
fn jstr(s: &str) -> String {
    serde_json::to_string(&s.to_string()).unwrap_or_else(|_| "\"\"".into())
}

/// What the journal knows after replaying every parseable line.
#[derive(Debug, Default, Clone)]
pub struct JournalState {
    /// Completed cells by cache key, checksum-verified.
    pub done: BTreeMap<String, CellResult>,
    /// `start` entries per cache key — how many attempts have begun,
    /// including any that never finished.
    pub attempts: BTreeMap<String, u32>,
    /// Last recorded panic text per cache key, for cells that crashed.
    pub crashes: BTreeMap<String, String>,
}

impl JournalState {
    /// True when `key` completed in a previous attempt.
    pub fn is_done(&self, key: &str) -> bool {
        self.done.contains_key(key)
    }

    /// Attempts already begun for `key` (0 for a never-seen cell).
    pub fn attempts_of(&self, key: &str) -> u32 {
        self.attempts.get(key).copied().unwrap_or(0)
    }
}

/// An append-only JSONL journal at a fixed path.
#[derive(Debug, Clone)]
pub struct Journal {
    path: PathBuf,
}

impl Journal {
    /// A journal at `path`. Nothing is created until the first append.
    pub fn at(path: impl Into<PathBuf>) -> Journal {
        Journal { path: path.into() }
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Removes the journal file (fresh runs). Missing file is fine.
    pub fn clear(&self) {
        let _ = std::fs::remove_file(&self.path);
    }

    /// Replays the journal. A missing file yields the empty state;
    /// unparseable or checksum-failing lines are skipped (the crash-safety
    /// contract: a torn tail line costs one recompute).
    pub fn load(&self) -> JournalState {
        let mut state = JournalState::default();
        let Ok(text) = std::fs::read_to_string(&self.path) else {
            return state;
        };
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(v) = serde_json::from_str::<Value>(line) else {
                continue;
            };
            let Some(ev) = v.get("ev").and_then(|e| e.as_str()) else {
                continue;
            };
            let key = v.get("key").and_then(|k| k.as_str()).map(str::to_string);
            match (ev, key) {
                ("start", Some(key)) => {
                    *state.attempts.entry(key).or_insert(0) += 1;
                }
                ("done", Some(key)) => {
                    let Some(payload) = v.get("payload").and_then(|p| p.as_str()) else {
                        continue;
                    };
                    let stored = v
                        .get("checksum")
                        .and_then(|c| c.as_str())
                        .unwrap_or_default();
                    if format!("{:016x}", fnv1a(payload.as_bytes())) != stored {
                        continue;
                    }
                    let Ok(result) = serde_json::from_str::<CellResult>(payload) else {
                        continue;
                    };
                    state.crashes.remove(&key);
                    state.done.insert(key, result);
                }
                ("crashed", Some(key)) => {
                    let panic = v
                        .get("panic")
                        .and_then(|p| p.as_str())
                        .unwrap_or("unknown panic")
                        .to_string();
                    state.crashes.insert(key, panic);
                }
                _ => {}
            }
        }
        state
    }

    /// Appends a `start` entry for `key`. Best-effort: journaling must
    /// never take down the evaluation it protects.
    pub fn record_start(&self, key: &str, label: &str) {
        self.append(&format!(
            "{{\"ev\":\"start\",\"key\":{},\"label\":{}}}",
            jstr(key),
            jstr(label)
        ));
    }

    /// Appends a checksummed `done` entry carrying the full result.
    pub fn record_done(&self, key: &str, result: &CellResult) {
        let Ok(payload) = serde_json::to_string(result) else {
            return;
        };
        self.append(&format!(
            "{{\"ev\":\"done\",\"key\":{},\"checksum\":\"{:016x}\",\"payload\":{}}}",
            jstr(key),
            fnv1a(payload.as_bytes()),
            jstr(&payload)
        ));
    }

    /// Appends a `crashed` entry with the captured panic text.
    pub fn record_crashed(&self, key: &str, label: &str, panic: &str) {
        self.append(&format!(
            "{{\"ev\":\"crashed\",\"key\":{},\"label\":{},\"panic\":{}}}",
            jstr(key),
            jstr(label),
            jstr(panic)
        ));
    }

    fn append(&self, line: &str) {
        debug_assert!(!line.contains('\n'), "journal entries must be one line");
        if let Some(dir) = self.path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        // A previous process may have died mid-write, leaving the file
        // without a trailing newline. Terminate the torn line first, or
        // this entry would merge into it and both would be lost.
        let needs_repair = std::fs::read(&self.path)
            .map(|bytes| !bytes.is_empty() && bytes.last() != Some(&b'\n'))
            .unwrap_or(false);
        let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
        else {
            return;
        };
        if needs_repair {
            let _ = writeln!(f);
        }
        let _ = writeln!(f, "{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::TheoremOutcome;
    use std::collections::BTreeMap as Map;

    fn sample_result(label: &str) -> CellResult {
        CellResult {
            label: label.to_string(),
            setting: "hints".into(),
            variant: String::new(),
            outcomes: vec![TheoremOutcome {
                name: "lemma_weird \"quote\"".into(),
                file: "Log".into(),
                category: "log".into(),
                human_tokens: 12,
                bin: 1,
                outcome: "proved".into(),
                script: Some("intros.\napply h0.".into()),
                gen_tokens: Some(5),
                similarity: Some(0.75),
                queries: 3,
                pruned: 1,
                pruned_reasons: Map::new(),
            }],
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("journal-test-{name}-{}", std::process::id()))
    }

    #[test]
    fn roundtrip_start_done_crashed() {
        let j = Journal::at(temp_path("roundtrip"));
        j.clear();
        j.record_start("k1", "A");
        j.record_crashed("k1", "A", "injected: worker panic\nwith newline");
        j.record_start("k1", "A");
        j.record_done("k1", &sample_result("A"));
        j.record_start("k2", "B");
        let s = j.load();
        assert_eq!(s.attempts_of("k1"), 2);
        assert_eq!(s.attempts_of("k2"), 1);
        assert!(s.is_done("k1"));
        assert!(!s.is_done("k2"));
        // done supersedes crashed for the same key
        assert!(!s.crashes.contains_key("k1"));
        let r = &s.done["k1"];
        assert_eq!(r.outcomes[0].name, "lemma_weird \"quote\"");
        assert_eq!(r.outcomes[0].script.as_deref(), Some("intros.\napply h0."));
        j.clear();
    }

    #[test]
    fn entries_are_single_lines() {
        let j = Journal::at(temp_path("single-line"));
        j.clear();
        j.record_done("k", &sample_result("multi\nline \"label\""));
        let text = std::fs::read_to_string(j.path()).unwrap();
        assert_eq!(text.lines().count(), 1);
        j.clear();
    }

    #[test]
    fn torn_tail_line_is_skipped() {
        let j = Journal::at(temp_path("torn"));
        j.clear();
        j.record_done("k1", &sample_result("A"));
        j.record_done("k2", &sample_result("B"));
        let text = std::fs::read_to_string(j.path()).unwrap();
        // Simulate a crash mid-write: truncate the last line in half.
        let lines: Vec<&str> = text.lines().collect();
        let torn = format!("{}\n{}", lines[0], &lines[1][..lines[1].len() / 2]);
        std::fs::write(j.path(), torn).unwrap();
        let s = j.load();
        assert!(s.is_done("k1"));
        assert!(!s.is_done("k2"));
        j.clear();
    }

    #[test]
    fn checksum_mismatch_is_skipped() {
        let j = Journal::at(temp_path("checksum"));
        j.clear();
        j.record_done("k1", &sample_result("A"));
        let text = std::fs::read_to_string(j.path()).unwrap();
        // Flip the checksum without otherwise breaking the JSON.
        let tampered = text.replacen("\"checksum\":\"", "\"checksum\":\"f", 1);
        assert_ne!(text, tampered);
        std::fs::write(j.path(), tampered).unwrap();
        assert!(!j.load().is_done("k1"));
        j.clear();
    }
}
