//! Plain-text renderers for the paper's tables and figures, plus JSON
//! persistence shared by the bench binaries and EXPERIMENTS.md.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::coverage::{bin_coverage, category_coverage, BinCoverage};
use crate::experiment::CellResult;
use proof_oracle::tokenizer::bin_labels;

/// A bundle of cells, serializable to JSON for reuse across binaries.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct ResultSet {
    /// All completed cells.
    pub cells: Vec<CellResult>,
}

impl ResultSet {
    /// Finds a cell by label.
    pub fn cell(&self, label: &str) -> Option<&CellResult> {
        self.cells.iter().find(|c| c.label == label)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("serializable")
    }

    /// Parses from JSON.
    pub fn from_json(s: &str) -> Result<ResultSet, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Renders a Figure 1 panel: per-bin coverage for the given cells, as an
/// aligned text table with bar sparklines.
pub fn render_fig1(cells: &[&CellResult], title: &str) -> String {
    let mut out = String::new();
    let labels = bin_labels();
    let _ = writeln!(out, "{title}");
    let _ = write!(out, "{:38}", "model \\ human-proof tokens");
    for l in &labels {
        let _ = write!(out, "{l:>11}");
    }
    let _ = writeln!(out, "{:>9}", "overall");
    for cell in cells {
        let cov: BinCoverage = bin_coverage(cell);
        let rates = cov.rates();
        let _ = write!(out, "{:38}", cell.label);
        for (i, r) in rates.iter().enumerate() {
            match r {
                Some(r) => {
                    let _ = write!(out, "{:>7.0}% {:3}", r * 100.0, bar(*r));
                }
                None => {
                    let _ = write!(out, "{:>11}", format!("-/{}", cov.totals[i]));
                }
            }
        }
        let _ = writeln!(out, "{:>8.1}%", cov.overall() * 100.0);
    }
    out
}

fn bar(r: f64) -> &'static str {
    match (r * 4.0).round() as u32 {
        0 => "   ",
        1 => "#  ",
        2 => "## ",
        _ => "###",
    }
}

/// Renders Table 1: category coverage, actual / expected.
pub fn render_table1(cells: &[&CellResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1: proof coverage across categories (actual / expected)"
    );
    let _ = writeln!(
        out,
        "{:28} {:>17} {:>17} {:>17}",
        "Model", "Utilities", "CHL", "File System"
    );
    for cell in cells {
        let cats = category_coverage(cell);
        let _ = write!(out, "{:28}", cell.label);
        for c in cats {
            let _ = write!(
                out,
                " {:>7.1}% / {:>6.1}%",
                c.actual * 100.0,
                c.expected * 100.0
            );
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders Table 2: proved / stuck / fuelout percentages and the
/// qualitative metrics, as `vanilla -> hints` pairs.
pub fn render_table2(pairs: &[(&CellResult, &CellResult)], baseline: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2: outcomes and qualitative metrics (vanilla -> with hints)"
    );
    let _ = writeln!(
        out,
        "{:32} {:>16} {:>16} {:>14} {:>16} {:>18}",
        "Model", "Proved", "Stuck", "Fuelout", "Similarity", "Length"
    );
    for (vanilla, hints) in pairs {
        let name = vanilla.label.clone();
        let _ = writeln!(
            out,
            "{:32} {:>6.1}% -> {:<5.1}% {:>6.1}% -> {:<5.1}% {:>5.1}% -> {:<4.1}% {:>6.3} -> {:<6.3} {:>7.1}% -> {:<6.1}%",
            name,
            vanilla.proved_rate() * 100.0,
            hints.proved_rate() * 100.0,
            vanilla.rate_of("stuck") * 100.0,
            hints.rate_of("stuck") * 100.0,
            vanilla.rate_of("fuelout") * 100.0,
            hints.rate_of("fuelout") * 100.0,
            vanilla.avg_similarity(),
            hints.avg_similarity(),
            vanilla.avg_length_ratio(),
            hints.avg_length_ratio(),
        );
    }
    let _ = writeln!(
        out,
        "(random-pair proof similarity baseline: {baseline:.3})"
    );
    out
}

/// Renders the pre-flight pruning table: per-reason static rejection
/// counts for each cell, plus the pruned share of all model proposals.
pub fn render_preflight(cells: &[&CellResult]) -> String {
    use std::collections::BTreeMap;
    let mut out = String::new();
    let _ = writeln!(out, "Pre-flight pruning by reason code");
    // Collect the union of reason codes so every cell prints the same
    // columns even when a reason never fires for it.
    let mut codes: Vec<String> = Vec::new();
    for cell in cells {
        for o in &cell.outcomes {
            for code in o.pruned_reasons.keys() {
                if !codes.contains(code) {
                    codes.push(code.clone());
                }
            }
        }
    }
    codes.sort();
    for cell in cells {
        let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
        let mut pruned: u64 = 0;
        let mut queries: u64 = 0;
        for o in &cell.outcomes {
            pruned += u64::from(o.pruned);
            queries += u64::from(o.queries);
            for (code, n) in &o.pruned_reasons {
                *totals.entry(code.as_str()).or_insert(0) += u64::from(*n);
            }
        }
        let _ = writeln!(
            out,
            "{} (pruned {pruned} across {queries} queries)",
            cell.label
        );
        for code in &codes {
            let n = totals.get(code.as_str()).copied().unwrap_or(0);
            let share = if pruned > 0 {
                100.0 * n as f64 / pruned as f64
            } else {
                0.0
            };
            let _ = writeln!(out, "  {code:24} {n:>6}  {share:>5.1}%");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::TheoremOutcome;

    fn mini_cell(label: &str) -> CellResult {
        CellResult {
            label: label.into(),
            setting: "hints".into(),
            variant: String::new(),
            outcomes: vec![TheoremOutcome {
                name: "t".into(),
                file: "NatUtils".into(),
                category: "Utilities".into(),
                human_tokens: 10,
                bin: 0,
                outcome: "proved".into(),
                script: Some("intros. auto.".into()),
                gen_tokens: Some(5),
                similarity: Some(0.8),
                queries: 3,
                pruned: 0,
                pruned_reasons: Default::default(),
            }],
        }
    }

    #[test]
    fn renderers_produce_text() {
        let a = mini_cell("A");
        let b = mini_cell("B");
        let f = render_fig1(&[&a, &b], "Figure 1a");
        assert!(f.contains("Figure 1a") && f.contains('A') && f.contains("overall"));
        let t1 = render_table1(&[&a]);
        assert!(t1.contains("Utilities"));
        let t2 = render_table2(&[(&a, &b)], 0.36);
        assert!(t2.contains("->") && t2.contains("0.360"));
    }

    #[test]
    fn preflight_table_sums_reason_counts() {
        let mut a = mini_cell("A");
        a.outcomes[0].pruned = 3;
        a.outcomes[0]
            .pruned_reasons
            .insert("unknown-name".into(), 2);
        a.outcomes[0]
            .pruned_reasons
            .insert("head-mismatch".into(), 1);
        let t = render_preflight(&[&a]);
        assert!(t.contains("pruned 3"));
        assert!(t.contains("unknown-name"));
        assert!(t.contains("head-mismatch"));
    }

    #[test]
    fn json_round_trip() {
        let rs = ResultSet {
            cells: vec![mini_cell("A")],
        };
        let s = rs.to_json();
        let back = ResultSet::from_json(&s).unwrap();
        assert_eq!(back.cells.len(), 1);
        assert_eq!(back.cells[0].label, "A");
        assert!(back.cell("A").is_some());
        assert!(back.cell("Z").is_none());
    }
}
