//! Normalized Levenshtein similarity (§4.2 "Proof similarity").
//!
//! The paper reports the average normalized Levenshtein distance between
//! LLM-generated proofs and the human proofs, "ranging from 0 to 1, where
//! 1 denotes an exact match": similarity = 1 − dist / max(len).

/// Character-level Levenshtein edit distance.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized similarity in [0, 1]; 1 is an exact match.
pub fn similarity(a: &str, b: &str) -> f64 {
    let d = levenshtein(a, b);
    let m = a.chars().count().max(b.chars().count());
    if m == 0 {
        return 1.0;
    }
    1.0 - d as f64 / m as f64
}

/// Canonicalizes a proof script for comparison: whitespace collapsed,
/// bullets dropped (they are focus bookkeeping, not proof content).
pub fn canonical_script(s: &str) -> String {
    let mut out = String::new();
    for sentence in minicoq::parse::split_sentences(s) {
        let sentence = sentence
            .trim_start_matches(|c: char| matches!(c, '-' | '+' | '*') || c.is_whitespace());
        if sentence.is_empty() {
            continue;
        }
        let mut prev_space = false;
        for c in sentence.chars() {
            if c.is_whitespace() {
                if !prev_space {
                    out.push(' ');
                }
                prev_space = true;
            } else {
                out.push(c);
                prev_space = false;
            }
        }
        out.push_str(". ");
    }
    out.trim_end().to_string()
}

/// The random-pair baseline of §4.2: average similarity between the proofs
/// of unrelated theorems (the paper measures ≈0.360).
pub fn random_pair_baseline(proofs: &[String], pairs: usize) -> f64 {
    if proofs.len() < 2 || pairs == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut n = 0usize;
    // Deterministic pseudo-random pairs via a multiplicative stride.
    let len = proofs.len();
    for k in 0..pairs {
        let i = (k.wrapping_mul(2654435761)) % len;
        let j = (k.wrapping_mul(40503).wrapping_add(17)) % len;
        if i == j {
            continue;
        }
        total += similarity(&canonical_script(&proofs[i]), &canonical_script(&proofs[j]));
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
    }

    #[test]
    fn similarity_range() {
        assert_eq!(similarity("intros. auto.", "intros. auto."), 1.0);
        let s = similarity("intros. auto.", "lia.");
        assert!((0.0..1.0).contains(&s));
    }

    #[test]
    fn canonicalization_drops_bullets() {
        let a = canonical_script("intros.\n  - auto.\n  - lia.");
        assert_eq!(a, "intros. auto. lia.");
    }

    #[test]
    fn baseline_is_below_self_similarity() {
        let proofs = vec![
            "intros. reflexivity.".to_string(),
            "induction n. - reflexivity. - simpl. rewrite IHn. reflexivity.".to_string(),
            "intros. lia.".to_string(),
            "unfold incl. intros. apply H. assumption.".to_string(),
        ];
        let b = random_pair_baseline(&proofs, 50);
        assert!(b > 0.0 && b < 0.9, "baseline {b}");
    }
}
