//! The parallel, cache-aware evaluation engine.
//!
//! A cell's theorems are independent: the simulator's randomness is a pure
//! hash of (model, theorem, query, candidate) and every worker holds its
//! own [`SimulatedModel`] clone and an [`Arc`]-shared environment snapshot,
//! so evaluating them on a work-stealing pool is *bit-identical* to the
//! serial loop (enforced by `tests/runner_tests.rs`). On top of the pool
//! sits a content-hashed on-disk cell cache: a completed [`CellResult`] is
//! stored under `target/cells/<hash>.json`, keyed by every input that
//! affects the outcomes (profile, setting, scope, search configuration,
//! tuning, retrieval), so re-running a bench binary with an unchanged
//! configuration loads instead of recomputing — and *changing* any knob
//! changes the hash, which is the cache-invalidation story.
//!
//! Worker count: `--jobs N` on the command line beats a `JOBS=N`
//! environment variable beats [`std::thread::available_parallelism`].

use std::any::Any;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use fscq_corpus::Corpus;
use proof_chaos::{FaultKind, FaultPlan};
use proof_oracle::prompt::PromptCache;
use proof_oracle::split::hint_set;
use proof_search::RecoveryConfig;
use serde::{Deserialize, Serialize};

use crate::experiment::{
    eval_theorem_with_recovery, finish_cell, CellConfig, CellResult, TheoremOutcome,
};
use crate::journal::{fnv1a, Journal};

/// Bump when the cached [`CellResult`] layout or the evaluation semantics
/// change; old cache files then simply stop matching. Schema 3 wraps the
/// result in a checksummed envelope so torn writes are detected on load.
/// Schema 5 follows `SearchConfig::premise_rank` becoming a three-arm
/// enum (its `Debug` form feeds the key).
const CACHE_SCHEMA: u32 = 5;

/// Where cell caches live by default.
pub fn default_cache_dir() -> PathBuf {
    PathBuf::from("target/cells")
}

/// Resolves the worker count: `--jobs N` (or `--jobs=N`), then `JOBS=N`,
/// then the machine's available parallelism.
pub fn resolve_jobs() -> usize {
    if let Some(n) = jobs_arg(std::env::args().skip(1)) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves the within-proof expansion width: `--proof-jobs N` (or
/// `--proof-jobs=N`), then `PROOF_JOBS=N`, then `1` (sequential).
/// Unlike `--jobs` this does not default to the machine's parallelism:
/// on the typical grid the cell-level pool already saturates the cores,
/// and within-proof speculation only helps when cells outnumber workers.
pub fn resolve_proof_jobs() -> usize {
    if let Some(n) = flag_arg(std::env::args().skip(1), "--proof-jobs") {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("PROOF_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    1
}

fn jobs_arg(args: impl Iterator<Item = String>) -> Option<usize> {
    flag_arg(args, "--jobs")
}

fn flag_arg(args: impl Iterator<Item = String>, flag: &str) -> Option<usize> {
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if a == flag {
            if let Some(v) = args.peek() {
                if let Ok(n) = v.parse::<usize>() {
                    return Some(n);
                }
            }
        } else if let Some(v) = a.strip_prefix(flag).and_then(|r| r.strip_prefix('=')) {
            if let Ok(n) = v.parse::<usize>() {
                return Some(n);
            }
        }
    }
    None
}

/// The content hash a cell caches under: FNV-1a over a stable rendering of
/// every outcome-affecting field, plus the schema version.
pub fn cell_cache_key(cell: &CellConfig) -> String {
    // `Debug` of the config is a stable function of its fields (floats
    // render shortest-roundtrip), which is exactly the keying we want.
    let repr = format!("v{CACHE_SCHEMA}:{cell:?}");
    let mut h: u64 = 0xcbf29ce484222325;
    for b in repr.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    format!("{h:016x}")
}

/// A cell evaluation that died mid-flight: the panic payload, captured at
/// the cell boundary so one poisoned cell cannot take down a grid run and
/// discard every other cell's completed outcomes.
#[derive(Debug, Clone)]
pub struct CellCrash {
    /// Display label of the crashed cell.
    pub label: String,
    /// The panic payload, rendered to text.
    pub panic: String,
}

impl std::fmt::Display for CellCrash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell `{}` crashed: {}", self.label, self.panic)
    }
}

impl std::error::Error for CellCrash {}

/// Renders a caught panic payload as text (panics carry `&str` or
/// `String` in practice; anything else gets a placeholder).
fn panic_text(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Evaluates the given theorem indices under `cell` on `jobs` workers and
/// returns the outcomes in the order of `indices` (corpus order when the
/// caller passes a sorted eval set). Bit-identical to a serial loop.
/// Panics if the evaluation panics; fault-aware callers want
/// [`run_indices_checked`], which captures the crash instead.
pub fn run_indices_jobs(
    corpus: &Corpus,
    cell: &CellConfig,
    indices: &[usize],
    jobs: usize,
) -> Vec<TheoremOutcome> {
    match run_indices_checked(corpus, cell, indices, jobs, &RecoveryConfig::default(), 0) {
        Ok(outcomes) => outcomes,
        Err(crash) => panic!("{crash}"),
    }
}

/// As [`run_indices_jobs`], under an explicit recovery policy and with
/// cell-level panic isolation: a panic anywhere in the evaluation — a
/// worker thread, the serial loop, an oracle whose faults outlasted every
/// retry, or an injected [`FaultKind::WorkerPanic`] — is caught at the
/// cell boundary and returned as a typed [`CellCrash`].
///
/// `attempt` is how many evaluations of this cell already *began*
/// (journal `start` entries); the worker-panic fault site is keyed on it,
/// so a fault that fired on attempt 0 stays quiet on the resumed
/// attempt 1 (`FaultPlan::should_fault_at`).
pub fn run_indices_checked(
    corpus: &Corpus,
    cell: &CellConfig,
    indices: &[usize],
    jobs: usize,
    recovery: &RecoveryConfig,
    attempt: u32,
) -> Result<Vec<TheoremOutcome>, CellCrash> {
    let dev = &corpus.dev;
    let hints = hint_set(dev);
    let prompt_cfg = cell.prompt_config();
    let prompt_cache = PromptCache::new();
    // The injected worker panic fires while evaluating the first stolen
    // index, whichever worker steals it — schedule-independent, so the
    // crash point is deterministic under any `--jobs`.
    let inject_panic = recovery.fault_plan.as_ref().is_some_and(|plan| {
        plan.should_fault_at(FaultKind::WorkerPanic, &cell_cache_key(cell), attempt)
    });
    let crash = |payload: Box<dyn Any + Send>| CellCrash {
        label: cell.label(),
        panic: panic_text(payload),
    };
    if jobs <= 1 || indices.len() <= 1 {
        return std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut model = cell.model();
            indices
                .iter()
                .enumerate()
                .map(|(k, &i)| {
                    if inject_panic && k == 0 {
                        panic!("injected: worker panic in cell `{}`", cell.label());
                    }
                    eval_theorem_with_recovery(
                        dev,
                        i,
                        &hints,
                        &prompt_cfg,
                        &cell.search,
                        &mut model,
                        &prompt_cache,
                        recovery,
                    )
                })
                .collect()
        }))
        .map_err(crash);
    }
    let next = AtomicUsize::new(0);
    let workers = jobs.min(indices.len());
    let joined: Vec<std::thread::Result<Vec<(usize, TheoremOutcome)>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut model = cell.model();
                    let mut out = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= indices.len() {
                            break;
                        }
                        if inject_panic && k == 0 {
                            panic!("injected: worker panic in cell `{}`", cell.label());
                        }
                        out.push((
                            k,
                            eval_theorem_with_recovery(
                                dev,
                                indices[k],
                                &hints,
                                &prompt_cfg,
                                &cell.search,
                                &mut model,
                                &prompt_cache,
                                recovery,
                            ),
                        ));
                    }
                    out
                })
            })
            .collect();
        // Join every worker before deciding the cell's fate: a panic
        // in one must not leave siblings detached (that was the
        // `h.join().expect(...)` bug — the first panicking join took
        // down the whole process).
        handles.into_iter().map(|h| h.join()).collect()
    });
    let mut parts = Vec::new();
    for j in joined {
        match j {
            Ok(part) => parts.push(part),
            Err(payload) => return Err(crash(payload)),
        }
    }
    let mut slots: Vec<Option<TheoremOutcome>> = indices.iter().map(|_| None).collect();
    for part in parts {
        for (k, o) in part {
            slots[k] = Some(o);
        }
    }
    Ok(slots
        .into_iter()
        .map(|o| o.expect("every stolen index produced an outcome"))
        .collect())
}

/// Runs one cell on `jobs` workers (no disk cache).
pub fn run_cell_jobs(corpus: &Corpus, cell: &CellConfig, jobs: usize) -> CellResult {
    let indices = cell.eval_indices(&corpus.dev);
    let outcomes = run_indices_jobs(corpus, cell, &indices, jobs);
    finish_cell(cell, outcomes)
}

/// How a cell's result was obtained — every path through
/// [`Runner::run_cell_checked`] lands in exactly one of these, so
/// `BENCH_eval.json` times computed, cached, resumed, *and* crashed cells
/// consistently (crashed cells used to silently skip timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellSource {
    /// Evaluated on the pool this run.
    Computed,
    /// Served from the content-hashed disk cache.
    CacheHit,
    /// Served from the crash-safe journal on a resumed run.
    Journal,
    /// The evaluation panicked; the wall time covers work up to the crash.
    Crashed,
}

impl CellSource {
    /// The `outcome` string persisted in [`CellBench`].
    pub fn label(self) -> &'static str {
        match self {
            CellSource::Computed => "computed",
            CellSource::CacheHit => "cache_hit",
            CellSource::Journal => "journal",
            CellSource::Crashed => "crashed",
        }
    }
}

/// Per-cell timing record, persisted to `BENCH_eval.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellBench {
    /// Cell display label.
    pub label: String,
    /// Number of theorems evaluated (or loaded).
    pub theorems: usize,
    /// Wall-clock milliseconds for this cell.
    pub wall_ms: f64,
    /// Theorems per second.
    pub thm_per_sec: f64,
    /// Worker count used.
    pub jobs: usize,
    /// True when the cell was served from the disk cache or the journal.
    pub cache_hit: bool,
    /// How the result was obtained ([`CellSource::label`]); empty in
    /// records written before the field existed.
    #[serde(default)]
    pub outcome: String,
    /// Experiment-variant tag ([`CellConfig::variant`]). Disambiguates
    /// A/B records that would otherwise share a label (`--premise-ab`
    /// used to write two identical-looking cells). Empty — and absent
    /// from the JSON — for standard cells.
    #[serde(default, skip_serializing_if = "String::is_empty")]
    pub variant: String,
}

/// The `BENCH_eval.json` artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchEval {
    /// Worker count the runner resolved to.
    pub jobs: usize,
    /// Free-form context (host core count, caveats).
    pub notes: String,
    /// Oracle calls that faulted across the run, from the always-on
    /// `search.oracle_faults` metric (zero in a clean run).
    #[serde(default)]
    pub oracle_faults: u64,
    /// Retry attempts issued for those faults
    /// (`search.oracle_retries`).
    #[serde(default)]
    pub oracle_retries: u64,
    /// Per-cell records, in execution order.
    pub cells: Vec<CellBench>,
    /// Elo leaderboard across the run's model configurations, when the
    /// harness computed one (the `gen grid` bench does); absent otherwise
    /// so pre-existing artifacts keep their exact shape.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub elo: Option<crate::elo::EloLeaderboard>,
}

/// The evaluation engine: a work-stealing pool plus the on-disk cell cache
/// and a timing log. Every bench binary funnels its cells through one of
/// these.
pub struct Runner {
    jobs: usize,
    cache_dir: Option<PathBuf>,
    bench: Mutex<Vec<CellBench>>,
    recovery: RecoveryConfig,
    journal: Option<Journal>,
}

impl Runner {
    /// A runner with the environment-resolved worker count and the default
    /// cache directory.
    pub fn from_env() -> Runner {
        Runner {
            jobs: resolve_jobs(),
            cache_dir: Some(default_cache_dir()),
            bench: Mutex::new(Vec::new()),
            recovery: RecoveryConfig {
                proof_jobs: resolve_proof_jobs(),
                ..RecoveryConfig::default()
            },
            journal: None,
        }
    }

    /// Overrides the worker count.
    pub fn with_jobs(mut self, jobs: usize) -> Runner {
        self.jobs = jobs.max(1);
        self
    }

    /// Overrides the cache directory.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Runner {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Disables the disk cache (always recompute).
    pub fn without_cache(mut self) -> Runner {
        self.cache_dir = None;
        self
    }

    /// Overrides the oracle-recovery policy (retry counts, backoff).
    pub fn with_recovery(mut self, recovery: RecoveryConfig) -> Runner {
        self.recovery = recovery;
        self
    }

    /// Arms a fault plan: oracle faults, spurious STM timeouts, worker
    /// panics and cache corruption are injected per the plan's seeded
    /// rates. Recovery (retry/backoff, panic isolation, checksummed
    /// cache) keeps every *recoverable* fault invisible in the results.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Runner {
        self.recovery.fault_plan = Some(plan);
        self
    }

    /// Attaches a crash-safe progress journal: completed cells are
    /// appended as JSONL and served from the journal on a `--resume` run
    /// instead of being re-evaluated.
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Runner {
        self.journal = Some(Journal::at(path.into()));
        self
    }

    /// The resolved worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.recovery.fault_plan.as_ref()
    }

    /// Runs (or loads) one cell: consult the content-hashed cache, else
    /// evaluate on the pool and populate it. Records a timing entry either
    /// way. Panics if the cell evaluation panics; fault-aware callers
    /// want [`Runner::run_cell_checked`].
    pub fn run_cell(&self, corpus: &Corpus, cell: &CellConfig) -> CellResult {
        match self.run_cell_checked(corpus, cell) {
            Ok(result) => result,
            Err(crash) => panic!("{crash}"),
        }
    }

    /// As [`Runner::run_cell`], with cell-level panic isolation: a
    /// poisoned cell comes back as `Err(CellCrash)` and every other
    /// cell's outcome survives. With a journal attached, completed cells
    /// are served from it (resume), a `start` entry precedes the work and
    /// a `done`/`crashed` entry follows it, so a run killed at any point
    /// resumes without repeating finished cells.
    pub fn run_cell_checked(
        &self,
        corpus: &Corpus,
        cell: &CellConfig,
    ) -> Result<CellResult, CellCrash> {
        let label = cell.label();
        let mut sw = proof_trace::Stopwatch::span("cell", &label);
        let key = cell_cache_key(cell);
        let journal_state = {
            let _sp = proof_trace::span("journal", "load");
            self.journal.as_ref().map(|j| j.load())
        };
        if let Some(state) = &journal_state {
            if let Some(done) = state.done.get(&key) {
                proof_trace::event("journal", "hit");
                sw.span_mut().field_str("source", "journal");
                self.record(
                    cell,
                    done.outcomes.len(),
                    sw.elapsed_ms(),
                    CellSource::Journal,
                );
                return Ok(done.clone());
            }
        }
        if let Some(path) = self.cache_path(cell) {
            let hit = {
                let _sp = proof_trace::span("cache", "load");
                load_cell(&path)
            };
            if let Some(hit) = hit {
                proof_trace::event("cache", "hit");
                if let Some(journal) = &self.journal {
                    let _sp = proof_trace::span("journal", "done");
                    journal.record_done(&key, &hit);
                }
                sw.span_mut().field_str("source", "cache");
                self.record(
                    cell,
                    hit.outcomes.len(),
                    sw.elapsed_ms(),
                    CellSource::CacheHit,
                );
                return Ok(hit);
            }
            proof_trace::event("cache", "miss");
        }
        let attempt = journal_state
            .as_ref()
            .map(|s| s.attempts_of(&key))
            .unwrap_or(0);
        if let Some(journal) = &self.journal {
            let _sp = proof_trace::span("journal", "start");
            journal.record_start(&key, &label);
        }
        let indices = cell.eval_indices(&corpus.dev);
        match run_indices_checked(corpus, cell, &indices, self.jobs, &self.recovery, attempt) {
            Ok(outcomes) => {
                let result = finish_cell(cell, outcomes);
                if let Some(path) = self.cache_path(cell) {
                    let _sp = proof_trace::span("cache", "store");
                    store_cell(&path, &result);
                    self.maybe_corrupt_cache(&path, &key);
                }
                if let Some(journal) = &self.journal {
                    let _sp = proof_trace::span("journal", "done");
                    journal.record_done(&key, &result);
                }
                sw.span_mut().field_str("source", "computed");
                self.record(
                    cell,
                    result.outcomes.len(),
                    sw.elapsed_ms(),
                    CellSource::Computed,
                );
                Ok(result)
            }
            Err(crash) => {
                if let Some(journal) = &self.journal {
                    let _sp = proof_trace::span("journal", "crashed");
                    journal.record_crashed(&key, &crash.label, &crash.panic);
                }
                sw.span_mut().field_str("source", "crashed");
                self.record(cell, 0, sw.elapsed_ms(), CellSource::Crashed);
                Err(crash)
            }
        }
    }

    /// Injected cache corruption: truncate the just-written cell file in
    /// half, simulating a torn write. The schema-3 checksum envelope
    /// detects it on the next load and recomputes — the corruption is
    /// observable only as a cache miss.
    fn maybe_corrupt_cache(&self, path: &Path, key: &str) {
        let Some(plan) = &self.recovery.fault_plan else {
            return;
        };
        if !plan.should_fault(FaultKind::CacheCorrupt, key) {
            return;
        }
        if let Ok(bytes) = std::fs::read(path) {
            let half = bytes.len() / 2;
            let _ = std::fs::write(path, &bytes[..half]);
        }
    }

    fn cache_path(&self, cell: &CellConfig) -> Option<PathBuf> {
        self.cache_dir
            .as_ref()
            .map(|d| d.join(format!("{}.json", cell_cache_key(cell))))
    }

    fn record(&self, cell: &CellConfig, theorems: usize, wall_ms: f64, source: CellSource) {
        proof_oracle::lock_recover(&self.bench).push(CellBench {
            label: cell.label(),
            theorems,
            wall_ms,
            thm_per_sec: if wall_ms > 0.0 {
                theorems as f64 / (wall_ms / 1e3)
            } else {
                0.0
            },
            jobs: self.jobs,
            cache_hit: matches!(source, CellSource::CacheHit | CellSource::Journal),
            outcome: source.label().to_string(),
            variant: cell.variant.clone().unwrap_or_default(),
        });
    }

    /// The timing records accumulated so far.
    pub fn bench_records(&self) -> Vec<CellBench> {
        proof_oracle::lock_recover(&self.bench).clone()
    }

    /// Writes the accumulated records as `BENCH_eval.json`-style JSON.
    /// The fault totals come from the always-on registry counters the
    /// search layer bumps — never from serialized cell results, which stay
    /// byte-identical between clean and recovered runs.
    pub fn write_bench(&self, path: impl AsRef<Path>, notes: &str) -> std::io::Result<()> {
        let snap = proof_trace::metrics::snapshot();
        let eval = BenchEval {
            jobs: self.jobs,
            notes: notes.to_string(),
            oracle_faults: snap
                .counters
                .get("search.oracle_faults")
                .copied()
                .unwrap_or(0),
            oracle_retries: snap
                .counters
                .get("search.oracle_retries")
                .copied()
                .unwrap_or(0),
            cells: self.bench_records(),
            elo: None,
        };
        let text = serde_json::to_string_pretty(&eval)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(path, text)
    }
}

/// Loads a checksummed cache envelope, verifying schema and payload
/// digest. Any defect — unreadable file, wrong schema, torn payload,
/// checksum mismatch — reads as a cache miss, never an error: the entry
/// simply recomputes, and determinism makes the recomputed value
/// identical. Shared by the per-cell cache and the cone-keyed
/// per-theorem cache ([`crate::incremental`]).
pub(crate) fn load_envelope<T: Deserialize>(path: &Path) -> Option<T> {
    let text = std::fs::read_to_string(path).ok()?;
    let envelope = serde_json::from_str::<serde_json::Value>(&text).ok()?;
    if envelope.get("schema").and_then(|s| s.as_i64()) != Some(CACHE_SCHEMA as i64) {
        return None;
    }
    let payload = envelope.get("payload").and_then(|p| p.as_str())?;
    let stored = envelope.get("checksum").and_then(|c| c.as_str())?;
    if format!("{:016x}", fnv1a(payload.as_bytes())) != stored {
        return None;
    }
    serde_json::from_str(payload).ok()
}

/// Writes `value` inside the checksummed envelope. Best-effort: a failed
/// write only costs a recompute next run.
pub(crate) fn store_envelope<T: Serialize>(path: &Path, value: &T) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let Ok(payload) = serde_json::to_string(value) else {
        return;
    };
    let Ok(payload_str) = serde_json::to_string(&payload) else {
        return;
    };
    let envelope = format!(
        "{{\"schema\":{CACHE_SCHEMA},\"checksum\":\"{:016x}\",\"payload\":{payload_str}}}",
        fnv1a(payload.as_bytes())
    );
    let _ = std::fs::write(path, envelope);
}

fn load_cell(path: &Path) -> Option<CellResult> {
    load_envelope(path)
}

fn store_cell(path: &Path, result: &CellResult) {
    store_envelope(path, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proof_oracle::profiles::ModelProfile;
    use proof_oracle::prompt::PromptSetting;

    #[test]
    fn jobs_flag_parsing() {
        let v = |xs: &[&str]| jobs_arg(xs.iter().map(|s| s.to_string()));
        assert_eq!(v(&["--jobs", "4"]), Some(4));
        assert_eq!(v(&["--fresh", "--jobs=2"]), Some(2));
        assert_eq!(v(&["--jobs"]), None);
        assert_eq!(v(&["--jobs", "xyz"]), None);
        assert_eq!(v(&["--fresh"]), None);
    }

    #[test]
    fn proof_jobs_flag_parsing() {
        let v = |xs: &[&str]| flag_arg(xs.iter().map(|s| s.to_string()), "--proof-jobs");
        assert_eq!(v(&["--proof-jobs", "2"]), Some(2));
        assert_eq!(v(&["--fresh", "--proof-jobs=3"]), Some(3));
        assert_eq!(v(&["--jobs", "4"]), None);
        assert_eq!(v(&["--proof-jobsx=2"]), None);
        assert_eq!(v(&["--proof-jobs"]), None);
    }

    #[test]
    fn cache_key_separates_configurations() {
        let base = CellConfig::standard(ModelProfile::gpt4o(), PromptSetting::Hints);
        let mut other = base.clone();
        other.search.query_limit += 1;
        assert_ne!(cell_cache_key(&base), cell_cache_key(&other));
        let mut tuned = base.clone();
        tuned.tuning.noise_mult += 0.01;
        assert_ne!(cell_cache_key(&base), cell_cache_key(&tuned));
        assert_eq!(cell_cache_key(&base), cell_cache_key(&base.clone()));
    }
}
