//! The parallel, cache-aware evaluation engine.
//!
//! A cell's theorems are independent: the simulator's randomness is a pure
//! hash of (model, theorem, query, candidate) and every worker holds its
//! own [`SimulatedModel`] clone and an [`Arc`]-shared environment snapshot,
//! so evaluating them on a work-stealing pool is *bit-identical* to the
//! serial loop (enforced by `tests/runner_tests.rs`). On top of the pool
//! sits a content-hashed on-disk cell cache: a completed [`CellResult`] is
//! stored under `target/cells/<hash>.json`, keyed by every input that
//! affects the outcomes (profile, setting, scope, search configuration,
//! tuning, retrieval), so re-running a bench binary with an unchanged
//! configuration loads instead of recomputing — and *changing* any knob
//! changes the hash, which is the cache-invalidation story.
//!
//! Worker count: `--jobs N` on the command line beats a `JOBS=N`
//! environment variable beats [`std::thread::available_parallelism`].

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use fscq_corpus::Corpus;
use proof_oracle::prompt::PromptCache;
use proof_oracle::split::hint_set;
use serde::{Deserialize, Serialize};

use crate::experiment::{eval_theorem, finish_cell, CellConfig, CellResult, TheoremOutcome};

/// Bump when the cached [`CellResult`] layout or the evaluation semantics
/// change; old cache files then simply stop matching.
const CACHE_SCHEMA: u32 = 2;

/// Where cell caches live by default.
pub fn default_cache_dir() -> PathBuf {
    PathBuf::from("target/cells")
}

/// Resolves the worker count: `--jobs N` (or `--jobs=N`), then `JOBS=N`,
/// then the machine's available parallelism.
pub fn resolve_jobs() -> usize {
    if let Some(n) = jobs_arg(std::env::args().skip(1)) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn jobs_arg(args: impl Iterator<Item = String>) -> Option<usize> {
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if a == "--jobs" {
            if let Some(v) = args.peek() {
                if let Ok(n) = v.parse::<usize>() {
                    return Some(n);
                }
            }
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            if let Ok(n) = v.parse::<usize>() {
                return Some(n);
            }
        }
    }
    None
}

/// The content hash a cell caches under: FNV-1a over a stable rendering of
/// every outcome-affecting field, plus the schema version.
pub fn cell_cache_key(cell: &CellConfig) -> String {
    // `Debug` of the config is a stable function of its fields (floats
    // render shortest-roundtrip), which is exactly the keying we want.
    let repr = format!("v{CACHE_SCHEMA}:{cell:?}");
    let mut h: u64 = 0xcbf29ce484222325;
    for b in repr.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    format!("{h:016x}")
}

/// Evaluates the given theorem indices under `cell` on `jobs` workers and
/// returns the outcomes in the order of `indices` (corpus order when the
/// caller passes a sorted eval set). Bit-identical to a serial loop.
pub fn run_indices_jobs(
    corpus: &Corpus,
    cell: &CellConfig,
    indices: &[usize],
    jobs: usize,
) -> Vec<TheoremOutcome> {
    let dev = &corpus.dev;
    let hints = hint_set(dev);
    let prompt_cfg = cell.prompt_config();
    let prompt_cache = PromptCache::new();
    if jobs <= 1 || indices.len() <= 1 {
        let mut model = cell.model();
        return indices
            .iter()
            .map(|&i| {
                eval_theorem(
                    dev,
                    i,
                    &hints,
                    &prompt_cfg,
                    &cell.search,
                    &mut model,
                    &prompt_cache,
                )
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let workers = jobs.min(indices.len());
    let parts: Vec<Vec<(usize, TheoremOutcome)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut model = cell.model();
                    let mut out = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= indices.len() {
                            break;
                        }
                        out.push((
                            k,
                            eval_theorem(
                                dev,
                                indices[k],
                                &hints,
                                &prompt_cfg,
                                &cell.search,
                                &mut model,
                                &prompt_cache,
                            ),
                        ));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("runner worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<TheoremOutcome>> = indices.iter().map(|_| None).collect();
    for part in parts {
        for (k, o) in part {
            slots[k] = Some(o);
        }
    }
    slots
        .into_iter()
        .map(|o| o.expect("every stolen index produced an outcome"))
        .collect()
}

/// Runs one cell on `jobs` workers (no disk cache).
pub fn run_cell_jobs(corpus: &Corpus, cell: &CellConfig, jobs: usize) -> CellResult {
    let indices = cell.eval_indices(&corpus.dev);
    let outcomes = run_indices_jobs(corpus, cell, &indices, jobs);
    finish_cell(cell, outcomes)
}

/// Per-cell timing record, persisted to `BENCH_eval.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellBench {
    /// Cell display label.
    pub label: String,
    /// Number of theorems evaluated (or loaded).
    pub theorems: usize,
    /// Wall-clock milliseconds for this cell.
    pub wall_ms: f64,
    /// Theorems per second.
    pub thm_per_sec: f64,
    /// Worker count used.
    pub jobs: usize,
    /// True when the cell was served from the disk cache.
    pub cache_hit: bool,
}

/// The `BENCH_eval.json` artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchEval {
    /// Worker count the runner resolved to.
    pub jobs: usize,
    /// Free-form context (host core count, caveats).
    pub notes: String,
    /// Per-cell records, in execution order.
    pub cells: Vec<CellBench>,
}

/// The evaluation engine: a work-stealing pool plus the on-disk cell cache
/// and a timing log. Every bench binary funnels its cells through one of
/// these.
pub struct Runner {
    jobs: usize,
    cache_dir: Option<PathBuf>,
    bench: Mutex<Vec<CellBench>>,
}

impl Runner {
    /// A runner with the environment-resolved worker count and the default
    /// cache directory.
    pub fn from_env() -> Runner {
        Runner {
            jobs: resolve_jobs(),
            cache_dir: Some(default_cache_dir()),
            bench: Mutex::new(Vec::new()),
        }
    }

    /// Overrides the worker count.
    pub fn with_jobs(mut self, jobs: usize) -> Runner {
        self.jobs = jobs.max(1);
        self
    }

    /// Overrides the cache directory.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Runner {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Disables the disk cache (always recompute).
    pub fn without_cache(mut self) -> Runner {
        self.cache_dir = None;
        self
    }

    /// The resolved worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs (or loads) one cell: consult the content-hashed cache, else
    /// evaluate on the pool and populate it. Records a timing entry either
    /// way.
    pub fn run_cell(&self, corpus: &Corpus, cell: &CellConfig) -> CellResult {
        let start = Instant::now();
        if let Some(path) = self.cache_path(cell) {
            if let Some(hit) = load_cell(&path) {
                self.record(cell.label(), hit.outcomes.len(), start, true);
                return hit;
            }
        }
        let result = run_cell_jobs(corpus, cell, self.jobs);
        if let Some(path) = self.cache_path(cell) {
            store_cell(&path, &result);
        }
        self.record(cell.label(), result.outcomes.len(), start, false);
        result
    }

    fn cache_path(&self, cell: &CellConfig) -> Option<PathBuf> {
        self.cache_dir
            .as_ref()
            .map(|d| d.join(format!("{}.json", cell_cache_key(cell))))
    }

    fn record(&self, label: String, theorems: usize, start: Instant, cache_hit: bool) {
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        proof_oracle::lock_recover(&self.bench).push(CellBench {
            label,
            theorems,
            wall_ms,
            thm_per_sec: if wall_ms > 0.0 {
                theorems as f64 / (wall_ms / 1e3)
            } else {
                0.0
            },
            jobs: self.jobs,
            cache_hit,
        });
    }

    /// The timing records accumulated so far.
    pub fn bench_records(&self) -> Vec<CellBench> {
        proof_oracle::lock_recover(&self.bench).clone()
    }

    /// Writes the accumulated records as `BENCH_eval.json`-style JSON.
    pub fn write_bench(&self, path: impl AsRef<Path>, notes: &str) -> std::io::Result<()> {
        let eval = BenchEval {
            jobs: self.jobs,
            notes: notes.to_string(),
            cells: self.bench_records(),
        };
        let text = serde_json::to_string_pretty(&eval)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(path, text)
    }
}

fn load_cell(path: &Path) -> Option<CellResult> {
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

fn store_cell(path: &Path, result: &CellResult) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    // Best-effort: a failed write only costs a recompute next run.
    if let Ok(text) = serde_json::to_string_pretty(result) {
        let _ = std::fs::write(path, text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proof_oracle::profiles::ModelProfile;
    use proof_oracle::prompt::PromptSetting;

    #[test]
    fn jobs_flag_parsing() {
        let v = |xs: &[&str]| jobs_arg(xs.iter().map(|s| s.to_string()));
        assert_eq!(v(&["--jobs", "4"]), Some(4));
        assert_eq!(v(&["--fresh", "--jobs=2"]), Some(2));
        assert_eq!(v(&["--jobs"]), None);
        assert_eq!(v(&["--jobs", "xyz"]), None);
        assert_eq!(v(&["--fresh"]), None);
    }

    #[test]
    fn cache_key_separates_configurations() {
        let base = CellConfig::standard(ModelProfile::gpt4o(), PromptSetting::Hints);
        let mut other = base.clone();
        other.search.query_limit += 1;
        assert_ne!(cell_cache_key(&base), cell_cache_key(&other));
        let mut tuned = base.clone();
        tuned.tuning.noise_mult += 0.01;
        assert_ne!(cell_cache_key(&base), cell_cache_key(&tuned));
        assert_eq!(cell_cache_key(&base), cell_cache_key(&base.clone()));
    }
}
