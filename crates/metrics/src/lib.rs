//! Evaluation harness: experiments, metrics and report data (§4).
//!
//! * [`levenshtein`] — normalized similarity between generated and human
//!   proofs (Table 2's qualitative metric);
//! * [`experiment`] — the per-(model, setting) experiment runner producing
//!   per-theorem outcomes;
//! * [`elo`] — a deterministic Elo-style ladder ranking model
//!   configurations by pairwise per-theorem duels (the generated-corpus
//!   leaderboard);
//! * [`runner`] — the parallel, cache-aware engine the bench binaries use:
//!   a work-stealing pool (bit-identical to the serial loop) plus a
//!   content-hashed, checksummed on-disk cell cache and `BENCH_eval.json`
//!   timing log, with cell-level panic isolation and optional seeded
//!   fault injection ([`proof_chaos`]);
//! * [`journal`] — the crash-safe JSONL progress journal behind
//!   `--resume`: completed cells are appended as they finish and served
//!   back without re-evaluation after an interrupted run;
//! * [`incremental`] — dirty-cone re-verification of an edited corpus
//!   with cone-keyed per-theorem caching and baseline-journal merging
//!   (`prove --incremental`);
//! * [`coverage`] — proof coverage by human-proof-length bin (Figure 1)
//!   and by category with expected-coverage correction (Table 1);
//! * [`report`] — plain-text renderers for every table and figure, plus
//!   JSON serialization so the bench binaries and EXPERIMENTS.md share one
//!   artifact format.

pub mod coverage;
pub mod elo;
pub mod experiment;
pub mod incremental;
pub mod journal;
pub mod levenshtein;
pub mod report;
pub mod runner;

pub use elo::{elo_ladder, render_leaderboard, EloEntry, EloLeaderboard};
pub use experiment::{run_cell, CellConfig, CellResult, EvalScope, TheoremOutcome};
pub use incremental::{load_edited, run_incremental, IncrementalConfig, IncrementalOutcome};
pub use journal::{Journal, JournalState};
pub use runner::{run_cell_jobs, CellCrash, Runner};
