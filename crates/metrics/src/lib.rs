//! Evaluation harness: experiments, metrics and report data (§4).
//!
//! * [`levenshtein`] — normalized similarity between generated and human
//!   proofs (Table 2's qualitative metric);
//! * [`experiment`] — the per-(model, setting) experiment runner producing
//!   per-theorem outcomes;
//! * [`coverage`] — proof coverage by human-proof-length bin (Figure 1)
//!   and by category with expected-coverage correction (Table 1);
//! * [`report`] — plain-text renderers for every table and figure, plus
//!   JSON serialization so the bench binaries and EXPERIMENTS.md share one
//!   artifact format.

pub mod coverage;
pub mod experiment;
pub mod levenshtein;
pub mod report;

pub use experiment::{run_cell, CellConfig, CellResult, EvalScope, TheoremOutcome};
