//! The corpus linter: local, per-item hygiene checks.
//!
//! Where the loader rejects developments that are *wrong* (unparseable
//! items, broken proofs, unknown imports), the linter flags developments
//! that are *untidy*: declarations that collide, binders that shadow,
//! hypotheses introduced and then ignored. Every diagnostic carries a
//! file/item span so CI can point at the offending declaration.
//!
//! Development-*global* checks (dead symbols, unresolved references, hint
//! cycles, positivity, axioms) live in the `corpus-analysis` crate, which
//! builds the whole-corpus dependency graph; the `lint` CLI composes both
//! so the two tools cannot disagree. The linter never mutates anything and
//! is intentionally conservative: each rule only fires when the problem is
//! certain from the loaded development alone.

use std::collections::{BTreeMap, BTreeSet};

use minicoq::formula::Formula;
use minicoq::parse::split_sentences;

use crate::item::ItemKind;
use crate::loader::Development;

/// The category of a lint diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintKind {
    /// Two items declare the same top-level name.
    DuplicateName,
    /// A quantifier rebinds a name already bound in an enclosing scope.
    ShadowedBinder,
    /// A proof introduces a named hypothesis it never mentions again.
    UnusedHypothesis,
}

impl LintKind {
    /// Stable machine-readable code for the diagnostic kind.
    pub fn code(self) -> &'static str {
        match self {
            LintKind::DuplicateName => "duplicate-name",
            LintKind::ShadowedBinder => "shadowed-binder",
            LintKind::UnusedHypothesis => "unused-hypothesis",
        }
    }
}

impl std::fmt::Display for LintKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// One lint finding, anchored to a file and item.
#[derive(Debug, Clone)]
pub struct LintDiagnostic {
    /// Diagnostic category.
    pub kind: LintKind,
    /// Module the finding is in.
    pub file: String,
    /// Item name (empty for unnamed items such as hints).
    pub item: String,
    /// Index of the item within its file.
    pub item_index: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for LintDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let item = if self.item.is_empty() {
            format!("item {}", self.item_index)
        } else {
            self.item.clone()
        };
        write!(f, "{}:{}: {}: {}", self.file, item, self.kind, self.message)
    }
}

/// Runs every lint pass over a loaded development.
pub fn lint_development(dev: &Development) -> Vec<LintDiagnostic> {
    let mut out = Vec::new();
    duplicate_names(dev, &mut out);
    shadowed_binders(dev, &mut out);
    unused_hypotheses(dev, &mut out);
    out
}

/// True for items that introduce a top-level name.
fn declares_name(kind: &ItemKind) -> bool {
    matches!(
        kind,
        ItemKind::SortDecl
            | ItemKind::Inductive
            | ItemKind::Definition
            | ItemKind::Fixpoint
            | ItemKind::Lemma
            | ItemKind::Axiom
    )
}

fn duplicate_names(dev: &Development, out: &mut Vec<LintDiagnostic>) {
    let mut first: BTreeMap<&str, (&str, usize)> = BTreeMap::new();
    for file in &dev.files {
        for (idx, item) in file.items.iter().enumerate() {
            if !declares_name(&item.kind) || item.name.is_empty() {
                continue;
            }
            match first.get(item.name.as_str()) {
                Some((f0, i0)) => out.push(LintDiagnostic {
                    kind: LintKind::DuplicateName,
                    file: file.name.clone(),
                    item: item.name.clone(),
                    item_index: idx,
                    message: format!("`{}` is already declared at {}:{}", item.name, f0, i0),
                }),
                None => {
                    first.insert(item.name.as_str(), (file.name.as_str(), idx));
                }
            }
        }
    }
}

/// Walks a formula with the enclosing binder scope, flagging rebinds.
fn walk_shadowing(f: &Formula, scope: &mut Vec<String>, report: &mut impl FnMut(&str)) {
    match f {
        Formula::True | Formula::False | Formula::Eq(..) | Formula::Pred(..) => {}
        Formula::Not(a) => walk_shadowing(a, scope, report),
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) | Formula::Iff(a, b) => {
            walk_shadowing(a, scope, report);
            walk_shadowing(b, scope, report);
        }
        Formula::Forall(v, _, body) | Formula::Exists(v, _, body) => {
            if scope.iter().any(|s| s == v.as_str()) {
                report(v);
            }
            scope.push(v.to_string());
            walk_shadowing(body, scope, report);
            scope.pop();
        }
        Formula::ForallSort(v, body) => {
            if scope.iter().any(|s| s == v.as_str()) {
                report(v);
            }
            scope.push(v.to_string());
            walk_shadowing(body, scope, report);
            scope.pop();
        }
        Formula::FMatch(_, arms) => {
            for (pat, arm) in arms {
                let binders = pat.binders();
                for b in &binders {
                    if scope.iter().any(|s| s == b.as_str()) {
                        report(b);
                    }
                    scope.push(b.to_string());
                }
                walk_shadowing(arm, scope, report);
                for _ in &binders {
                    scope.pop();
                }
            }
        }
    }
}

fn shadowed_binders(dev: &Development, out: &mut Vec<LintDiagnostic>) {
    for thm in &dev.theorems {
        let mut shadowed: BTreeSet<String> = BTreeSet::new();
        let mut scope = Vec::new();
        walk_shadowing(&thm.stmt, &mut scope, &mut |v| {
            shadowed.insert(v.to_string());
        });
        for v in shadowed {
            out.push(LintDiagnostic {
                kind: LintKind::ShadowedBinder,
                file: thm.file.clone(),
                item: thm.name.clone(),
                item_index: thm.item_index,
                message: format!("binder `{v}` shadows an enclosing binder"),
            });
        }
    }
}

/// Splits a `Hint Resolve a b` / `Hint Constructors p` sentence into its
/// class keyword and target names. Returns `None` for non-hint text.
pub fn hint_targets(text: &str) -> Option<(String, Vec<String>)> {
    let mut words = text.split_whitespace();
    if words.next()? != "Hint" {
        return None;
    }
    let class = words.next()?.to_string();
    let names = words
        .map(|w| w.trim_matches(|c: char| !c.is_ascii_alphanumeric() && c != '_'))
        .filter(|w| !w.is_empty())
        .map(str::to_string)
        .collect();
    Some((class, names))
}

/// Tactics that can discharge a goal using hypotheses or goal structure
/// without naming them: solvers consume the whole context, and unifying
/// tactics (`apply lemma`, `exact`, …) close goals whose statement still
/// mentions the introduced variables. Any occurrence after an `intros`
/// suppresses the unused-hypothesis rule — introducing a premise only to
/// reach the conclusion behind it is legitimate, so the rule fires only
/// when the remainder of the proof is purely structural (`reflexivity`,
/// `simpl`, `split`, …) and could not have needed the hypothesis at all.
const WILDCARD_TACTICS: &[&str] = &[
    "assumption",
    "eassumption",
    "auto",
    "eauto",
    "apply",
    "eapply",
    "exact",
    "pose",
    "econstructor",
    "constructor",
    "inversion",
    "trivial",
    "easy",
    "lia",
    "omega",
    "congruence",
    "contradiction",
    "tauto",
    "intuition",
    "subst",
    "firstorder",
];

/// The identifier tokens of a sentence.
fn tokens(s: &str) -> Vec<&str> {
    s.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|t| !t.is_empty())
        .collect()
}

fn unused_hypotheses(dev: &Development, out: &mut Vec<LintDiagnostic>) {
    for thm in &dev.theorems {
        let stmt_names: BTreeSet<&str> = tokens(&thm.statement_text).into_iter().collect();
        let sentences: Vec<String> = split_sentences(&thm.proof_text);
        for (i, sentence) in sentences.iter().enumerate() {
            // Only plain `intros a b c` sentences: intro patterns
            // (`[x|y]`, `(a, b)`) destructure, so their binders are
            // consumed structurally and are out of scope here.
            if sentence.contains(['[', '(', ']', ')']) {
                continue;
            }
            let toks = tokens(sentence);
            if toks.first() != Some(&"intros") || toks.len() < 2 {
                continue;
            }
            let rest = &sentences[i + 1..];
            let wildcard = rest
                .iter()
                .any(|s| tokens(s).iter().any(|t| WILDCARD_TACTICS.contains(t)));
            if wildcard {
                continue;
            }
            for name in &toks[1..] {
                // Names that also occur in the statement are the
                // theorem's own binders: they stay part of the goal, so
                // goal-directed tactics use them without naming them.
                if stmt_names.contains(name) {
                    continue;
                }
                let used = rest.iter().any(|s| tokens(s).contains(name));
                if !used {
                    out.push(LintDiagnostic {
                        kind: LintKind::UnusedHypothesis,
                        file: thm.file.clone(),
                        item: thm.name.clone(),
                        item_index: thm.item_index,
                        message: format!("hypothesis `{name}` is introduced but never used"),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::Loader;

    fn load(sources: &[(&str, &str)]) -> Development {
        let mut loader = Loader::new();
        for (name, text) in sources {
            loader.add_source(*name, *text);
        }
        loader.load().expect("test development loads")
    }

    #[test]
    fn clean_development_has_no_diagnostics() {
        let dev = load(&[(
            "A",
            "Fixpoint double (n : nat) : nat := match n with | 0 => 0 | S p => S (S (double p)) end.\n\
             Lemma double_0 : double 0 = 0.\nProof. reflexivity. Qed.",
        )]);
        assert!(lint_development(&dev).is_empty());
    }

    #[test]
    fn duplicate_names_are_flagged() {
        // The kernel already rejects same-namespace duplicates at load
        // time; the lint rule additionally catches collisions *across*
        // namespaces (a definition and a lemma sharing a name), which
        // load fine but make prompts and hint references ambiguous.
        let dev = load(&[(
            "A",
            "Definition t : nat := 0.\n\
             Lemma t : 0 = 0.\nProof. reflexivity. Qed.",
        )]);
        let diags = lint_development(&dev);
        assert!(
            diags
                .iter()
                .any(|d| d.kind == LintKind::DuplicateName && d.item == "t"),
            "{diags:?}"
        );
    }

    #[test]
    fn shadowed_binders_are_flagged() {
        let dev = load(&[(
            "A",
            "Lemma s : forall n : nat, forall n : nat, n = n.\n\
             Proof. intros a b. reflexivity. Qed.",
        )]);
        let diags = lint_development(&dev);
        assert!(
            diags
                .iter()
                .any(|d| d.kind == LintKind::ShadowedBinder && d.message.contains("`n`")),
            "{diags:?}"
        );
    }

    #[test]
    fn unused_hypotheses_are_flagged_unless_wildcards_follow() {
        let dev = load(&[(
            "A",
            "Lemma u : forall n : nat, n = n -> 0 = 0.\n\
             Proof. intros n H. reflexivity. Qed.\n\
             Lemma v : forall n : nat, n = n -> 0 = 0.\n\
             Proof. intros n H. trivial. Qed.\n\
             Lemma w : forall n : nat, n = 0 -> n = 0.\n\
             Proof. intros n H. rewrite H. reflexivity. Qed.",
        )]);
        let diags = lint_development(&dev);
        assert!(
            diags
                .iter()
                .any(|d| d.kind == LintKind::UnusedHypothesis && d.item == "u"),
            "{diags:?}"
        );
        // `trivial` may consume anything, so `v` is not flagged; `w`
        // actually rewrites with `H`, so it is not flagged either. The
        // statement binder `n` is never flagged: it remains part of the
        // goal.
        assert!(!diags.iter().any(|d| d.item == "v"), "{diags:?}");
        assert!(!diags.iter().any(|d| d.item == "w"), "{diags:?}");
        assert!(
            !diags.iter().any(|d| d.message.contains("`n`")),
            "{diags:?}"
        );
    }

    #[test]
    fn hint_targets_parse() {
        assert_eq!(
            hint_targets("Hint Resolve app_nil_l app_nil_r"),
            Some((
                "Resolve".into(),
                vec!["app_nil_l".into(), "app_nil_r".into()]
            ))
        );
        assert_eq!(
            hint_targets("Hint Constructors even"),
            Some(("Constructors".into(), vec!["even".into()]))
        );
        assert_eq!(hint_targets("Lemma x : 0 = 0"), None);
    }
}
