//! Emission of Gallina-lite modules.
//!
//! The procedural corpus generator builds theorems as kernel formulas and
//! witness scripts; this module renders them back into the vernacular
//! surface syntax, item by item, so the emitted text round-trips through
//! [`crate::item::group_items`] → [`crate::parser::parse_item`] →
//! [`crate::loader::Loader`]. Statements are rendered with the kernel's
//! pretty-printer ([`minicoq::pretty::formula_to_string`]), whose output
//! is pinned to reparse by the `intern_props` and `corpus_integrity`
//! suites.

use minicoq::formula::Formula;
use minicoq::pretty::formula_to_string;

/// Builds one module's source text item by item.
#[derive(Debug, Default, Clone)]
pub struct ModuleBuilder {
    out: String,
}

impl ModuleBuilder {
    /// An empty module.
    pub fn new() -> ModuleBuilder {
        ModuleBuilder::default()
    }

    /// Emits a `(* ... *)` header comment.
    pub fn comment(&mut self, text: &str) -> &mut ModuleBuilder {
        self.out.push_str("(* ");
        self.out.push_str(text);
        self.out.push_str(" *)\n\n");
        self
    }

    /// Emits a `Require Import` line.
    pub fn import(&mut self, module: &str) -> &mut ModuleBuilder {
        self.out.push_str("Require Import ");
        self.out.push_str(module);
        self.out.push_str(".\n\n");
        self
    }

    /// Emits a lemma with its proof script. `sentences` are tactic
    /// sentences without trailing dots; `Proof.`/`Qed.` wrapping and
    /// sentence terminators are added here.
    pub fn lemma(
        &mut self,
        name: &str,
        stmt: &Formula,
        sentences: &[String],
    ) -> &mut ModuleBuilder {
        self.lemma_text(name, &formula_to_string(stmt), sentences)
    }

    /// As [`ModuleBuilder::lemma`], from an already-rendered statement.
    pub fn lemma_text(
        &mut self,
        name: &str,
        stmt: &str,
        sentences: &[String],
    ) -> &mut ModuleBuilder {
        self.out.push_str("Lemma ");
        self.out.push_str(name);
        self.out.push_str(" : ");
        self.out.push_str(stmt);
        self.out.push_str(".\nProof.\n");
        for s in sentences {
            self.out.push_str("  ");
            self.out.push_str(s);
            self.out.push_str(".\n");
        }
        self.out.push_str("Qed.\n\n");
        self
    }

    /// Emits a `Hint Resolve` line.
    pub fn hint_resolve(&mut self, names: &[String]) -> &mut ModuleBuilder {
        if names.is_empty() {
            return self;
        }
        self.out.push_str("Hint Resolve ");
        self.out.push_str(&names.join(" "));
        self.out.push_str(".\n\n");
        self
    }

    /// The rendered module text.
    pub fn render(&self) -> String {
        let mut text = self.out.trim_end().to_string();
        text.push('\n');
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::{group_items, ItemKind};
    use minicoq::sort::Sort;
    use minicoq::term::Term;

    #[test]
    fn emitted_module_groups_back_into_items() {
        let stmt = Formula::forall(
            "n",
            Sort::nat(),
            Formula::Eq(Sort::nat(), Term::var("n"), Term::var("n")),
        );
        let mut b = ModuleBuilder::new();
        b.comment("Gen000: generated module")
            .lemma(
                "g0_refl",
                &stmt,
                &["intros n".to_string(), "reflexivity".to_string()],
            )
            .hint_resolve(&["g0_refl".to_string()]);
        let text = b.render();
        let items = group_items(&text).unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].kind, ItemKind::Lemma);
        assert_eq!(items[0].name, "g0_refl");
        assert!(items[0].proof.as_deref().unwrap().contains("intros n."));
        assert_eq!(items[1].kind, ItemKind::Hint);
    }

    #[test]
    fn emitted_lemma_replays() {
        let stmt = Formula::forall(
            "n",
            Sort::nat(),
            Formula::Eq(
                Sort::nat(),
                Term::App("add".into(), vec![Term::nat(0), Term::var("n")]),
                Term::var("n"),
            ),
        );
        let mut b = ModuleBuilder::new();
        b.lemma(
            "g0_add_0_l",
            &stmt,
            &["intros n".to_string(), "reflexivity".to_string()],
        );
        let mut loader = crate::loader::Loader::new().check_proofs(true);
        loader.add_source("Gen000", b.render());
        let dev = loader.load().expect("emitted module loads and replays");
        assert_eq!(dev.theorems.len(), 1);
    }
}
