//! Grouping sentences into declaration items.

use crate::split::{head_word, split_with_spans, Sentence};

/// The kind of a top-level declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    /// `Require Import M.`
    Import,
    /// `Sort T.`
    SortDecl,
    /// `Inductive` datatype or predicate (or mutual group).
    Inductive,
    /// `Definition`.
    Definition,
    /// `Fixpoint`.
    Fixpoint,
    /// `Lemma`/`Theorem`/`Corollary`/`Remark`, with its proof script.
    Lemma,
    /// `Axiom name : formula.` — a statement assumed without proof.
    Axiom,
    /// `Hint Resolve` / `Hint Constructors`.
    Hint,
}

/// A top-level item: its kind, the statement sentence(s), and for lemmas
/// the proof script.
#[derive(Debug, Clone)]
pub struct Item {
    /// Declaration kind.
    pub kind: ItemKind,
    /// The name declared (best-effort; empty for imports/hints).
    pub name: String,
    /// The statement text, e.g. `Lemma foo : forall ...` (no final `.`).
    pub text: String,
    /// For lemmas, the proof script between `Proof.` and `Qed.`
    /// (sentences joined with `. `, with a trailing `.`).
    pub proof: Option<String>,
    /// True for lemmas closed with `Admitted.` instead of `Qed.`: the
    /// statement is trusted without a checked proof.
    pub admitted: bool,
    /// Byte offset of the item's first sentence in the source file, for
    /// line-accurate diagnostics.
    pub start: usize,
}

impl Item {
    /// Renders the declaration as it would appear in a source file, with or
    /// without the proof body.
    pub fn render(&self, with_proof: bool) -> String {
        if self.admitted {
            return format!("{}.\nAdmitted.", self.text);
        }
        match (&self.proof, with_proof) {
            (Some(p), true) => format!("{}.\nProof.\n{}\nQed.", self.text, p),
            (Some(_), false) => format!("{}.\nProof.\n(* ... *)\nQed.", self.text),
            (None, _) => format!("{}.", self.text),
        }
    }
}

/// An error produced while grouping sentences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupError(pub String);

impl std::fmt::Display for GroupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for GroupError {}

fn second_word(text: &str) -> String {
    let head = head_word(text);
    let rest = text.trim_start();
    let rest = match rest.find(head) {
        Some(i) => &rest[i + head.len()..],
        None => rest,
    };
    head_word(rest).to_string()
}

/// Groups the sentences of a source file into items.
pub fn group_items(src: &str) -> Result<Vec<Item>, GroupError> {
    let sentences = split_with_spans(src);
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < sentences.len() {
        let s = &sentences[i];
        let head = head_word(&s.text);
        // The sentence span starts at the previous `.`+1, which includes
        // inter-sentence whitespace; diagnostics want the first real byte.
        let ws = src[s.start..s.end].len() - src[s.start..s.end].trim_start().len();
        let start = s.start + ws;
        let simple = |kind: ItemKind, name: String| Item {
            kind,
            name,
            text: s.text.clone(),
            proof: None,
            admitted: false,
            start,
        };
        match head {
            // Comment-only trailing text.
            "" => {
                i += 1;
            }
            "Require" => {
                out.push(simple(ItemKind::Import, last_word(&s.text)));
                i += 1;
            }
            "Sort" => {
                out.push(simple(ItemKind::SortDecl, second_word(&s.text)));
                i += 1;
            }
            "Inductive" => {
                out.push(simple(ItemKind::Inductive, second_word(&s.text)));
                i += 1;
            }
            "Definition" => {
                out.push(simple(ItemKind::Definition, second_word(&s.text)));
                i += 1;
            }
            "Fixpoint" => {
                out.push(simple(ItemKind::Fixpoint, second_word(&s.text)));
                i += 1;
            }
            "Axiom" => {
                out.push(simple(ItemKind::Axiom, second_word(&s.text)));
                i += 1;
            }
            "Hint" => {
                out.push(simple(ItemKind::Hint, String::new()));
                i += 1;
            }
            "Lemma" | "Theorem" | "Corollary" | "Remark" => {
                let name = second_word(&s.text);
                let stmt = s.text.clone();
                i += 1;
                // Optional `Proof` sentence.
                if i < sentences.len() && head_word(&sentences[i].text) == "Proof" {
                    i += 1;
                }
                let mut proof_sentences: Vec<String> = Vec::new();
                let mut closed = false;
                let mut admitted = false;
                while i < sentences.len() {
                    let t = &sentences[i].text;
                    let h = head_word(t);
                    if h == "Qed" || h == "Defined" {
                        i += 1;
                        closed = true;
                        break;
                    }
                    if h == "Admitted" {
                        i += 1;
                        closed = true;
                        admitted = true;
                        break;
                    }
                    proof_sentences.push(t.clone());
                    i += 1;
                }
                if !closed {
                    return Err(GroupError(format!("lemma {name}: missing Qed")));
                }
                // An admitted lemma keeps no proof: whatever partial script
                // preceded `Admitted.` was abandoned, not checked.
                let proof = (!admitted).then(|| format!("{}.", proof_sentences.join(". ")));
                out.push(Item {
                    kind: ItemKind::Lemma,
                    name,
                    text: stmt,
                    proof,
                    admitted,
                    start,
                });
            }
            other => {
                return Err(GroupError(format!(
                    "unknown vernacular command `{other}` in sentence `{}`",
                    truncate(&s.text)
                )));
            }
        }
    }
    Ok(out)
}

fn last_word(text: &str) -> String {
    text.trim_end()
        .rsplit(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .find(|w| !w.is_empty())
        .unwrap_or("")
        .to_string()
}

fn truncate(s: &str) -> String {
    if s.len() > 60 {
        // Back off to a char boundary: byte 60 may fall inside a
        // multibyte character.
        let mut end = 60;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}...", &s[..end])
    } else {
        s.to_string()
    }
}

/// Re-exported for convenience in tests.
pub use crate::split::Sentence as RawSentence;

#[allow(unused)]
fn _assert_sentence_used(_: &Sentence) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_lemma_with_proof() {
        let src = "Lemma a : 1 = 1.\nProof. simpl. reflexivity. Qed.\nSort T.";
        let items = group_items(src).unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].kind, ItemKind::Lemma);
        assert_eq!(items[0].name, "a");
        assert_eq!(items[0].proof.as_deref(), Some("simpl. reflexivity."));
        assert_eq!(items[1].kind, ItemKind::SortDecl);
        assert_eq!(items[1].name, "T");
    }

    #[test]
    fn missing_qed_is_error() {
        let src = "Lemma a : 1 = 1.\nProof. simpl.";
        assert!(group_items(src).is_err());
    }

    #[test]
    fn import_names() {
        let items = group_items("Require Import ListUtils.").unwrap();
        assert_eq!(items[0].kind, ItemKind::Import);
        assert_eq!(items[0].name, "ListUtils");
    }

    #[test]
    fn render_hides_proof() {
        let items = group_items("Lemma a : 1 = 1.\nProof. reflexivity. Qed.").unwrap();
        let vanilla = items[0].render(false);
        assert!(vanilla.contains("(* ... *)"));
        let hinted = items[0].render(true);
        assert!(hinted.contains("reflexivity."));
    }

    #[test]
    fn admitted_lemma_is_grouped_without_proof() {
        let src = "Lemma a : 1 = 1.\nProof. simpl. Admitted.\nSort T.";
        let items = group_items(src).unwrap();
        assert_eq!(items[0].kind, ItemKind::Lemma);
        assert!(items[0].admitted);
        assert_eq!(items[0].proof, None);
        assert!(items[0].render(true).contains("Admitted."));
        assert_eq!(items[1].kind, ItemKind::SortDecl);
    }

    #[test]
    fn axiom_is_grouped() {
        let items = group_items("Axiom choice : 0 = 0.").unwrap();
        assert_eq!(items[0].kind, ItemKind::Axiom);
        assert_eq!(items[0].name, "choice");
        assert!(!items[0].admitted);
    }

    #[test]
    fn items_carry_source_offsets() {
        let src = "Sort T.\nLemma a : 1 = 1.\nProof. reflexivity. Qed.";
        let items = group_items(src).unwrap();
        assert_eq!(items[0].start, 0);
        assert_eq!(items[1].start, src.find("Lemma").unwrap());
    }
}
