//! Gallina-lite: the vernacular language of minicoq developments.
//!
//! A development is a set of `.v`-style source files containing
//! declarations:
//!
//! ```text
//! Require Import NatUtils.
//! Sort T.
//! Inductive tree := | Leaf | Node (l : tree) (v : nat) (r : tree).
//! Inductive Sorted : list nat -> Prop := | Sorted_nil : Sorted nil | ...
//! Fixpoint app (A : Sort) (l1 l2 : list A) : list A := match l1 with ... end.
//! Definition incl (A : Sort) (l1 l2 : list A) : Prop := forall x : A, ...
//! Lemma app_nil_r : forall (A : Sort) (l : list A), app l nil = l.
//! Proof. induction l. - reflexivity. - simpl. rewrite IHl. reflexivity. Qed.
//! Hint Resolve app_nil_r.
//! Hint Constructors Sorted.
//! ```
//!
//! The [`loader::Loader`] elaborates files in import order, replays every
//! proof through the kernel (so the corpus's "human" proofs are *checked*,
//! not trusted), and records per-item source text so the oracle can build
//! prompts that mirror the original files.

pub mod emit;
pub mod item;
pub mod lint;
pub mod loader;
pub mod parser;
pub mod split;

pub use emit::ModuleBuilder;
pub use item::{Item, ItemKind};
pub use lint::{lint_development, LintDiagnostic, LintKind};
pub use loader::{Development, LoadError, Loader, TheoremInfo};
