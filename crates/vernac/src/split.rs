//! Splitting source files into sentences, keeping source text.

/// A sentence: its text (without the terminating `.`) and its byte span in
/// the original source (including the `.`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sentence {
    /// Trimmed sentence text, comments preserved.
    pub text: String,
    /// Start byte offset in the source.
    pub start: usize,
    /// End byte offset (exclusive, past the `.`).
    pub end: usize,
}

/// Splits a source file into sentences terminated by `.` followed by
/// whitespace or end of input. `(* *)` comments never terminate sentences
/// and are preserved in the text.
pub fn split_with_spans(src: &str) -> Vec<Sentence> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i] as char;
        if c == '(' && i + 1 < b.len() && b[i + 1] == b'*' {
            depth += 1;
            i += 2;
            continue;
        }
        if depth > 0 {
            if c == '*' && i + 1 < b.len() && b[i + 1] == b')' {
                depth -= 1;
                i += 2;
                continue;
            }
            i += 1;
            continue;
        }
        if c == '.' && (i + 1 >= b.len() || (b[i + 1] as char).is_whitespace()) {
            let text = src[start..i].trim().to_string();
            if !text.is_empty() {
                out.push(Sentence {
                    text,
                    start,
                    end: i + 1,
                });
            }
            i += 1;
            start = i;
            continue;
        }
        i += 1;
    }
    let tail = src[start..].trim();
    if !tail.is_empty() {
        out.push(Sentence {
            text: tail.to_string(),
            start,
            end: src.len(),
        });
    }
    out
}

/// The first word of a sentence (skipping leading comments).
pub fn head_word(text: &str) -> &str {
    let mut rest = text.trim_start();
    // Skip leading comments.
    while rest.starts_with("(*") {
        let mut depth = 0i32;
        let b = rest.as_bytes();
        let mut i = 0usize;
        while i < b.len() {
            if b[i] == b'(' && i + 1 < b.len() && b[i + 1] == b'*' {
                depth += 1;
                i += 2;
                continue;
            }
            if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b')' {
                depth -= 1;
                i += 2;
                if depth == 0 {
                    break;
                }
                continue;
            }
            i += 1;
        }
        rest = rest[i..].trim_start();
    }
    let end = rest
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    &rest[..end]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_spans() {
        let src = "Sort T. Lemma a : 1 = 1.\nProof. auto. Qed.";
        let s = split_with_spans(src);
        let texts: Vec<&str> = s.iter().map(|x| x.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["Sort T", "Lemma a : 1 = 1", "Proof", "auto", "Qed"]
        );
        assert_eq!(&src[s[0].start..s[0].end], "Sort T.");
    }

    #[test]
    fn comments_do_not_split() {
        let s = split_with_spans("Lemma x (* a. b. *) : True.");
        assert_eq!(s.len(), 1);
        assert!(s[0].text.contains("(*"));
    }

    #[test]
    fn head_word_skips_comments() {
        assert_eq!(head_word("(* doc *) Lemma foo : True"), "Lemma");
        assert_eq!(head_word("Fixpoint f"), "Fixpoint");
    }
}
