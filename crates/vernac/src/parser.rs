//! Parsing and elaboration of declarations into kernel objects.

use minicoq::env::{Ctor, DefinedPred, Env, FuncDef, IndPred, Inductive, PredDef};
use minicoq::formula::Formula;
use minicoq::parse::ast::{parse_expr, parse_sort_expr};
use minicoq::parse::elab::{ElabCtx, Elaborator, ExtraFunc, ExtraPred};
use minicoq::parse::{lex, Cursor, ParseError, Tok};
use minicoq::sort::Sort;
use minicoq::term::Term;

use crate::item::{Item, ItemKind};

/// A fully elaborated declaration, ready to be added to an [`Env`].
#[derive(Debug, Clone)]
pub enum Decl {
    /// An import edge (resolved by the loader).
    Import(String),
    /// An opaque sort.
    SortDecl(String),
    /// A group of (possibly mutual) inductive datatypes.
    Datatypes(Vec<Inductive>),
    /// A group of (possibly mutual) inductive predicates.
    IndPredDecl(Vec<IndPred>),
    /// A function definition.
    Func(FuncDef),
    /// A defined predicate.
    Pred(DefinedPred),
    /// A lemma statement (proof is replayed by the loader).
    LemmaStmt {
        /// Lemma name.
        name: String,
        /// Closed statement.
        stmt: Formula,
    },
    /// An axiom: a statement assumed into the environment without proof.
    AxiomStmt {
        /// Axiom name.
        name: String,
        /// Closed statement.
        stmt: Formula,
    },
    /// `Hint Resolve` names.
    HintResolve(Vec<String>),
    /// `Hint Constructors` predicate names.
    HintConstructors(Vec<String>),
}

/// Parses and elaborates one grouped item against the current environment.
pub fn parse_item(env: &Env, item: &Item) -> Result<Decl, ParseError> {
    match item.kind {
        ItemKind::Import => Ok(Decl::Import(item.name.clone())),
        ItemKind::SortDecl => Ok(Decl::SortDecl(item.name.clone())),
        ItemKind::Hint => parse_hint(&item.text),
        ItemKind::Inductive => parse_inductive(env, &item.text),
        ItemKind::Definition | ItemKind::Fixpoint => {
            parse_def(env, &item.text, item.kind == ItemKind::Fixpoint)
        }
        ItemKind::Lemma => parse_lemma(env, &item.text),
        ItemKind::Axiom => parse_axiom(env, &item.text),
    }
}

fn parse_axiom(env: &Env, text: &str) -> Result<Decl, ParseError> {
    let mut cur = Cursor::new(lex(text)?);
    cur.expect_kw("Axiom")?;
    let name = cur.expect_ident()?;
    cur.expect_sym(":")?;
    let e = parse_expr(&mut cur)?;
    if !cur.at_end() {
        return Err(ParseError(format!(
            "trailing tokens in axiom {name}: {:?}",
            cur.remainder()
        )));
    }
    let mut el = Elaborator::new(env);
    let f = el.elab_formula(&ElabCtx::default(), &e)?;
    let stmt = el.finish_formula(&f)?;
    Ok(Decl::AxiomStmt { name, stmt })
}

fn parse_hint(text: &str) -> Result<Decl, ParseError> {
    let mut cur = Cursor::new(lex(text)?);
    cur.expect_kw("Hint")?;
    let kind = cur.expect_ident()?;
    let mut names = Vec::new();
    while let Some(Tok::Ident(_)) = cur.peek() {
        names.push(cur.expect_ident()?);
    }
    // Optional `: db` suffix; only the core database is supported.
    if cur.eat_sym(":") {
        let _db = cur.expect_ident()?;
    }
    match kind.as_str() {
        "Resolve" => Ok(Decl::HintResolve(names)),
        "Constructors" => Ok(Decl::HintConstructors(names)),
        other => Err(ParseError(format!("unsupported hint kind {other}"))),
    }
}

fn parse_lemma(env: &Env, text: &str) -> Result<Decl, ParseError> {
    let mut cur = Cursor::new(lex(text)?);
    let kw = cur.expect_ident()?;
    if !matches!(kw.as_str(), "Lemma" | "Theorem" | "Corollary" | "Remark") {
        return Err(ParseError(format!("expected a lemma keyword, got {kw}")));
    }
    let name = cur.expect_ident()?;
    cur.expect_sym(":")?;
    let e = parse_expr(&mut cur)?;
    if !cur.at_end() {
        return Err(ParseError(format!(
            "trailing tokens in lemma {name}: {:?}",
            cur.remainder()
        )));
    }
    let mut el = Elaborator::new(env);
    let f = el.elab_formula(&ElabCtx::default(), &e)?;
    let stmt = el.finish_formula(&f)?;
    Ok(Decl::LemmaStmt { name, stmt })
}

/// Parses `(A : Sort)` and `(x y : sort)` parameter groups. Sort parameters
/// must precede term parameters.
struct Params {
    sort_params: Vec<String>,
    term_params: Vec<(String, Sort)>,
}

fn parse_params(
    env: &Env,
    cur: &mut Cursor,
    sort_scope: &mut Vec<String>,
) -> Result<Params, ParseError> {
    let mut sort_params = Vec::new();
    let mut term_params: Vec<(String, Sort)> = Vec::new();
    let el = Elaborator::new(env);
    while cur.at_sym("(") {
        cur.expect_sym("(")?;
        let mut names = Vec::new();
        while let Some(Tok::Ident(_)) = cur.peek() {
            names.push(cur.expect_ident()?);
        }
        cur.expect_sym(":")?;
        if cur.at_kw("Sort") {
            cur.next();
            if !term_params.is_empty() {
                return Err(ParseError(
                    "sort parameters must precede term parameters".into(),
                ));
            }
            for n in names {
                sort_scope.push(n.clone());
                sort_params.push(n);
            }
        } else {
            let sexpr = parse_sort_expr(cur)?;
            let ctx = ElabCtx {
                sort_vars: sort_scope.clone(),
                term_vars: vec![],
            };
            let s = el.elab_sort(&ctx, &sexpr)?;
            for n in names {
                term_params.push((n, s.clone()));
            }
        }
        cur.expect_sym(")")?;
    }
    Ok(Params {
        sort_params,
        term_params,
    })
}

fn parse_inductive(env: &Env, text: &str) -> Result<Decl, ParseError> {
    let mut cur = Cursor::new(lex(text)?);
    cur.expect_kw("Inductive")?;
    // Look ahead: after name and parameters, `:` means predicate, `:=`
    // means datatype.
    let name = cur.expect_ident()?;
    let mut sort_scope = Vec::new();
    let params = parse_params(env, &mut cur, &mut sort_scope)?;
    if cur.at_sym(":") && !cur.at_sym(":=") {
        if !params.term_params.is_empty() {
            return Err(ParseError(
                "inductive predicates take their arguments in the signature".into(),
            ));
        }
        return parse_ind_pred(env, name, params.sort_params, &mut cur);
    }
    parse_datatypes(env, name, params, &mut cur, text)
}

fn parse_ind_pred(
    env: &Env,
    name: String,
    sort_params: Vec<String>,
    cur: &mut Cursor,
) -> Result<Decl, ParseError> {
    // Parse the (possibly `with`-chained) group: signatures and raw rule
    // expressions first, so rules of each member may reference the others.
    struct RawPred {
        name: String,
        sort_params: Vec<String>,
        arg_sorts: Vec<Sort>,
        rules: Vec<(String, minicoq::parse::ast::Expr)>,
    }
    let mut raws: Vec<RawPred> = Vec::new();
    let mut name = name;
    let mut sort_params = sort_params;
    loop {
        cur.expect_sym(":")?;
        // Signature: s1 -> s2 -> ... -> Prop.
        let el = Elaborator::new(env);
        let ctx = ElabCtx {
            sort_vars: sort_params.clone(),
            term_vars: vec![],
        };
        let mut arg_sorts = Vec::new();
        loop {
            if cur.at_kw("Prop") {
                cur.next();
                break;
            }
            let sexpr = parse_sort_expr(cur)?;
            arg_sorts.push(el.elab_sort(&ctx, &sexpr)?);
            if cur.eat_sym("->") {
                continue;
            }
            return Err(ParseError(format!(
                "expected -> or Prop in signature of {name}"
            )));
        }
        cur.expect_sym(":=")?;
        cur.eat_sym("|");
        let mut rules = Vec::new();
        let mut chained = false;
        loop {
            let rname = cur.expect_ident()?;
            cur.expect_sym(":")?;
            let e = parse_expr(cur)?;
            rules.push((rname, e));
            if cur.eat_sym("|") {
                continue;
            }
            if cur.eat_kw("with") {
                chained = true;
            }
            break;
        }
        raws.push(RawPred {
            name: name.clone(),
            sort_params: sort_params.clone(),
            arg_sorts,
            rules,
        });
        if chained {
            name = cur.expect_ident()?;
            let mut scope = Vec::new();
            let params = parse_params(env, cur, &mut scope)?;
            if !params.term_params.is_empty() {
                return Err(ParseError(
                    "inductive predicates take their arguments in the signature".into(),
                ));
            }
            sort_params = params.sort_params;
            continue;
        }
        break;
    }
    if !cur.at_end() {
        return Err(ParseError(format!(
            "trailing tokens in inductive {name}: {:?}",
            cur.remainder()
        )));
    }
    // Elaborate every rule with the whole group's signatures in scope.
    let sigs: Vec<ExtraPred> = raws
        .iter()
        .map(|r| ExtraPred {
            name: r.name.clone(),
            sort_params: r.sort_params.clone(),
            args: r.arg_sorts.clone(),
        })
        .collect();
    let mut out = Vec::new();
    for r in &raws {
        let mut rules = Vec::new();
        for (rname, e) in &r.rules {
            let mut el = Elaborator::new(env);
            el.extra_preds = sigs.clone();
            let rctx = ElabCtx {
                sort_vars: r.sort_params.clone(),
                term_vars: vec![],
            };
            let f = el.elab_formula(&rctx, e)?;
            let stmt = el.finish_formula(&f)?;
            rules.push((rname.clone(), stmt));
        }
        out.push(IndPred {
            name: r.name.clone(),
            sort_params: r.sort_params.clone(),
            arg_sorts: r.arg_sorts.clone(),
            rules,
        });
    }
    Ok(Decl::IndPredDecl(out))
}

fn parse_datatypes(
    env: &Env,
    first_name: String,
    first_params: Params,
    cur: &mut Cursor,
    _text: &str,
) -> Result<Decl, ParseError> {
    // Collect the raw bodies of the (possibly mutual) group first, so the
    // group's sorts can be registered before elaborating argument sorts.
    struct RawInd {
        name: String,
        params: Vec<String>,
        ctors: Vec<(String, Vec<minicoq::parse::ast::SortExpr>)>,
    }
    let mut raws = Vec::new();
    let mut name = first_name;
    let mut params = first_params;
    loop {
        if !params.term_params.is_empty() {
            return Err(ParseError(
                "datatype parameters must be sorts (use `(A : Sort)`)".into(),
            ));
        }
        cur.expect_sym(":=")?;
        cur.eat_sym("|");
        let mut ctors = Vec::new();
        loop {
            let cname = cur.expect_ident()?;
            // Argument groups `(x y : sort)`.
            let mut argsorts = Vec::new();
            while cur.at_sym("(") {
                cur.expect_sym("(")?;
                let mut count = 0usize;
                while let Some(Tok::Ident(_)) = cur.peek() {
                    cur.expect_ident()?;
                    count += 1;
                }
                cur.expect_sym(":")?;
                let sexpr = parse_sort_expr(cur)?;
                cur.expect_sym(")")?;
                for _ in 0..count {
                    argsorts.push(sexpr.clone());
                }
            }
            ctors.push((cname, argsorts));
            if cur.eat_sym("|") {
                continue;
            }
            break;
        }
        raws.push(RawInd {
            name,
            params: params.sort_params,
            ctors,
        });
        if cur.eat_kw("with") {
            name = cur.expect_ident()?;
            let mut scope = Vec::new();
            params = parse_params(env, cur, &mut scope)?;
            continue;
        }
        break;
    }
    if !cur.at_end() {
        return Err(ParseError(format!(
            "trailing tokens in inductive: {:?}",
            cur.remainder()
        )));
    }
    // Temporary environment with the group's sorts registered, for
    // elaborating constructor argument sorts (self- and mutual references).
    let mut tmp = env.clone();
    for r in &raws {
        if r.params.is_empty() {
            tmp.declare_sort(r.name.clone());
        } else {
            tmp.declare_sort_ctor(r.name.clone(), r.params.len());
        }
    }
    let el = Elaborator::new(&tmp);
    let mut out = Vec::new();
    for r in &raws {
        let ctx = ElabCtx {
            sort_vars: r.params.clone(),
            term_vars: vec![],
        };
        let mut ctors = Vec::new();
        for (cname, argsorts) in &r.ctors {
            let args: Vec<Sort> = argsorts
                .iter()
                .map(|s| el.elab_sort(&ctx, s))
                .collect::<Result<_, _>>()?;
            ctors.push(Ctor {
                name: cname.clone(),
                args,
            });
        }
        out.push(Inductive {
            name: r.name.clone(),
            params: r.params.clone(),
            ctors,
        });
    }
    Ok(Decl::Datatypes(out))
}

fn parse_def(env: &Env, text: &str, recursive: bool) -> Result<Decl, ParseError> {
    let mut cur = Cursor::new(lex(text)?);
    cur.expect_kw(if recursive { "Fixpoint" } else { "Definition" })?;
    let name = cur.expect_ident()?;
    let mut sort_scope = Vec::new();
    let params = parse_params(env, &mut cur, &mut sort_scope)?;
    // Optional `{struct x}`.
    let mut struct_name: Option<String> = None;
    if cur.eat_sym("{") {
        cur.expect_kw("struct")?;
        struct_name = Some(cur.expect_ident()?);
        cur.expect_sym("}")?;
    }
    cur.expect_sym(":")?;
    let is_prop = cur.at_kw("Prop");
    let ctx = ElabCtx {
        sort_vars: params.sort_params.clone(),
        term_vars: params.term_params.clone(),
    };
    if is_prop {
        cur.next();
        cur.expect_sym(":=")?;
        let e = parse_expr(&mut cur)?;
        if !cur.at_end() {
            return Err(ParseError(format!(
                "trailing tokens in {name}: {:?}",
                cur.remainder()
            )));
        }
        let mut el = Elaborator::new(env);
        el.extra_preds.push(ExtraPred {
            name: name.clone(),
            sort_params: params.sort_params.clone(),
            args: params.term_params.iter().map(|(_, s)| s.clone()).collect(),
        });
        let f = el.elab_formula(&ctx, &e)?;
        let body = el.finish_formula(&f)?;
        let is_recursive = formula_mentions_pred(&body, &name);
        if recursive != is_recursive {
            return Err(ParseError(format!(
                "{name}: use Fixpoint if and only if the body is recursive"
            )));
        }
        let struct_arg = if recursive {
            resolve_struct_arg(
                &params.term_params,
                struct_name.as_deref(),
                |p| formula_has_match_on(&body, p),
                &name,
            )?
        } else {
            None
        };
        return Ok(Decl::Pred(DefinedPred {
            name,
            sort_params: params.sort_params,
            params: params.term_params,
            body,
            recursive,
            struct_arg,
        }));
    }
    let ret_expr = parse_sort_expr(&mut cur)?;
    let el0 = Elaborator::new(env);
    let ret = el0.elab_sort(&ctx, &ret_expr)?;
    cur.expect_sym(":=")?;
    let e = parse_expr(&mut cur)?;
    if !cur.at_end() {
        return Err(ParseError(format!(
            "trailing tokens in {name}: {:?}",
            cur.remainder()
        )));
    }
    let mut el = Elaborator::new(env);
    el.extra_funcs.push(ExtraFunc {
        name: name.clone(),
        sort_params: params.sort_params.clone(),
        args: params.term_params.iter().map(|(_, s)| s.clone()).collect(),
        ret: ret.clone(),
    });
    let body = el.elab_term(&ctx, &e, &ret)?;
    let is_recursive = term_mentions_symbol(&body, &name);
    if recursive != is_recursive {
        return Err(ParseError(format!(
            "{name}: use Fixpoint if and only if the body is recursive"
        )));
    }
    let struct_arg = if recursive {
        resolve_struct_arg(
            &params.term_params,
            struct_name.as_deref(),
            |p| term_has_match_on(&body, p),
            &name,
        )?
    } else {
        None
    };
    Ok(Decl::Func(FuncDef {
        name,
        sort_params: params.sort_params,
        params: params.term_params,
        ret,
        body,
        recursive,
        struct_arg,
    }))
}

fn resolve_struct_arg(
    params: &[(String, Sort)],
    explicit: Option<&str>,
    has_match_on: impl Fn(&str) -> bool,
    name: &str,
) -> Result<Option<usize>, ParseError> {
    if let Some(x) = explicit {
        return params
            .iter()
            .position(|(p, _)| p == x)
            .map(Some)
            .ok_or_else(|| ParseError(format!("{name}: unknown struct parameter {x}")));
    }
    for (i, (p, _)) in params.iter().enumerate() {
        if has_match_on(p) {
            return Ok(Some(i));
        }
    }
    Err(ParseError(format!(
        "{name}: cannot determine the structural argument (add {{struct x}})"
    )))
}

fn term_mentions_symbol(t: &Term, name: &str) -> bool {
    match t {
        Term::Var(_) | Term::Meta(_) => false,
        Term::App(f, args) => f == name || args.iter().any(|a| term_mentions_symbol(a, name)),
        Term::Match(s, arms) => {
            term_mentions_symbol(s, name) || arms.iter().any(|(_, r)| term_mentions_symbol(r, name))
        }
    }
}

fn formula_mentions_pred(f: &Formula, name: &str) -> bool {
    match f {
        Formula::True | Formula::False => false,
        Formula::Eq(_, a, b) => term_mentions_symbol(a, name) || term_mentions_symbol(b, name),
        Formula::Pred(p, _, args) => {
            p == name || args.iter().any(|a| term_mentions_symbol(a, name))
        }
        Formula::Not(g) => formula_mentions_pred(g, name),
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) | Formula::Iff(a, b) => {
            formula_mentions_pred(a, name) || formula_mentions_pred(b, name)
        }
        Formula::Forall(_, _, b) | Formula::Exists(_, _, b) | Formula::ForallSort(_, b) => {
            formula_mentions_pred(b, name)
        }
        Formula::FMatch(s, arms) => {
            term_mentions_symbol(s, name)
                || arms.iter().any(|(_, r)| formula_mentions_pred(r, name))
        }
    }
}

fn term_has_match_on(t: &Term, var: &str) -> bool {
    match t {
        Term::Var(_) | Term::Meta(_) => false,
        Term::App(_, args) => args.iter().any(|a| term_has_match_on(a, var)),
        Term::Match(s, arms) => {
            matches!(&**s, Term::Var(v) if v == var)
                || term_has_match_on(s, var)
                || arms.iter().any(|(_, r)| term_has_match_on(r, var))
        }
    }
}

fn formula_has_match_on(f: &Formula, var: &str) -> bool {
    match f {
        Formula::True | Formula::False => false,
        Formula::Eq(_, a, b) => term_has_match_on(a, var) || term_has_match_on(b, var),
        Formula::Pred(_, _, args) => args.iter().any(|a| term_has_match_on(a, var)),
        Formula::Not(g) => formula_has_match_on(g, var),
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) | Formula::Iff(a, b) => {
            formula_has_match_on(a, var) || formula_has_match_on(b, var)
        }
        Formula::Forall(_, _, b) | Formula::Exists(_, _, b) | Formula::ForallSort(_, b) => {
            formula_has_match_on(b, var)
        }
        Formula::FMatch(s, arms) => {
            matches!(&**s, Term::Var(v) if v == var)
                || term_has_match_on(s, var)
                || arms.iter().any(|(_, r)| formula_has_match_on(r, var))
        }
    }
}

/// Applies a declaration to an environment (registering hints, datatypes,
/// predicates and functions; lemma statements are added by the loader after
/// proof replay).
pub fn apply_decl(env: &mut Env, decl: &Decl) -> Result<(), ParseError> {
    match decl {
        Decl::Import(_) => Ok(()),
        Decl::SortDecl(n) => {
            env.declare_sort(n.clone());
            Ok(())
        }
        Decl::Datatypes(group) => {
            for ind in group {
                env.declare_inductive(ind.clone())
                    .map_err(|e| ParseError(e.to_string()))?;
            }
            Ok(())
        }
        Decl::IndPredDecl(group) => {
            for p in group {
                env.declare_pred(PredDef::Inductive(p.clone()))
                    .map_err(|e| ParseError(e.to_string()))?;
            }
            Ok(())
        }
        Decl::Func(f) => env
            .declare_func(f.clone())
            .map_err(|e| ParseError(e.to_string())),
        Decl::Pred(p) => env
            .declare_pred(PredDef::Defined(p.clone()))
            .map_err(|e| ParseError(e.to_string())),
        Decl::LemmaStmt { .. } => Ok(()),
        Decl::AxiomStmt { name, stmt } => env
            .add_lemma(name.clone(), stmt.clone())
            .map_err(|e| ParseError(e.to_string())),
        Decl::HintResolve(names) => {
            for n in names {
                if env.rule_or_lemma(n).is_none() {
                    return Err(ParseError(format!("Hint Resolve: unknown lemma {n}")));
                }
                env.add_hint("core", n.clone());
            }
            Ok(())
        }
        Decl::HintConstructors(preds) => {
            for p in preds {
                let Some(PredDef::Inductive(ip)) = env.preds.get(p.as_str()) else {
                    return Err(ParseError(format!(
                        "Hint Constructors: {p} is not an inductive predicate"
                    )));
                };
                let rules: Vec<String> = ip.rules.iter().map(|(n, _)| n.clone()).collect();
                for r in rules {
                    env.add_hint("core", r);
                }
            }
            Ok(())
        }
    }
}
