//! Loading a development: import resolution, elaboration, proof replay.

use std::collections::BTreeMap;
use std::sync::Arc;

use minicoq::env::Env;
use minicoq::formula::Formula;

use crate::item::{group_items, Item, ItemKind};
use crate::parser::{apply_decl, parse_item, Decl};

/// A loaded source file.
#[derive(Debug, Clone)]
pub struct LoadedFile {
    /// Module name (e.g. `ListUtils`).
    pub name: String,
    /// Direct imports.
    pub imports: Vec<String>,
    /// Items in source order.
    pub items: Vec<Item>,
}

/// Metadata about one theorem of the development.
#[derive(Debug, Clone)]
pub struct TheoremInfo {
    /// Lemma name.
    pub name: String,
    /// Module the lemma lives in.
    pub file: String,
    /// Index of the item within its file.
    pub item_index: usize,
    /// Global theorem index (load order).
    pub global_index: usize,
    /// The statement sentence, e.g. `Lemma foo : ...` (no final `.`).
    pub statement_text: String,
    /// The human proof script.
    pub proof_text: String,
    /// The elaborated statement.
    pub stmt: Formula,
}

/// A fully loaded development.
#[derive(Debug, Clone)]
pub struct Development {
    /// Files in load (topological) order.
    pub files: Vec<LoadedFile>,
    /// The final environment with every declaration and lemma.
    pub env: Env,
    /// Environment snapshots taken *before* each theorem, indexed by
    /// `TheoremInfo::global_index`. Arc-shared so sessions and parallel
    /// workers can hold a snapshot without deep-copying it.
    envs: Vec<Arc<Env>>,
    /// All theorems in load order.
    pub theorems: Vec<TheoremInfo>,
}

impl Development {
    /// The environment visible to a prover attempting this theorem: every
    /// earlier declaration, but not the theorem itself or later ones. The
    /// `Arc` lets callers share the snapshot (e.g. with a `ProofSession`)
    /// without cloning the environment's contents.
    pub fn env_before(&self, thm: &TheoremInfo) -> &Arc<Env> {
        &self.envs[thm.global_index]
    }

    /// Looks up a theorem by name.
    pub fn theorem(&self, name: &str) -> Option<&TheoremInfo> {
        self.theorems.iter().find(|t| t.name == name)
    }

    /// Looks up a loaded file by module name.
    pub fn file(&self, name: &str) -> Option<&LoadedFile> {
        self.files.iter().find(|f| f.name == name)
    }

    /// Every item of every file with its canonical rendering (parsed
    /// sentences re-rendered, so inter-item whitespace and comment
    /// differences vanish), in load order: the text layer change-impact
    /// snapshots hash and diff (`corpus-analysis`'s `impact` module).
    /// Yields `(module, item index, rendered text)`.
    pub fn rendered_items(&self) -> impl Iterator<Item = (&str, usize, String)> + '_ {
        self.files.iter().flat_map(|f| {
            f.items
                .iter()
                .enumerate()
                .map(move |(idx, item)| (f.name.as_str(), idx, item.render(true)))
        })
    }

    /// The transitive import closure of a module, in load order, excluding
    /// the module itself.
    pub fn import_closure(&self, name: &str) -> Vec<&LoadedFile> {
        let mut wanted: Vec<&str> = vec![name];
        let mut i = 0;
        while i < wanted.len() {
            if let Some(f) = self.file(wanted[i]) {
                for imp in &f.imports {
                    if !wanted.contains(&imp.as_str()) {
                        wanted.push(imp);
                    }
                }
            }
            i += 1;
        }
        self.files
            .iter()
            .filter(|f| f.name != name && wanted.contains(&f.name.as_str()))
            .collect()
    }
}

/// An error produced while loading a development.
#[derive(Debug, Clone)]
pub struct LoadError {
    /// Module the error occurred in.
    pub file: String,
    /// Item name, when known.
    pub item: String,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.item, self.message)
    }
}

impl std::error::Error for LoadError {}

/// Replays a proof script against a statement in the given environment.
/// Returns the sentence count on success (useful for metrics) or a
/// message describing the first failure. Thin wrapper over the kernel's
/// witness-replay API ([`minicoq::replay::replay_script`]).
pub fn replay_proof(env: &Env, stmt: &Formula, script: &str) -> Result<usize, String> {
    minicoq::replay::replay_script(env, stmt, script)
        .map(|r| r.sentences)
        .map_err(|e| e.message)
}

/// Loads developments from in-memory sources.
#[derive(Debug, Default)]
pub struct Loader {
    sources: Vec<(String, String)>,
    check_proofs: bool,
}

impl Loader {
    /// Creates a loader that replays and checks all proofs.
    pub fn new() -> Loader {
        Loader {
            sources: Vec::new(),
            check_proofs: true,
        }
    }

    /// Controls whether human proofs are replayed during loading. Disabling
    /// speeds up loading when only statements and source text are needed;
    /// lemmas are then trusted.
    pub fn check_proofs(mut self, yes: bool) -> Loader {
        self.check_proofs = yes;
        self
    }

    /// Adds a source file (module name, source text).
    pub fn add_source(&mut self, name: impl Into<String>, text: impl Into<String>) -> &mut Loader {
        self.sources.push((name.into(), text.into()));
        self
    }

    /// Loads everything: groups items, topologically sorts files by their
    /// imports, elaborates declarations and replays proofs.
    pub fn load(&self) -> Result<Development, LoadError> {
        // Group items per file.
        let mut files: Vec<LoadedFile> = Vec::new();
        for (name, text) in &self.sources {
            let items = group_items(text).map_err(|e| LoadError {
                file: name.clone(),
                item: String::new(),
                message: e.to_string(),
            })?;
            let imports = items
                .iter()
                .filter(|i| i.kind == ItemKind::Import)
                .map(|i| i.name.clone())
                .collect();
            files.push(LoadedFile {
                name: name.clone(),
                imports,
                items,
            });
        }
        // Topological sort (stable w.r.t. insertion order).
        let order = topo_order(&files)?;
        let files: Vec<LoadedFile> = order.into_iter().map(|i| files[i].clone()).collect();

        let mut env = Env::with_prelude();
        let mut envs: Vec<Arc<Env>> = Vec::new();
        let mut theorems: Vec<TheoremInfo> = Vec::new();
        for file in &files {
            for (item_index, item) in file.items.iter().enumerate() {
                let decl = parse_item(&env, item).map_err(|e| LoadError {
                    file: file.name.clone(),
                    item: item.name.clone(),
                    message: e.to_string(),
                })?;
                if let Decl::LemmaStmt { name, stmt } = &decl {
                    let proof = item.proof.clone().unwrap_or_default();
                    // `Admitted.` lemmas have no script to replay: the
                    // statement enters the environment on trust (and the
                    // analyzer's axiom/admit audit reports them).
                    if self.check_proofs && !item.admitted {
                        replay_proof(&env, stmt, &proof).map_err(|e| LoadError {
                            file: file.name.clone(),
                            item: name.clone(),
                            message: e,
                        })?;
                    }
                    // Cheap: Env's collections are Arc-shared, so this
                    // snapshot aliases the current storage until the next
                    // mutation copies-on-write.
                    envs.push(Arc::new(env.clone()));
                    theorems.push(TheoremInfo {
                        name: name.clone(),
                        file: file.name.clone(),
                        item_index,
                        global_index: theorems.len(),
                        statement_text: item.text.clone(),
                        proof_text: proof,
                        stmt: stmt.clone(),
                    });
                    env.add_lemma(name.clone(), stmt.clone())
                        .map_err(|e| LoadError {
                            file: file.name.clone(),
                            item: name.clone(),
                            message: e.to_string(),
                        })?;
                } else {
                    apply_decl(&mut env, &decl).map_err(|e| LoadError {
                        file: file.name.clone(),
                        item: item.name.clone(),
                        message: e.to_string(),
                    })?;
                }
            }
        }
        Ok(Development {
            files,
            env,
            envs,
            theorems,
        })
    }
}

fn topo_order(files: &[LoadedFile]) -> Result<Vec<usize>, LoadError> {
    let index: BTreeMap<&str, usize> = files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), i))
        .collect();
    let mut state = vec![0u8; files.len()]; // 0 unvisited, 1 visiting, 2 done.
    let mut out = Vec::new();
    fn visit(
        i: usize,
        files: &[LoadedFile],
        index: &BTreeMap<&str, usize>,
        state: &mut [u8],
        out: &mut Vec<usize>,
    ) -> Result<(), LoadError> {
        match state[i] {
            1 => {
                return Err(LoadError {
                    file: files[i].name.clone(),
                    item: String::new(),
                    message: "import cycle".into(),
                })
            }
            2 => return Ok(()),
            _ => {}
        }
        state[i] = 1;
        for imp in &files[i].imports {
            let Some(&j) = index.get(imp.as_str()) else {
                return Err(LoadError {
                    file: files[i].name.clone(),
                    item: String::new(),
                    message: format!("unknown import {imp}"),
                });
            };
            visit(j, files, index, state, out)?;
        }
        state[i] = 2;
        out.push(i);
        Ok(())
    }
    for i in 0..files.len() {
        visit(i, files, &index, &mut state, &mut out)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_a_small_development() {
        let mut loader = Loader::new();
        loader.add_source(
            "Basics",
            r#"
Fixpoint double (n : nat) : nat := match n with | 0 => 0 | S p => S (S (double p)) end.

Lemma double_2 : double 2 = 4.
Proof. reflexivity. Qed.

Lemma double_add : forall n : nat, double n = add n n.
Proof.
  induction n.
  - reflexivity.
  - simpl. rewrite IHn.
    assert (H : forall a b : nat, add a (S b) = S (add a b)).
    + induction a; intros. * reflexivity. * simpl. rewrite IHa. reflexivity.
    + rewrite H. reflexivity.
Qed.

Hint Resolve double_add.
"#,
        );
        loader.add_source(
            "Client",
            r#"
Require Import Basics.

Lemma double_0 : double 0 = 0.
Proof. reflexivity. Qed.
"#,
        );
        let dev = loader.load().expect("loads");
        assert_eq!(dev.files[0].name, "Basics");
        assert_eq!(dev.theorems.len(), 3);
        let t = dev.theorem("double_add").unwrap();
        // The env before double_add has double_2 but not double_add.
        let env = dev.env_before(t);
        assert!(env.lemma("double_2").is_some());
        assert!(env.lemma("double_add").is_none());
        assert!(dev.env.lemma("double_add").is_some());
        assert!(dev.env.hint_db("core").contains(&"double_add".to_string()));
    }

    #[test]
    fn inductive_predicate_roundtrip() {
        let mut loader = Loader::new();
        loader.add_source(
            "Ev",
            r#"
Inductive even : nat -> Prop :=
| even_O : even 0
| even_SS : forall n : nat, even n -> even (S (S n)).

Hint Constructors even.

Lemma even_4 : even 4.
Proof. auto. Qed.

Lemma even_inv : forall n : nat, even (S (S n)) -> even n.
Proof. intros n H. inversion H. assumption. Qed.
"#,
        );
        let dev = loader.load().expect("loads");
        assert_eq!(dev.theorems.len(), 2);
    }

    #[test]
    fn broken_proof_is_rejected() {
        let mut loader = Loader::new();
        loader.add_source("Bad", "Lemma nope : 1 = 2.\nProof. reflexivity. Qed.");
        let err = loader.load().unwrap_err();
        assert_eq!(err.item, "nope");
    }

    #[test]
    fn unknown_import_is_rejected() {
        let mut loader = Loader::new();
        loader.add_source("A", "Require Import Missing.\nSort T.");
        assert!(loader.load().is_err());
    }

    #[test]
    fn import_closure_is_transitive() {
        let mut loader = Loader::new();
        loader.add_source("A", "Sort TA.");
        loader.add_source("B", "Require Import A.\nSort TB.");
        loader.add_source("C", "Require Import B.\nSort TC.");
        let dev = loader.load().unwrap();
        let closure = dev.import_closure("C");
        let names: Vec<&str> = closure.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["A", "B"]);
    }
}
