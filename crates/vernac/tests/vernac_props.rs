//! Property-based totality tests for the vernacular front end: arbitrary
//! (even adversarial) source text must produce errors, never panics, and
//! well-formed developments must load regardless of declaration count.

use minicoq_vernac::item::group_items;
use minicoq_vernac::Loader;
use proptest::prelude::*;

proptest! {
    /// Grouping never panics on arbitrary text.
    #[test]
    fn group_items_is_total(src in "\\PC{0,400}") {
        let _ = group_items(&src);
    }

    /// Grouping never panics on text assembled from Gallina-ish fragments
    /// (higher keyword density than uniform noise).
    #[test]
    fn group_items_survives_keyword_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("Lemma".to_string()),
                Just("Proof.".to_string()),
                Just("Qed.".to_string()),
                Just("Inductive".to_string()),
                Just("Definition".to_string()),
                Just("Fixpoint".to_string()),
                Just(":=".to_string()),
                Just(":".to_string()),
                Just(".".to_string()),
                Just("(*".to_string()),
                Just("*)".to_string()),
                "[a-z]{1,8}",
            ],
            0..40,
        ),
    ) {
        let _ = group_items(&words.join(" "));
    }

    /// The loader is total on arbitrary single-file sources: it returns
    /// Ok or Err, never panics, and on Ok every theorem replayed.
    #[test]
    fn loader_is_total(src in "\\PC{0,300}") {
        let mut l = Loader::new();
        l.add_source("Fuzz", src);
        let _ = l.load();
    }

    /// A development of n trivial lemmas loads with n theorems, each
    /// seeing exactly the ones before it.
    #[test]
    fn scales_with_lemma_count(n in 1usize..20) {
        let mut src = String::new();
        for i in 0..n {
            src.push_str(&format!("Lemma triv{i} : 0 = 0.\nProof. reflexivity. Qed.\n"));
        }
        let mut l = Loader::new();
        l.add_source("Gen", src);
        let dev = l.load().unwrap();
        prop_assert_eq!(dev.theorems.len(), n);
        for (i, t) in dev.theorems.iter().enumerate() {
            let env = dev.env_before(t);
            for j in 0..n {
                prop_assert_eq!(env.lemma(&format!("triv{j}")).is_some(), j < i);
            }
        }
    }
}
