//! Unit tests for the Gallina-lite vernacular: item grouping, declaration
//! parsing (including mutual `with` groups and fixpoint struct-argument
//! detection), the loader's import resolution, proof replay, and the
//! `env_before` snapshot semantics the evaluation protocol depends on.

use minicoq_vernac::item::group_items;
use minicoq_vernac::{ItemKind, Loader};

// ------------------------------------------------------------ item grouping

#[test]
fn groups_each_declaration_kind() {
    let src = r#"
Require Import Base.
Sort K.
Inductive color : Sort := | red : color | blue : color.
Definition is_red (c : color) : Prop := c = red.
Fixpoint double (n : nat) : nat :=
  match n with | O => O | S p => S (S (double p)) end.
Lemma double_0 : double 0 = 0.
Proof. reflexivity. Qed.
Hint Resolve double_0.
"#;
    let items = group_items(src).unwrap();
    let kinds: Vec<_> = items.iter().map(|i| i.kind.clone()).collect();
    assert_eq!(
        kinds,
        vec![
            ItemKind::Import,
            ItemKind::SortDecl,
            ItemKind::Inductive,
            ItemKind::Definition,
            ItemKind::Fixpoint,
            ItemKind::Lemma,
            ItemKind::Hint,
        ]
    );
    assert_eq!(items[5].name, "double_0");
    assert!(items[5].proof.as_deref().unwrap().contains("reflexivity"));
}

#[test]
fn lemma_without_qed_is_an_error() {
    let src = "Lemma broken : 0 = 0.\nProof. reflexivity.";
    assert!(group_items(src).is_err());
}

#[test]
fn comment_only_source_groups_to_nothing() {
    assert!(group_items("(* a file of nothing but comments. *)")
        .unwrap()
        .is_empty());
}

#[test]
fn render_hides_or_shows_the_proof() {
    let src = "Lemma l : 0 = 0.\nProof. reflexivity. Qed.";
    let items = group_items(src).unwrap();
    assert!(items[0].render(true).contains("reflexivity"));
    assert!(!items[0].render(false).contains("reflexivity"));
}

// ----------------------------------------------------------------- loading

fn load_one(src: &str) -> minicoq_vernac::Development {
    let mut l = Loader::new();
    l.add_source("T", src);
    l.load().unwrap_or_else(|e| panic!("{e}"))
}

#[test]
fn loads_definitions_and_replays_proofs() {
    let dev = load_one(
        r#"
Fixpoint double (n : nat) : nat :=
  match n with | O => O | S p => S (S (double p)) end.
Lemma double_S : forall n : nat, double (S n) = S (S (double n)).
Proof. intros n. reflexivity. Qed.
Lemma double_2 : double 2 = 4.
Proof. reflexivity. Qed.
"#,
    );
    assert_eq!(dev.theorems.len(), 2);
    assert!(dev.env.lemma("double_S").is_some());
}

#[test]
fn bad_proof_fails_the_load() {
    let mut l = Loader::new();
    l.add_source("T", "Lemma wrong : 0 = 1.\nProof. reflexivity. Qed.");
    let err = l.load().unwrap_err();
    assert!(err.to_string().contains("wrong"), "{err}");
}

#[test]
fn unchecked_mode_skips_replay() {
    let mut l = Loader::new();
    l.add_source("T", "Lemma wrong : 0 = 1.\nProof. reflexivity. Qed.");
    let dev = l.check_proofs(false).load().unwrap();
    assert_eq!(dev.theorems.len(), 1);
}

#[test]
fn mutual_inductive_predicates_load() {
    let dev = load_one(
        r#"
Inductive even : nat -> Prop :=
| even_O : even 0
| even_S : forall n : nat, odd n -> even (S n)
with odd : nat -> Prop :=
| odd_S : forall n : nat, even n -> odd (S n).
Lemma even_2 : even 2.
Proof. apply even_S. apply odd_S. apply even_O. Qed.
"#,
    );
    assert!(dev.env.preds.contains_key("even"));
    assert!(dev.env.preds.contains_key("odd"));
}

#[test]
fn fixpoint_struct_argument_autodetects() {
    // Recursion on the second argument: detection must pick `m`.
    let dev = load_one(
        r#"
Fixpoint addr (n m : nat) : nat :=
  match m with | O => n | S p => S (addr n p) end.
Lemma addr_0 : forall n : nat, addr n 0 = n.
Proof. intros n. reflexivity. Qed.
"#,
    );
    assert!(dev.env.funcs.contains_key("addr"));
}

#[test]
fn explicit_struct_annotation_is_honored() {
    let dev = load_one(
        r#"
Fixpoint idn (n : nat) {struct n} : nat :=
  match n with | O => O | S p => S (idn p) end.
Lemma idn_1 : idn 1 = 1.
Proof. reflexivity. Qed.
"#,
    );
    assert!(dev.env.funcs.contains_key("idn"));
}

#[test]
fn import_order_is_topological_and_closure_is_transitive() {
    let mut l = Loader::new();
    // Added in reverse dependency order on purpose.
    l.add_source(
        "C",
        "Require Import B.\nLemma c : three = 3.\nProof. unfold three. unfold two. reflexivity. Qed.",
    );
    l.add_source("B", "Require Import A.\nDefinition three : nat := S two.");
    l.add_source("A", "Definition two : nat := 2.");
    let dev = l.load().unwrap();
    let order: Vec<_> = dev.files.iter().map(|f| f.name.as_str()).collect();
    let pos = |n: &str| order.iter().position(|x| *x == n).unwrap();
    assert!(pos("A") < pos("B") && pos("B") < pos("C"));
    let closure: Vec<_> = dev
        .import_closure("C")
        .iter()
        .map(|f| f.name.as_str())
        .collect();
    assert!(closure.contains(&"A") && closure.contains(&"B"));
}

#[test]
fn missing_import_is_an_error() {
    let mut l = Loader::new();
    l.add_source(
        "T",
        "Require Import Nowhere.\nLemma t : 0 = 0.\nProof. reflexivity. Qed.",
    );
    assert!(l.load().is_err());
}

#[test]
fn env_before_excludes_the_theorem_and_its_successors() {
    let dev = load_one(
        r#"
Lemma first : 0 = 0.
Proof. reflexivity. Qed.
Lemma second : 1 = 1.
Proof. reflexivity. Qed.
"#,
    );
    let second = dev.theorem("second").unwrap();
    let env = dev.env_before(second);
    assert!(env.lemma("first").is_some());
    assert!(env.lemma("second").is_none());
    let first = dev.theorem("first").unwrap();
    assert!(dev.env_before(first).lemma("first").is_none());
    assert!(dev.env_before(first).lemma("second").is_none());
}

#[test]
fn hint_resolve_feeds_auto_in_later_proofs() {
    let dev = load_one(
        r#"
Lemma le_0_n : forall n : nat, 0 <= n.
Proof. intros n. induction n. apply le_n. apply le_S. exact IHn. Qed.
Hint Resolve le_0_n.
Lemma use_hint : 0 <= 7.
Proof. auto. Qed.
"#,
    );
    assert_eq!(dev.theorems.len(), 2);
}

#[test]
fn duplicate_lemma_names_are_rejected() {
    let mut l = Loader::new();
    l.add_source(
        "T",
        "Lemma d : 0 = 0.\nProof. reflexivity. Qed.\nLemma d : 1 = 1.\nProof. reflexivity. Qed.",
    );
    assert!(l.load().is_err());
}

#[test]
fn theorem_metadata_is_consistent() {
    let dev = load_one(
        r#"
Lemma a : 0 = 0.
Proof. reflexivity. Qed.
Lemma b : 1 = 1.
Proof. trivial. Qed.
"#,
    );
    for (i, t) in dev.theorems.iter().enumerate() {
        assert_eq!(t.global_index, i);
        assert_eq!(t.file, "T");
        assert!(t.statement_text.contains(&t.name));
        assert!(!t.proof_text.is_empty());
    }
}
