//! Deterministic fault injection for the evaluation stack.
//!
//! Real LLM-backed proof pipelines treat partial failure as the common
//! case: API calls 503, models emit garbage instead of tactic lists,
//! provers stall, caches rot on disk, and workers die mid-cell. This crate
//! provides the *plan* for injecting exactly those faults — deterministic
//! in a seed, so a chaos run is as reproducible as a clean one.
//!
//! A [`FaultPlan`] answers one question: *does attempt `n` at site `s`
//! suffer fault kind `k`?* Two properties make the whole subsystem
//! testable:
//!
//! 1. **Site selection is a pure hash** of `(seed, kind, site)`. Which
//!    sites fault never depends on thread schedule or wall clock.
//! 2. **Faults are transient by default**: a selected site faults on its
//!    first [`FaultConfig::max_trips`] attempts and then behaves normally,
//!    so bounded retry (oracle faults), recompute-on-corruption (cache)
//!    and journal resume (worker panics) each recover the clean result —
//!    a faulted-then-recovered run is byte-identical to an unfaulted one.
//!
//! The consumers are `proof_oracle::chaos` (oracle errors / garbage
//! output), `minicoq_stm::session` (spurious timeouts), and
//! `proof_metrics::runner` (worker panics, cell-cache corruption). The
//! bench binaries build a plan from `--fault-seed N` / `--fault-plan SPEC`.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// The fault classes the evaluation stack knows how to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The oracle call fails outright (a simulated API 5xx / transport
    /// error). Recovered by bounded retry in the search layer.
    OracleError,
    /// The oracle replies, but with garbage the client cannot parse into a
    /// tactic list. Detected client-side and retried like an error.
    OracleGarbage,
    /// The state-transition machine reports a spurious timeout for a
    /// tactic. *Not* recoverable — timeouts are part of the paper's
    /// observable taxonomy — so this kind is for robustness runs, not for
    /// byte-identity plans.
    StmTimeout,
    /// The on-disk cell cache write is corrupted (truncated file).
    /// Recovered by checksum verification on load, which recomputes.
    CacheCorrupt,
    /// A worker thread panics inside a cell. Recovered by per-cell panic
    /// isolation plus journal resume, which re-runs the cell.
    WorkerPanic,
}

impl FaultKind {
    /// Stable tag used in the site-selection hash.
    fn tag(self) -> &'static str {
        match self {
            FaultKind::OracleError => "oracle-error",
            FaultKind::OracleGarbage => "oracle-garbage",
            FaultKind::StmTimeout => "stm-timeout",
            FaultKind::CacheCorrupt => "cache-corrupt",
            FaultKind::WorkerPanic => "worker-panic",
        }
    }
}

/// Per-kind fault rates plus the seed and the transience horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for site selection; the same seed injects the same faults.
    pub seed: u64,
    /// Probability an oracle query site suffers a transport error.
    pub oracle_error: f64,
    /// Probability an oracle query site returns garbage output.
    pub oracle_garbage: f64,
    /// Probability a (theorem, tactic) site gets a spurious STM timeout.
    pub stm_timeout: f64,
    /// Probability a cell's cache write is corrupted.
    pub cache_corrupt: f64,
    /// Probability a cell's evaluation panics a worker.
    pub worker_panic: f64,
    /// How many consecutive attempts at a selected site fault before it
    /// recovers (1 = transient: fail once, then succeed).
    pub max_trips: u32,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 0,
            oracle_error: 0.0,
            oracle_garbage: 0.0,
            stm_timeout: 0.0,
            cache_corrupt: 0.0,
            worker_panic: 0.0,
            max_trips: 1,
        }
    }
}

impl FaultConfig {
    /// The standard smoke-suite plan: transient oracle errors and garbage,
    /// every cell's first attempt panics a worker, and half the cache
    /// writes are corrupted. `stm_timeout` stays 0 because spurious
    /// timeouts are observable in the paper's taxonomy (they would change
    /// results); they get their own robustness plan ([`havoc`]).
    ///
    /// [`havoc`]: FaultConfig::havoc
    pub fn smoke(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            oracle_error: 0.25,
            oracle_garbage: 0.15,
            stm_timeout: 0.0,
            cache_corrupt: 0.5,
            worker_panic: 1.0,
            max_trips: 1,
        }
    }

    /// Everything at once, including non-recoverable spurious timeouts.
    /// Used to assert the stack degrades without crashing or hanging, not
    /// to assert byte-identity.
    pub fn havoc(seed: u64) -> FaultConfig {
        FaultConfig {
            stm_timeout: 0.2,
            ..FaultConfig::smoke(seed)
        }
    }

    /// Parses a `--fault-plan` spec: comma-separated `key=value` pairs with
    /// keys `oracle_err`, `garbage`, `timeout`, `cache`, `panic` (rates in
    /// `[0, 1]`) and `trips` (a count). Unset keys stay 0 (`trips` stays
    /// 1). The seed comes from `--fault-seed`, not the spec.
    pub fn parse_spec(spec: &str) -> Result<FaultConfig, String> {
        let mut cfg = FaultConfig::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault-plan entry `{part}` is not key=value"))?;
            let key = key.trim();
            let value = value.trim();
            if key == "trips" {
                cfg.max_trips = value
                    .parse::<u32>()
                    .map_err(|_| format!("bad trips count `{value}`"))?;
                continue;
            }
            let rate: f64 = value
                .parse()
                .map_err(|_| format!("bad rate `{value}` for `{key}`"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("rate `{value}` for `{key}` outside [0, 1]"));
            }
            match key {
                "oracle_err" => cfg.oracle_error = rate,
                "garbage" => cfg.oracle_garbage = rate,
                "timeout" => cfg.stm_timeout = rate,
                "cache" => cfg.cache_corrupt = rate,
                "panic" => cfg.worker_panic = rate,
                other => return Err(format!("unknown fault-plan key `{other}`")),
            }
        }
        Ok(cfg)
    }
}

/// A live fault plan: the config plus per-site attempt counters (the
/// "trips" that make faults transient within one process). Shared as
/// `Arc<FaultPlan>` across workers; the counter map is the only state.
#[derive(Debug, Default)]
pub struct FaultPlan {
    cfg: FaultConfig,
    trips: Mutex<HashMap<(&'static str, String), u32>>,
}

/// FNV-1a over the seed, kind tag, and site name.
fn site_hash(seed: u64, tag: &str, site: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in seed
        .to_le_bytes()
        .iter()
        .copied()
        .chain(tag.bytes())
        .chain([0u8])
        .chain(site.bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Deterministic uniform in [0, 1) from a hash.
fn unit(h: u64) -> f64 {
    ((h >> 11) as f64) / ((1u64 << 53) as f64)
}

impl FaultPlan {
    /// A plan over the given configuration.
    pub fn new(cfg: FaultConfig) -> FaultPlan {
        FaultPlan {
            cfg,
            trips: Mutex::new(HashMap::new()),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::OracleError => self.cfg.oracle_error,
            FaultKind::OracleGarbage => self.cfg.oracle_garbage,
            FaultKind::StmTimeout => self.cfg.stm_timeout,
            FaultKind::CacheCorrupt => self.cfg.cache_corrupt,
            FaultKind::WorkerPanic => self.cfg.worker_panic,
        }
    }

    fn lock_trips(&self) -> MutexGuard<'_, HashMap<(&'static str, String), u32>> {
        // A panic while holding this lock (e.g. an injected worker panic
        // elsewhere in the cell) must not wedge the plan.
        self.trips
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// True when the plan selects `site` for faults of `kind` at all
    /// (before transience is considered). A pure function of the seed.
    pub fn selected(&self, kind: FaultKind, site: &str) -> bool {
        unit(site_hash(self.cfg.seed, kind.tag(), site)) < self.rate(kind)
    }

    /// Stateless query: does attempt number `attempt` (0-based) at `site`
    /// fault? Callers that track attempts externally — e.g. the runner
    /// counting prior cell attempts from the journal, so a resumed process
    /// does not re-panic — use this form.
    pub fn should_fault_at(&self, kind: FaultKind, site: &str, attempt: u32) -> bool {
        attempt < self.cfg.max_trips && self.selected(kind, site)
    }

    /// Stateful query: consult and advance this process's attempt counter
    /// for `(kind, site)`. The first `max_trips` calls on a selected site
    /// return true, later ones false — which is what lets an immediate
    /// retry succeed.
    pub fn should_fault(&self, kind: FaultKind, site: &str) -> bool {
        if self.rate(kind) <= 0.0 {
            return false;
        }
        let mut trips = self.lock_trips();
        let attempt = trips.entry((kind.tag(), site.to_string())).or_insert(0);
        let fault = self.should_fault_at(kind, site, *attempt);
        *attempt = attempt.saturating_add(1);
        fault
    }

    /// Number of attempts recorded at `site` for `kind` in this process.
    pub fn attempts(&self, kind: FaultKind, site: &str) -> u32 {
        self.lock_trips()
            .get(&(kind.tag(), site.to_string()))
            .copied()
            .unwrap_or(0)
    }
}

/// Parses `--fault-seed N` (or `--fault-seed=N`) from an argument list.
pub fn fault_seed_arg(args: impl Iterator<Item = String>) -> Option<u64> {
    value_arg(args, "--fault-seed").and_then(|v| v.parse().ok())
}

/// Parses `--fault-plan SPEC` (or `--fault-plan=SPEC`) from an argument
/// list; the spec grammar is [`FaultConfig::parse_spec`]'s.
pub fn fault_plan_arg(args: impl Iterator<Item = String>) -> Option<String> {
    value_arg(args, "--fault-plan")
}

fn value_arg(args: impl Iterator<Item = String>, flag: &str) -> Option<String> {
    let mut args = args.peekable();
    let prefix = format!("{flag}=");
    while let Some(a) = args.next() {
        if a == flag {
            if let Some(v) = args.peek() {
                return Some(v.clone());
            }
        } else if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
    }
    None
}

/// Builds the process's fault plan from `--fault-seed` / `--fault-plan`.
/// `--fault-plan` alone seeds 0; `--fault-seed` alone uses the standard
/// smoke rates ([`FaultConfig::smoke`]). Neither flag means no plan — the
/// stack runs clean. A malformed spec is a hard error (a chaos run that
/// silently ran clean would defeat its own point).
pub fn plan_from_env_args() -> Option<Arc<FaultPlan>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    plan_from_args(args.into_iter())
}

/// As [`plan_from_env_args`], over an explicit argument list.
pub fn plan_from_args(args: impl Iterator<Item = String> + Clone) -> Option<Arc<FaultPlan>> {
    let seed = fault_seed_arg(args.clone());
    let spec = fault_plan_arg(args);
    let mut cfg = match &spec {
        Some(s) => FaultConfig::parse_spec(s).unwrap_or_else(|e| panic!("--fault-plan: {e}")),
        None => match seed {
            Some(s) => FaultConfig::smoke(s),
            None => return None,
        },
    };
    if let Some(s) = seed {
        cfg.seed = s;
    }
    Some(Arc::new(FaultPlan::new(cfg)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(FaultConfig {
            seed: 7,
            oracle_error: 0.5,
            ..Default::default()
        });
        let b = FaultPlan::new(FaultConfig {
            seed: 8,
            oracle_error: 0.5,
            ..Default::default()
        });
        let sites: Vec<String> = (0..64).map(|i| format!("thm{i}:q0")).collect();
        let pick = |p: &FaultPlan| -> Vec<bool> {
            sites
                .iter()
                .map(|s| p.selected(FaultKind::OracleError, s))
                .collect()
        };
        assert_eq!(pick(&a), pick(&a), "selection must be pure");
        assert_ne!(pick(&a), pick(&b), "different seeds must differ");
        let hits = pick(&a).iter().filter(|x| **x).count();
        assert!(
            (8..=56).contains(&hits),
            "rate 0.5 should hit roughly half of 64 sites, got {hits}"
        );
    }

    #[test]
    fn faults_are_transient_per_site() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 1,
            worker_panic: 1.0,
            max_trips: 2,
            ..Default::default()
        });
        assert!(plan.should_fault(FaultKind::WorkerPanic, "cell-a"));
        assert!(plan.should_fault(FaultKind::WorkerPanic, "cell-a"));
        assert!(!plan.should_fault(FaultKind::WorkerPanic, "cell-a"));
        assert!(!plan.should_fault(FaultKind::WorkerPanic, "cell-a"));
        assert_eq!(plan.attempts(FaultKind::WorkerPanic, "cell-a"), 4);
        // Another site has its own counter.
        assert!(plan.should_fault(FaultKind::WorkerPanic, "cell-b"));
    }

    #[test]
    fn external_attempt_tracking_skips_consumed_trips() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 3,
            worker_panic: 1.0,
            ..Default::default()
        });
        assert!(plan.should_fault_at(FaultKind::WorkerPanic, "cell", 0));
        // A resumed process that learned of the first attempt from the
        // journal must not fault again.
        assert!(!plan.should_fault_at(FaultKind::WorkerPanic, "cell", 1));
    }

    #[test]
    fn zero_rate_never_faults_and_never_counts() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 9,
            ..Default::default()
        });
        for i in 0..16 {
            assert!(!plan.should_fault(FaultKind::StmTimeout, &format!("s{i}")));
        }
        assert_eq!(plan.attempts(FaultKind::StmTimeout, "s0"), 0);
    }

    #[test]
    fn kinds_are_independent_channels() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 2,
            oracle_error: 1.0,
            ..Default::default()
        });
        assert!(plan.should_fault(FaultKind::OracleError, "site"));
        // Same site, different kind, rate 0: unaffected.
        assert!(!plan.should_fault(FaultKind::OracleGarbage, "site"));
    }

    #[test]
    fn spec_parsing_round_trips_the_knobs() {
        let cfg = FaultConfig::parse_spec(
            "oracle_err=0.25, garbage=0.1,timeout=0.05,cache=1,panic=0.5,trips=3",
        )
        .unwrap();
        assert_eq!(cfg.oracle_error, 0.25);
        assert_eq!(cfg.oracle_garbage, 0.1);
        assert_eq!(cfg.stm_timeout, 0.05);
        assert_eq!(cfg.cache_corrupt, 1.0);
        assert_eq!(cfg.worker_panic, 0.5);
        assert_eq!(cfg.max_trips, 3);
        assert!(FaultConfig::parse_spec("bogus=1").is_err());
        assert!(FaultConfig::parse_spec("oracle_err=2").is_err());
        assert!(FaultConfig::parse_spec("oracle_err").is_err());
        assert_eq!(FaultConfig::parse_spec("").unwrap(), FaultConfig::default());
    }

    #[test]
    fn arg_parsing_builds_plans() {
        let v = |xs: &[&str]| plan_from_args(xs.iter().map(|s| s.to_string()));
        assert!(v(&["--fresh"]).is_none());
        let p = v(&["--fault-seed", "42"]).unwrap();
        assert_eq!(p.config().seed, 42);
        assert_eq!(p.config().worker_panic, 1.0, "bare seed uses smoke rates");
        let p = v(&["--fault-seed=7", "--fault-plan=timeout=0.5,trips=2"]).unwrap();
        assert_eq!(p.config().seed, 7);
        assert_eq!(p.config().stm_timeout, 0.5);
        assert_eq!(p.config().max_trips, 2);
        assert_eq!(p.config().worker_panic, 0.0);
    }
}
