//! Findings, the reason-code taxonomy, and the SARIF-shaped JSON report.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize, Value};

/// The stable reason-code taxonomy of analyzer findings. Codes are part of
/// the tool's output contract (CI greps them, SARIF `ruleId`s carry them),
/// so variants are append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Code {
    /// A hint database admits a fuel-divergent backchaining cycle.
    HintLoop,
    /// An inductive predicate (or mutual group) occurs non-strictly-
    /// positively in one of its own introduction rules.
    NonPositive,
    /// A symbol is unreachable from every liveness root.
    DeadSymbol,
    /// Two equational lemmas are exact reverses of each other, so using
    /// both as rewrites can ping-pong forever.
    RewritePingPong,
    /// A lemma was closed with `Admitted.` instead of a checked proof.
    Admitted,
    /// An `Axiom` statement was assumed into the environment.
    Axiom,
    /// A reference did not resolve against the symbol table.
    UnknownRef,
    /// A theorem is inside the dirty cone of a corpus edit: its
    /// verification outcome could differ from the baseline snapshot's
    /// (change-impact analysis; see [`crate::impact`]).
    ImpactDirty,
    /// A hint-database entry never contributed to any successful proof
    /// in a supplied attempt log (log-driven audit; see
    /// [`crate::passes::cold`]).
    ColdHint,
}

/// Every code, in report order.
pub const ALL_CODES: [Code; 9] = [
    Code::HintLoop,
    Code::NonPositive,
    Code::DeadSymbol,
    Code::RewritePingPong,
    Code::Admitted,
    Code::Axiom,
    Code::UnknownRef,
    Code::ImpactDirty,
    Code::ColdHint,
];

impl Code {
    /// The stable machine-readable code.
    pub fn code(self) -> &'static str {
        match self {
            Code::HintLoop => "hint-loop",
            Code::NonPositive => "non-positive",
            Code::DeadSymbol => "dead-symbol",
            Code::RewritePingPong => "rewrite-pingpong",
            Code::Admitted => "admitted",
            Code::Axiom => "axiom",
            Code::UnknownRef => "unknown-ref",
            Code::ImpactDirty => "impact-dirty",
            Code::ColdHint => "cold-hint",
        }
    }

    /// One-line rule description (SARIF `shortDescription`).
    pub fn description(self) -> &'static str {
        match self {
            Code::HintLoop => {
                "hint database admits a backchaining cycle that auto/eauto cannot exhaust"
            }
            Code::NonPositive => {
                "inductive predicate occurs non-strictly-positively in its own rules"
            }
            Code::DeadSymbol => "symbol is unreachable from every benchmark theorem and hint",
            Code::RewritePingPong => "two equational lemmas rewrite each other back and forth",
            Code::Admitted => "lemma admitted without a checked proof",
            Code::Axiom => "statement assumed as an axiom",
            Code::UnknownRef => "reference does not resolve to any declared symbol",
            Code::ImpactDirty => {
                "theorem is in the dirty cone of a corpus edit and needs re-verification"
            }
            Code::ColdHint => {
                "hint entry never contributed to a successful proof in the supplied attempt log"
            }
        }
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// One analyzer finding, anchored to a file, item, and source line.
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    /// Reason code.
    pub code: Code,
    /// Module of the offending item.
    pub file: String,
    /// Item name (synthetic for hints, empty when unknown).
    pub item: String,
    /// Index of the item within its file.
    pub item_index: usize,
    /// 1-based source line (0 when unknown).
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {} [{}]",
            self.file,
            self.line,
            self.item,
            self.message,
            self.code.code()
        )
    }
}

/// The result of a full analysis run.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// Every finding, in pass order.
    pub findings: Vec<Finding>,
    /// Symbols in the dependency graph.
    pub symbols: usize,
    /// Reference edges in the dependency graph.
    pub edges: usize,
}

impl AnalysisReport {
    /// Finding counts per reason code, with every code present (zero
    /// counts included, so reports are shape-stable).
    pub fn pass_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut out: BTreeMap<&'static str, usize> =
            ALL_CODES.iter().map(|c| (c.code(), 0)).collect();
        for f in &self.findings {
            *out.entry(f.code.code()).or_insert(0) += 1;
        }
        out
    }

    /// True when no pass produced a finding.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The SARIF 2.1.0 document for this report. `uri_prefix` is prepended
    /// to `<module>.v` in result locations (e.g. `crates/fscq/corpus/`).
    pub fn to_sarif(&self, tool: &str, uri_prefix: &str) -> Value {
        let rules: Vec<Value> = ALL_CODES
            .iter()
            .map(|c| {
                obj(vec![
                    ("id", s(c.code())),
                    ("shortDescription", obj(vec![("text", s(c.description()))])),
                ])
            })
            .collect();
        let results: Vec<Value> = self
            .findings
            .iter()
            .map(|f| {
                obj(vec![
                    ("ruleId", s(f.code.code())),
                    ("level", s("warning")),
                    ("message", obj(vec![("text", s(&f.message))])),
                    (
                        "locations",
                        Value::Array(vec![obj(vec![(
                            "physicalLocation",
                            obj(vec![
                                (
                                    "artifactLocation",
                                    obj(vec![("uri", s(&format!("{uri_prefix}{}.v", f.file)))]),
                                ),
                                (
                                    "region",
                                    obj(vec![("startLine", Value::Int(f.line.max(1) as i64))]),
                                ),
                            ]),
                        )])]),
                    ),
                ])
            })
            .collect();
        obj(vec![
            (
                "$schema",
                s("https://json.schemastore.org/sarif-2.1.0.json"),
            ),
            ("version", s("2.1.0")),
            (
                "runs",
                Value::Array(vec![obj(vec![
                    (
                        "tool",
                        obj(vec![(
                            "driver",
                            obj(vec![("name", s(tool)), ("rules", Value::Array(rules))]),
                        )]),
                    ),
                    ("results", Value::Array(results)),
                ])]),
            ),
        ])
    }

    /// [`to_sarif`](Self::to_sarif) rendered as pretty JSON.
    pub fn sarif_json(&self, tool: &str, uri_prefix: &str) -> String {
        serde_json::to_string_pretty(&self.to_sarif(tool, uri_prefix))
            .expect("SARIF value serializes")
    }
}

fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}
