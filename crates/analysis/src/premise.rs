//! Graph-guided premise ranking for the proof searcher.
//!
//! Hints close to the goal in the dependency graph are more likely to
//! advance it, so the searcher can ask for a goal-specific reordering of
//! every hint database: hints are sorted by the length of the shortest
//! undirected reference path between the goal's symbols and the hint's
//! target, with declaration order as the tie-break. The reordering is a
//! *permutation only* — no hint is added or dropped — so any proof found
//! with ranking replays without it.
//!
//! The adjacency here is rebuilt from the [`Env`] alone (statements,
//! rules, and bodies), not from [`crate::graph::DepGraph`], because the
//! searcher holds an environment snapshot, not a loaded development.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use minicoq::env::{Env, PredDef};
use minicoq::formula::Formula;

use crate::graph::{formula_refs, sort_refs, term_refs};

/// Undirected reference adjacency over the names declared in `env`.
fn adjacency(env: &Env) -> BTreeMap<String, BTreeSet<String>> {
    let mut adj: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut link = |a: &str, refs: &BTreeSet<String>| {
        for r in refs {
            if r == a {
                continue;
            }
            adj.entry(a.to_string()).or_default().insert(r.clone());
            adj.entry(r.clone()).or_default().insert(a.to_string());
        }
    };
    for (n, ind) in env.inductives.iter() {
        let mut refs = BTreeSet::new();
        for c in &ind.ctors {
            refs.insert(c.name.to_string());
            for s in &c.args {
                sort_refs(s, &mut refs);
            }
        }
        link(n, &refs);
    }
    for (n, f) in env.funcs.iter() {
        let mut refs = BTreeSet::new();
        term_refs(&f.body, &mut refs);
        sort_refs(&f.ret, &mut refs);
        for (_, s) in &f.params {
            sort_refs(s, &mut refs);
        }
        link(n, &refs);
    }
    for (n, pd) in env.preds.iter() {
        let mut refs = BTreeSet::new();
        match pd {
            PredDef::Defined(dp) => {
                formula_refs(&dp.body, &mut refs);
                for (_, s) in &dp.params {
                    sort_refs(s, &mut refs);
                }
            }
            PredDef::Inductive(ip) => {
                for (rn, stmt) in &ip.rules {
                    refs.insert(rn.to_string());
                    let mut rule_refs = BTreeSet::new();
                    formula_refs(stmt, &mut rule_refs);
                    link(rn, &rule_refs);
                    refs.extend(rule_refs);
                }
                for s in &ip.arg_sorts {
                    sort_refs(s, &mut refs);
                }
            }
        }
        link(n, &refs);
    }
    for l in env.lemmas.iter() {
        let mut refs = BTreeSet::new();
        formula_refs(&l.stmt, &mut refs);
        link(&l.name, &refs);
    }
    adj
}

/// Shortest undirected distance from the goal's symbols to every name.
pub(crate) fn distances(env: &Env, goal: &Formula) -> BTreeMap<String, usize> {
    let adj = adjacency(env);
    let mut seeds = BTreeSet::new();
    formula_refs(goal, &mut seeds);
    let mut dist: BTreeMap<String, usize> = BTreeMap::new();
    let mut queue: VecDeque<String> = VecDeque::new();
    for s in seeds {
        dist.insert(s.clone(), 0);
        queue.push_back(s);
    }
    while let Some(n) = queue.pop_front() {
        let d = dist[&n];
        if let Some(next) = adj.get(&n) {
            for m in next {
                if !dist.contains_key(m) {
                    dist.insert(m.clone(), d + 1);
                    queue.push_back(m.clone());
                }
            }
        }
    }
    dist
}

/// Returns an environment identical to `env` except that every hint
/// database is stably reordered by dependency distance to `goal`
/// (closest first; unreachable hints keep their relative order at the
/// end). The hint *sets* are unchanged.
pub fn reranked_env(env: &Env, goal: &Formula) -> Env {
    let _sp = proof_trace::span("analysis", "premise_rank");
    let dist = distances(env, goal);
    let mut hints: BTreeMap<String, Vec<minicoq::Ident>> = (*env.hints).clone();
    for db in hints.values_mut() {
        let mut keyed: Vec<(usize, usize, minicoq::Ident)> = db
            .iter()
            .enumerate()
            .map(|(i, h)| {
                (
                    dist.get(h.as_str()).copied().unwrap_or(usize::MAX),
                    i,
                    h.clone(),
                )
            })
            .collect();
        keyed.sort();
        *db = keyed.into_iter().map(|(_, _, h)| h).collect();
    }
    proof_trace::metrics::counter_inc("analysis.premise_rank.reranks");
    let mut out = env.clone();
    out.hints = Arc::new(hints);
    out
}

/// How hint databases (and, for `Learned`, oracle proposal order) are
/// reranked. `Off` is represented by not calling into this module at
/// all, so the default search path stays byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankMode {
    /// PR 5 baseline: sort by undirected dependency distance to the goal.
    Graph,
    /// Sort by the installed [`crate::score::Model`]'s learned score;
    /// falls back to `Graph` when no model is installed.
    Learned,
}

/// [`reranked_env`] v2: the `Graph` arm is the original distance sort;
/// the `Learned` arm sorts every hint database by descending learned
/// score with declaration order as the tie-break. Both are permutations
/// only — hint *sets* are unchanged, so any proof found with ranking
/// replays without it.
pub fn reranked_env_v2(env: &Env, goal: &Formula, mode: RankMode) -> Env {
    let rcx = match mode {
        RankMode::Graph => None,
        RankMode::Learned => crate::score::RankCtx::new(env, goal),
    };
    let Some(rcx) = rcx else {
        return reranked_env(env, goal);
    };
    let _sp = proof_trace::span("analysis", "premise_rank_learned");
    let mut hints: BTreeMap<String, Vec<minicoq::Ident>> = (*env.hints).clone();
    for db in hints.values_mut() {
        let mut keyed: Vec<(i64, usize, minicoq::Ident)> = db
            .iter()
            .enumerate()
            .map(|(i, h)| (-rcx.score_premise(h.as_str()), i, h.clone()))
            .collect();
        keyed.sort();
        *db = keyed.into_iter().map(|(_, _, h)| h).collect();
    }
    proof_trace::metrics::counter_inc("analysis.premise_rank.learned_reranks");
    let mut out = env.clone();
    out.hints = Arc::new(hints);
    out
}
