//! Whole-corpus semantic analysis for minicoq developments.
//!
//! This crate loads every vernacular file of a development, builds a
//! global symbol table and dependency graph ([`graph::DepGraph`]), and
//! runs five static passes over it:
//!
//! 1. **hint-loop** — abstract backchaining cycles a hint database lets
//!    `auto`/`eauto` diverge on ([`passes::hints`]);
//! 2. **non-positive** — strict-positivity/stratification violations in
//!    inductive predicates, including mutual groups
//!    ([`passes::positivity`]);
//! 3. **dead-symbol** — symbols unreachable from every benchmark theorem
//!    and hint ([`passes::dead`]);
//! 4. **rewrite-pingpong** — equational lemma pairs that are exact
//!    reverses of each other ([`passes::rewrite`]);
//! 5. **admitted/axiom** — unproved assumptions ([`passes::axioms`]).
//!
//! Unresolved references discovered while building the graph are reported
//! as a sixth, structural finding (`unknown-ref`), and a log-driven audit
//! ([`passes::cold`], reason code `cold-hint`) flags hint entries that
//! never contributed to a successful proof in a supplied attempt log.
//! Findings carry a stable reason-code taxonomy ([`report::Code`]) and
//! render as SARIF 2.1.0 ([`report::AnalysisReport::to_sarif`]).
//!
//! The same dependency graph also powers the opt-in premise-ranking
//! pipeline: deterministic feature extraction ([`features`]), an offline
//! attempt-mined scorer ([`score`]), and goal-specific hint reordering
//! ([`premise::reranked_env_v2`], see `proof-search`'s `premise_rank`
//! option) — and the change-impact analysis ([`impact`]): per-symbol
//! semantic fingerprints, snapshot diffing, and the dirty-cone
//! computation behind incremental re-verification.

pub mod features;
pub mod graph;
pub mod impact;
pub mod passes;
pub mod premise;
pub mod report;
pub mod score;

use minicoq_vernac::loader::{Development, Loader};

pub use graph::DepGraph;
pub use impact::{
    cone_fingerprint, cone_fingerprint_in, diff_and_cone, ConeIndex, ImpactReason, ImpactReport,
    ImpactTrace, Snapshot,
};
pub use passes::dead::Roots;
pub use report::{AnalysisReport, Code, Finding, ALL_CODES};

/// Configuration of a full analysis run.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Liveness roots for the dead-symbol audit.
    pub roots: Roots,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            roots: Roots::AllTheorems,
        }
    }
}

/// Loads `sources` (without replaying proofs), builds the dependency
/// graph, and runs every pass. Returns `Err` with a load diagnostic when
/// the development itself does not elaborate.
pub fn analyze_sources(
    sources: &[(String, String)],
    config: &AnalysisConfig,
) -> Result<(AnalysisReport, DepGraph), String> {
    let _sp = proof_trace::span("analysis", "run");
    let mut loader = Loader::new().check_proofs(false);
    for (name, text) in sources {
        loader.add_source(name.clone(), text.clone());
    }
    let dev = loader.load().map_err(|e| e.to_string())?;
    Ok(analyze_development(&dev, sources, config))
}

/// Runs every pass over an already-loaded development. `sources` is used
/// only to compute line numbers.
pub fn analyze_development(
    dev: &Development,
    sources: &[(String, String)],
    config: &AnalysisConfig,
) -> (AnalysisReport, DepGraph) {
    let graph = DepGraph::build(dev, sources);
    let mut findings = Vec::new();
    passes::hints::run(&dev.env, &graph, &mut findings);
    passes::positivity::run(&dev.env, &graph, &mut findings);
    passes::dead::run(dev, &graph, &config.roots, &mut findings);
    passes::rewrite::run(&dev.env, &graph, &mut findings);
    passes::axioms::run(dev, &graph, &mut findings);
    for u in &graph.unresolved {
        findings.push(Finding {
            code: Code::UnknownRef,
            file: u.file.clone(),
            item: u.item.clone(),
            item_index: u.item_index,
            line: u.line,
            message: format!(
                "`{}` references `{}`, which resolves to no symbol",
                u.item, u.name
            ),
        });
    }
    let report = AnalysisReport {
        findings,
        symbols: graph.len(),
        edges: graph.edge_count(),
    };
    for (code, n) in report.pass_counts() {
        proof_trace::metrics::counter_add(&format!("analysis.pass.{code}"), n as u64);
    }
    proof_trace::metrics::counter_add("analysis.graph.symbols", graph.len() as u64);
    proof_trace::metrics::counter_add("analysis.graph.edges", graph.edge_count() as u64);
    (report, graph)
}
