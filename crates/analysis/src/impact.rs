//! Change-impact analysis: per-symbol semantic fingerprints, corpus
//! snapshots, and the dirty-cone computation behind `prove --incremental`.
//!
//! A [`Snapshot`] captures two layers of a loaded development:
//!
//! * **Semantic fingerprints** — one canonical, alpha-invariant content
//!   hash per symbol, built from the `minicoq::statehash` canonical keys
//!   (`func_def_key`, `formula_key`, …). Renaming binders, reflowing
//!   whitespace, editing comments, or touching *unrelated* symbols leaves
//!   a symbol's fingerprint unchanged, so diffing two snapshots yields
//!   the changed-symbol set with zero false positives from cosmetic
//!   edits.
//! * **Item text hashes** — one hash per rendered source item. The
//!   verification oracle is prompt-driven: token counts, lemma statement
//!   spelling, and hint proofs all feed the simulated model, so a purely
//!   textual edit (e.g. renaming a bound variable) can still change
//!   outcomes of every theorem whose prompt shows the edited item. This
//!   layer is what makes the dirty cone *sound* for re-verification, not
//!   just explanatory.
//!
//! [`diff_and_cone`] diffs a baseline snapshot against an edited
//! development and computes the **dirty cone**: the set of theorems whose
//! verification could differ, each with an explanatory [`ImpactTrace`].
//! Five channels feed the cone, in trace priority order:
//!
//! 1. *self* — the theorem's own item changed;
//! 2. *graph* — reverse reachability over the dependency graph from the
//!    changed-symbol set (with the shortest dependency path as the
//!    trace);
//! 3. *prompt* — a prompt-visible item (imported file, or same file
//!    above the theorem) changed textually, or declares a symbol whose
//!    definition transitively changed;
//! 4. *hint-db* — a hint sentence (or the definition of its target)
//!    changed; hint databases accumulate in load order across *all*
//!    files, imported or not, so every theorem loaded after the
//!    registration is in the cone. This is why hint-db membership edges
//!    are part of the graph;
//! 5. *collision* — the simulated model hallucinates `apply <lemma>_l`
//!    style variants of visible lemmas; when such a name actually exists
//!    in the environment, its statement matters to theorems that never
//!    reference it.
//!
//! The hint-db and collision channels also fire on **deletions**, which
//! the edited graph alone cannot see: a removed hint registration stops
//! feeding the accumulated databases, and a removed collision lemma
//! stops resolving hallucinated `apply` targets. Removal events are
//! synthesized from the snapshot diff — at the hint's old load position
//! (its synthetic name encodes it), or conservatively dirtying every
//! theorem when the old position is unrecoverable.
//!
//! Theorem additions, removals, and renames reshuffle the deterministic
//! hint/eval splits, so a changed theorem *set* is reported as
//! [`ImpactReport::theorem_set_changed`] and callers fall back to a full
//! re-run.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use minicoq::env::PredDef;
use minicoq::statehash::{
    defined_pred_key, formula_key, func_def_key, ind_pred_key, inductive_key,
};
use minicoq_vernac::item::ItemKind;
use minicoq_vernac::loader::Development;
use serde::{Deserialize, Serialize};

use crate::graph::{hint_symbol_name, parse_hint_symbol_name, DepGraph, SymbolKind};
use crate::report::{AnalysisReport, Code, Finding};

/// The hallucinated-variant suffixes the simulated oracle appends to
/// visible lemma names when fabricating distractor tactics. A name formed
/// as `<visible lemma><suffix>` that *also* names a real lemma or rule is
/// a collision: its statement can decide an `apply` for theorems that
/// never reference it.
pub const COLLISION_SUFFIXES: [&str; 4] = ["_l", "_r", "2", "_weak"];

/// FNV-1a over a byte string, rendered as the 16-hex-digit fingerprint
/// format every snapshot field uses.
fn fp(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    format!("{h:016x}")
}

/// Collapses whitespace runs to single spaces (hint sentences are hashed
/// as token streams, so reflowing one is cosmetic).
fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// The key an item hashes under: `<module>#<item index>`.
pub fn item_key(file: &str, idx: usize) -> String {
    format!("{file}#{idx}")
}

fn split_item_key(key: &str) -> Option<(&str, usize)> {
    let (file, idx) = key.rsplit_once('#')?;
    Some((file, idx.parse().ok()?))
}

/// A two-layer content snapshot of a loaded development, diffable against
/// a later snapshot of an edited corpus. Serializes to JSON so a baseline
/// can be captured once and shipped alongside a result journal.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Snapshot {
    /// Semantic fingerprint per symbol (alpha-invariant canonical keys).
    pub symbols: BTreeMap<String, String>,
    /// Rendered-text hash per item, keyed `<module>#<index>`.
    pub items: BTreeMap<String, String>,
    /// Module names in load order.
    pub files: Vec<String>,
    /// Theorem names in corpus order (the hint/eval splits hash these).
    pub theorems: Vec<String>,
}

impl Snapshot {
    /// Captures both layers from a loaded development.
    pub fn capture(dev: &Development) -> Snapshot {
        let _sp = proof_trace::span("analysis", "snapshot");
        let env = &dev.env;
        let mut symbols = BTreeMap::new();
        for s in env.sorts.iter() {
            symbols.insert(s.clone(), fp(b"(sort)"));
        }
        for (s, arity) in env.sort_ctors.iter() {
            symbols.insert(s.clone(), fp(format!("(sortctor {arity})").as_bytes()));
        }
        for (n, ind) in env.inductives.iter() {
            symbols.insert(n.clone(), fp(inductive_key(ind).as_bytes()));
            for c in &ind.ctors {
                let mut key = format!("(ctor {n}");
                for a in &c.args {
                    key.push(' ');
                    key.push_str(&a.to_string());
                }
                key.push(')');
                symbols.insert(c.name.clone(), fp(key.as_bytes()));
            }
        }
        for (n, f) in env.funcs.iter() {
            symbols.insert(n.clone(), fp(func_def_key(f).as_bytes()));
        }
        for (n, p) in env.preds.iter() {
            match p {
                PredDef::Defined(d) => {
                    symbols.insert(n.clone(), fp(defined_pred_key(d).as_bytes()));
                }
                PredDef::Inductive(ip) => {
                    symbols.insert(n.clone(), fp(ind_pred_key(ip).as_bytes()));
                    for (rn, stmt) in &ip.rules {
                        symbols.insert(
                            rn.clone(),
                            fp(format!("(rule {})", formula_key(stmt)).as_bytes()),
                        );
                    }
                }
            }
        }
        // A lemma's content is its statement (alpha-canonical) plus its
        // human proof script: proofs feed hint prompts and the oracle's
        // script-imitation features, so a proof edit is a real change.
        let proofs: BTreeMap<&str, &str> = dev
            .theorems
            .iter()
            .map(|t| (t.name.as_str(), t.proof_text.as_str()))
            .collect();
        for l in env.lemmas.iter() {
            let proof = proofs.get(l.name.as_str()).copied().unwrap_or("");
            symbols.insert(
                l.name.clone(),
                fp(format!("(lemma {} {proof})", formula_key(&l.stmt)).as_bytes()),
            );
        }
        for file in &dev.files {
            for (idx, item) in file.items.iter().enumerate() {
                if item.kind == ItemKind::Hint {
                    symbols.insert(
                        hint_symbol_name(&file.name, idx),
                        fp(normalize_ws(&item.text).as_bytes()),
                    );
                }
            }
        }
        let mut items = BTreeMap::new();
        for (file, idx, rendered) in dev.rendered_items() {
            items.insert(item_key(file, idx), fp(rendered.as_bytes()));
        }
        Snapshot {
            symbols,
            items,
            files: dev.files.iter().map(|f| f.name.clone()).collect(),
            theorems: dev.theorems.iter().map(|t| t.name.clone()).collect(),
        }
    }

    /// Serializes the snapshot as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Parses a snapshot back from [`Snapshot::to_json`] output.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        serde_json::from_str(text).map_err(|e| format!("snapshot parse: {e:?}"))
    }
}

/// Why a theorem landed in the dirty cone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ImpactReason {
    /// The theorem's own item changed.
    SelfEdit,
    /// The theorem's statement or proof transitively references a changed
    /// symbol (dependency-graph reverse reachability).
    Graph,
    /// A prompt-visible item changed textually, or declares a symbol
    /// whose definition transitively changed.
    Prompt,
    /// A hint registration (or its target's definition) changed earlier
    /// in load order; `auto`/`eauto` consult the accumulated databases.
    HintDb,
    /// The statement of a hallucination-collision lemma changed.
    Collision,
}

impl ImpactReason {
    /// Stable machine-readable label.
    pub fn label(self) -> &'static str {
        match self {
            ImpactReason::SelfEdit => "self",
            ImpactReason::Graph => "graph",
            ImpactReason::Prompt => "prompt",
            ImpactReason::HintDb => "hint-db",
            ImpactReason::Collision => "collision",
        }
    }
}

/// The explanation attached to one dirty theorem.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ImpactTrace {
    /// Which channel put the theorem in the cone.
    pub reason: ImpactReason,
    /// The edited symbol or item the trace starts from.
    pub origin: String,
    /// For [`ImpactReason::Graph`]: the shortest dependency path from the
    /// edit to the theorem (edit first, theorem last). Empty otherwise.
    pub path: Vec<String>,
}

impl ImpactTrace {
    /// One-line human rendering.
    pub fn describe(&self) -> String {
        match self.reason {
            ImpactReason::SelfEdit => format!("its own item changed ({})", self.origin),
            ImpactReason::Graph => format!(
                "depends on edited `{}` via {}",
                self.origin,
                self.path.join(" <- ")
            ),
            ImpactReason::Prompt => format!("prompt-visible item changed: {}", self.origin),
            ImpactReason::HintDb => format!(
                "hint registration changed earlier in load order: {}",
                self.origin
            ),
            ImpactReason::Collision => {
                format!("hallucination-collision lemma changed: `{}`", self.origin)
            }
        }
    }
}

/// The full result of diffing a baseline snapshot against an edited
/// development: what changed, and which theorems that dirties.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ImpactReport {
    /// Symbols whose semantic fingerprint differs (present in both).
    pub changed_symbols: Vec<String>,
    /// Symbols only the edited corpus declares.
    pub added_symbols: Vec<String>,
    /// Symbols only the baseline declared.
    pub removed_symbols: Vec<String>,
    /// Items whose rendered text differs (either direction), as
    /// `<module>#<index>` keys.
    pub changed_items: Vec<String>,
    /// True when the theorem name list itself changed; the deterministic
    /// hint/eval splits reshuffle then, so incremental callers must fall
    /// back to a full re-run.
    pub theorem_set_changed: bool,
    /// Dirty theorems with their impact traces, by theorem name.
    pub dirty: BTreeMap<String, ImpactTrace>,
}

impl ImpactReport {
    /// True when the edit was cosmetic end to end: no semantic change, no
    /// textual item change, nothing dirty.
    pub fn is_clean(&self) -> bool {
        self.changed_symbols.is_empty()
            && self.added_symbols.is_empty()
            && self.removed_symbols.is_empty()
            && self.changed_items.is_empty()
            && !self.theorem_set_changed
            && self.dirty.is_empty()
    }

    /// Human-readable impact report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "impact: {} semantic change(s), {} textual item change(s), {} dirty theorem(s)\n",
            self.changed_symbols.len() + self.added_symbols.len() + self.removed_symbols.len(),
            self.changed_items.len(),
            self.dirty.len()
        ));
        if self.theorem_set_changed {
            out.push_str("  theorem set changed: hint/eval splits reshuffle -> full re-run\n");
        }
        for s in &self.changed_symbols {
            out.push_str(&format!("  changed symbol: {s}\n"));
        }
        for s in &self.added_symbols {
            out.push_str(&format!("  added symbol:   {s}\n"));
        }
        for s in &self.removed_symbols {
            out.push_str(&format!("  removed symbol: {s}\n"));
        }
        for i in &self.changed_items {
            out.push_str(&format!("  changed item:   {i}\n"));
        }
        for (thm, trace) in &self.dirty {
            out.push_str(&format!(
                "  dirty [{}] {thm}: {}\n",
                trace.reason.label(),
                trace.describe()
            ));
        }
        out
    }

    /// The dirty cone as analyzer findings (one [`Code::ImpactDirty`] per
    /// dirty theorem), wrapped in an [`AnalysisReport`] so the standard
    /// SARIF exporter renders it alongside the other reason codes.
    pub fn to_analysis_report(&self, dev: &Development, graph: &DepGraph) -> AnalysisReport {
        let findings = self
            .dirty
            .iter()
            .map(|(thm, trace)| {
                let (file, item_index, line) = dev
                    .theorem(thm)
                    .map(|t| {
                        let line = graph
                            .lookup(thm)
                            .map(|id| graph.symbol(id).line)
                            .unwrap_or(0);
                        (t.file.clone(), t.item_index, line)
                    })
                    .unwrap_or_default();
                Finding {
                    code: Code::ImpactDirty,
                    file,
                    item: thm.clone(),
                    item_index,
                    line,
                    message: format!("in the dirty cone: {}", trace.describe()),
                }
            })
            .collect();
        AnalysisReport {
            findings,
            symbols: graph.len(),
            edges: graph.edge_count(),
        }
    }
}

/// Diffs `baseline` against the (already loaded) edited development and
/// computes the dirty cone over its dependency graph. The development and
/// graph must describe the *edited* corpus.
pub fn diff_and_cone(baseline: &Snapshot, dev: &Development, graph: &DepGraph) -> ImpactReport {
    let _sp = proof_trace::span("analysis", "impact");
    let edited = Snapshot::capture(dev);
    let mut report = ImpactReport::default();

    for (name, new_fp) in &edited.symbols {
        match baseline.symbols.get(name) {
            Some(old_fp) if old_fp == new_fp => {}
            Some(_) => report.changed_symbols.push(name.clone()),
            None => report.added_symbols.push(name.clone()),
        }
    }
    for name in baseline.symbols.keys() {
        if !edited.symbols.contains_key(name) {
            report.removed_symbols.push(name.clone());
        }
    }
    let mut changed_items: BTreeSet<String> = BTreeSet::new();
    for (key, new_h) in &edited.items {
        if baseline.items.get(key) != Some(new_h) {
            changed_items.insert(key.clone());
        }
    }
    for key in baseline.items.keys() {
        if !edited.items.contains_key(key) {
            changed_items.insert(key.clone());
        }
    }
    report.changed_items = changed_items.iter().cloned().collect();
    report.theorem_set_changed = baseline.theorems != edited.theorems;

    // Reverse reachability from the changed/added symbol set: `affected`
    // holds, for every symbol whose definition transitively references a
    // change, the BFS parent on a shortest reverse path (so the trace can
    // be reconstructed edit-first).
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); graph.len()];
    for (id, _) in graph.symbols() {
        for to in graph.out(id) {
            rev[to].push(id);
        }
    }
    let mut affected: Vec<Option<usize>> = vec![None; graph.len()];
    let mut queue = VecDeque::new();
    for name in report.changed_symbols.iter().chain(&report.added_symbols) {
        if let Some(id) = graph.lookup(name) {
            if affected[id].is_none() {
                affected[id] = Some(id); // roots are their own parent
                queue.push_back(id);
            }
        }
    }
    while let Some(id) = queue.pop_front() {
        for &from in &rev[id] {
            if affected[from].is_none() {
                affected[from] = Some(id);
                queue.push_back(from);
            }
        }
    }
    let graph_path = |thm_id: usize| -> Vec<String> {
        let mut path = vec![graph.symbol(thm_id).name.clone()];
        let mut cur = thm_id;
        while let Some(parent) = affected[cur] {
            if parent == cur {
                break;
            }
            path.push(graph.symbol(parent).name.clone());
            cur = parent;
        }
        path.reverse(); // edit first, theorem last
        path
    };

    // Per-file dirty item indices: textually changed items plus items
    // declaring an affected symbol (a visible lemma whose *dependencies*
    // changed drags the change into any proof that applies it).
    let file_pos: BTreeMap<&str, usize> = edited
        .files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.as_str(), i))
        .collect();
    let mut dirty_idx: BTreeMap<String, BTreeMap<usize, String>> = BTreeMap::new();
    for key in &changed_items {
        if let Some((file, idx)) = split_item_key(key) {
            dirty_idx
                .entry(file.to_string())
                .or_default()
                .entry(idx)
                .or_insert_with(|| format!("{key} (text)"));
        }
    }
    for (id, sym) in graph.symbols() {
        if affected[id].is_some() && file_pos.contains_key(sym.file.as_str()) {
            dirty_idx
                .entry(sym.file.clone())
                .or_default()
                .entry(sym.item_index)
                .or_insert_with(|| {
                    format!(
                        "{} (via `{}`)",
                        item_key(&sym.file, sym.item_index),
                        sym.name
                    )
                });
        }
    }

    // Hint events: a hint item that changed textually, or whose target's
    // definition is affected, dirties everything after it in load order.
    let mut hint_events: Vec<((usize, usize), String)> = Vec::new();
    for (id, sym) in graph.symbols() {
        if sym.kind != SymbolKind::Hint {
            continue;
        }
        let Some(&fpos) = file_pos.get(sym.file.as_str()) else {
            continue;
        };
        let textual = changed_items.contains(&item_key(&sym.file, sym.item_index));
        if textual || affected[id].is_some() {
            hint_events.push(((fpos, sym.item_index), sym.name.clone()));
        }
    }

    // Collision events: `<lemma><suffix>` names that resolve to a real
    // lemma, rule or axiom, whose definition changed or is affected.
    let mut collision_events: Vec<((usize, usize), String)> = Vec::new();
    for (candidate, cid) in collision_candidates(graph) {
        if affected[cid].is_some() {
            let c = graph.symbol(cid);
            if let Some(&fpos) = file_pos.get(c.file.as_str()) {
                collision_events.push(((fpos, c.item_index), candidate));
            }
        }
    }
    collision_events.sort();
    collision_events.dedup();

    // Deletions: the two scans above walk the *edited* graph, so a
    // removed hint registration or collision lemma generates no event
    // there — yet search behavior changes for every theorem loaded after
    // the old registration point. Synthesize events from the removal
    // records. A removed hint's synthetic name encodes its old position,
    // which is meaningful in edited coordinates only while the module
    // list is unchanged (and the module still exists); otherwise, and
    // for removed collision lemmas (whose old position the snapshot does
    // not record), conservatively dirty every theorem.
    let files_stable = baseline.files == edited.files;
    let mut removed_hint_all: Option<String> = None;
    let mut removed_collision_all: Option<String> = None;
    for name in &report.removed_symbols {
        if let Some((file, idx)) = parse_hint_symbol_name(name) {
            let origin = format!("{name} (removed)");
            match file_pos.get(file).filter(|_| files_stable) {
                Some(&fpos) => hint_events.push(((fpos, idx), origin)),
                None => {
                    removed_hint_all.get_or_insert(origin);
                }
            }
        } else if is_collision_name(name, graph) {
            removed_collision_all.get_or_insert(format!("{name} (removed)"));
        }
    }
    hint_events.sort();

    let first_event_before = |events: &[((usize, usize), String)], pos: (usize, usize)| {
        events
            .iter()
            .find(|(p, _)| *p < pos)
            .map(|(_, n)| n.clone())
    };

    for thm in &dev.theorems {
        let Some(&fpos) = file_pos.get(thm.file.as_str()) else {
            continue;
        };
        let pos = (fpos, thm.item_index);
        let trace = if changed_items.contains(&item_key(&thm.file, thm.item_index)) {
            Some(ImpactTrace {
                reason: ImpactReason::SelfEdit,
                origin: item_key(&thm.file, thm.item_index),
                path: Vec::new(),
            })
        } else if let Some(id) = graph.lookup(&thm.name).filter(|&id| affected[id].is_some()) {
            let path = graph_path(id);
            Some(ImpactTrace {
                reason: ImpactReason::Graph,
                origin: path.first().cloned().unwrap_or_default(),
                path,
            })
        } else if let Some(origin) = visible_dirty_item(dev, &dirty_idx, thm) {
            Some(ImpactTrace {
                reason: ImpactReason::Prompt,
                origin,
                path: Vec::new(),
            })
        } else if let Some(origin) =
            first_event_before(&hint_events, pos).or_else(|| removed_hint_all.clone())
        {
            Some(ImpactTrace {
                reason: ImpactReason::HintDb,
                origin,
                path: Vec::new(),
            })
        } else {
            first_event_before(&collision_events, pos)
                .or_else(|| removed_collision_all.clone())
                .map(|origin| ImpactTrace {
                    reason: ImpactReason::Collision,
                    origin,
                    path: Vec::new(),
                })
        };
        if let Some(trace) = trace {
            report.dirty.insert(thm.name.clone(), trace);
        }
    }
    proof_trace::metrics::counter_add("analysis.impact.dirty", report.dirty.len() as u64);
    report
}

/// The first dirty item visible in `thm`'s prompt: any item of a
/// transitively imported file, or a same-file item above the theorem.
fn visible_dirty_item(
    dev: &Development,
    dirty_idx: &BTreeMap<String, BTreeMap<usize, String>>,
    thm: &minicoq_vernac::TheoremInfo,
) -> Option<String> {
    for file in dev.import_closure(&thm.file) {
        if let Some(map) = dirty_idx.get(&file.name) {
            if let Some((_, origin)) = map.iter().next() {
                return Some(origin.clone());
            }
        }
    }
    if let Some(map) = dirty_idx.get(&thm.file) {
        if let Some((_, origin)) = map.range(..thm.item_index).next() {
            return Some(origin.clone());
        }
    }
    None
}

/// Every `(hallucinated name, symbol id)` collision pair of the graph, in
/// scan order: a lemma's name plus a distractor suffix that resolves to a
/// real lemma, rule, or axiom.
fn collision_candidates(graph: &DepGraph) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (_, sym) in graph.symbols() {
        if sym.kind != SymbolKind::Lemma {
            continue;
        }
        for suffix in COLLISION_SUFFIXES {
            let candidate = format!("{}{suffix}", sym.name);
            if let Some(cid) = graph.lookup(&candidate) {
                let c = graph.symbol(cid);
                if matches!(
                    c.kind,
                    SymbolKind::Lemma | SymbolKind::Rule | SymbolKind::Axiom
                ) {
                    out.push((candidate, cid));
                }
            }
        }
    }
    out
}

/// True when `name` is a hallucinated-variant spelling of a lemma the
/// edited corpus still declares (`<lemma><suffix>`): removing the symbol
/// it named changes which `apply` guesses resolve.
fn is_collision_name(name: &str, graph: &DepGraph) -> bool {
    COLLISION_SUFFIXES.iter().any(|suffix| {
        name.strip_suffix(suffix)
            .and_then(|base| graph.lookup(base))
            .is_some_and(|id| graph.symbol(id).kind == SymbolKind::Lemma)
    })
}

/// The fingerprint of one theorem's *dependency cone*: everything on the
/// corpus side that can influence its verification outcome. Two corpora
/// assigning a theorem equal cone fingerprints are interchangeable for
/// that theorem, so per-theorem cached results key on this (plus the cell
/// configuration) instead of on whole-corpus content.
///
/// The cone covers, in order: the theorem's own statement (alpha-
/// canonical) and proof; the rendered text of every prompt-visible item
/// (which determines prompt text, token counts, truncation, and the
/// visible-lemma list); the semantic fingerprints of every symbol
/// reachable from the visible items, hint targets, and collision lemmas
/// (kernel evaluation of anything the search can touch); the ordered
/// hint-database registrations in scope with their targets' statements
/// (the `auto`/`eauto` channel); and the full theorem name list (the
/// deterministic hint/eval splits hash it).
pub fn cone_fingerprint(dev: &Development, graph: &DepGraph, theorem: &str) -> Option<String> {
    cone_fingerprint_in(&ConeIndex::build(dev, graph), dev, graph, theorem)
}

/// The corpus-wide inputs every cone-fingerprint query shares: the
/// captured snapshot and the collision-candidate list. Both are O(corpus)
/// to build, so callers fingerprinting many theorems of one development
/// (`metrics::incremental`) build the index once and query it per theorem
/// instead of paying a full corpus rescan per call.
pub struct ConeIndex {
    snapshot: Snapshot,
    /// `(hallucinated name, symbol id)` pairs, in graph scan order (the
    /// order is part of the fingerprint material, so it must match what
    /// the inline scan produced).
    collisions: Vec<(String, usize)>,
}

impl ConeIndex {
    /// Captures the snapshot and scans the graph for collision pairs.
    pub fn build(dev: &Development, graph: &DepGraph) -> ConeIndex {
        ConeIndex {
            snapshot: Snapshot::capture(dev),
            collisions: collision_candidates(graph),
        }
    }
}

/// [`cone_fingerprint`] against a prebuilt [`ConeIndex`] (which must
/// describe the same development and graph).
pub fn cone_fingerprint_in(
    ix: &ConeIndex,
    dev: &Development,
    graph: &DepGraph,
    theorem: &str,
) -> Option<String> {
    let thm = dev.theorem(theorem)?;
    let snap = &ix.snapshot;
    let closure = dev.import_closure(&thm.file);
    let closure_names: BTreeSet<&str> = closure.iter().map(|f| f.name.as_str()).collect();
    let mut material = String::new();
    material.push_str("cone:v1;");
    material.push_str(&thm.name);
    material.push(';');
    material.push_str(&formula_key(&thm.stmt));
    material.push(';');
    material.push_str(&thm.proof_text);
    material.push(';');

    // Prompt-visible items, in prompt order.
    let mut roots: Vec<usize> = Vec::new();
    let push_item = |file: &str, idx: usize, material: &mut String| {
        let key = item_key(file, idx);
        material.push_str(&key);
        material.push('=');
        material.push_str(snap.items.get(&key).map(String::as_str).unwrap_or("-"));
        material.push(';');
    };
    for file in &closure {
        for idx in 0..file.items.len() {
            push_item(&file.name, idx, &mut material);
        }
    }
    for idx in 0..thm.item_index {
        push_item(&thm.file, idx, &mut material);
    }
    for (id, sym) in graph.symbols() {
        let visible = closure_names.contains(sym.file.as_str())
            || (sym.file == thm.file && sym.item_index < thm.item_index);
        if visible {
            roots.push(id);
        }
    }
    if let Some(id) = graph.lookup(&thm.name) {
        roots.push(id);
    }

    // Hint registrations in scope, plus their targets as cone roots.
    let env = dev.env_before(thm);
    material.push_str("hints:");
    for (db, targets) in env.hints.iter() {
        material.push_str(db);
        material.push('[');
        for t in targets {
            material.push_str(t);
            material.push('=');
            if let Some(l) = env.lemma(t) {
                material.push_str(&fp(formula_key(&l.stmt).as_bytes()));
            }
            material.push(',');
            if let Some(id) = graph.lookup(t) {
                roots.push(id);
            }
        }
        material.push(']');
    }
    material.push(';');

    // Collision lemmas reachable by hallucinated names.
    material.push_str("collisions:");
    for (candidate, cid) in &ix.collisions {
        material.push_str(candidate);
        material.push('=');
        material.push_str(
            snap.symbols
                .get(candidate)
                .map(String::as_str)
                .unwrap_or("-"),
        );
        material.push(';');
        roots.push(*cid);
    }

    // The semantic forward cone of everything collected above.
    let reach = graph.reachable(&roots);
    material.push_str("cone:");
    for (id, sym) in graph.symbols() {
        if reach[id] {
            material.push_str(&sym.name);
            material.push('=');
            material.push_str(
                snap.symbols
                    .get(&sym.name)
                    .map(String::as_str)
                    .unwrap_or("-"),
            );
            material.push(';');
        }
    }
    material.push_str("split:");
    for name in &snap.theorems {
        material.push_str(name);
        material.push(',');
    }
    Some(fp(material.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_key_roundtrip() {
        assert_eq!(
            split_item_key(&item_key("DirTree", 7)),
            Some(("DirTree", 7))
        );
        assert_eq!(split_item_key("noindex"), None);
    }

    #[test]
    fn hint_symbol_name_roundtrip() {
        assert_eq!(
            parse_hint_symbol_name(&hint_symbol_name("DirTree", 7)),
            Some(("DirTree", 7))
        );
        assert_eq!(parse_hint_symbol_name("dbl_0"), None);
        assert_eq!(parse_hint_symbol_name("Hint@NoIndex"), None);
    }

    #[test]
    fn fingerprints_are_stable_hex() {
        assert_eq!(fp(b"x").len(), 16);
        assert_eq!(fp(b"x"), fp(b"x"));
        assert_ne!(fp(b"x"), fp(b"y"));
    }

    #[test]
    fn whitespace_normalization() {
        assert_eq!(normalize_ws("Hint  Resolve\n  foo"), "Hint Resolve foo");
    }
}
