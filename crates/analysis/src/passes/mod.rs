//! The analyzer's passes. Each pass consumes the loaded development and/or
//! the dependency graph and appends [`Finding`](crate::report::Finding)s;
//! none of them mutates anything.

pub mod axioms;
pub mod cold;
pub mod dead;
pub mod hints;
pub mod positivity;
pub mod rewrite;

use minicoq::formula::Formula;

/// Strips the universal prefix (`forall`, sort-`forall`) off a rule or
/// lemma statement, returning the quantifier-free core.
pub(crate) fn strip_quantifiers(f: &Formula) -> &Formula {
    let mut f = f;
    loop {
        match f {
            Formula::Forall(_, _, b) | Formula::Exists(_, _, b) | Formula::ForallSort(_, b) => {
                f = b
            }
            _ => return f,
        }
    }
}

/// Decomposes a rule statement into its premises and conclusion:
/// quantifier prefixes are stripped and the implication spine unrolled, so
/// `forall x, P x -> forall y, Q y -> R x y` yields `[P x, Q y]` and
/// `R x y`.
pub(crate) fn premises_and_conclusion(f: &Formula) -> (Vec<&Formula>, &Formula) {
    let mut premises = Vec::new();
    let mut f = strip_quantifiers(f);
    while let Formula::Implies(p, q) = f {
        premises.push(p.as_ref());
        f = strip_quantifiers(q);
    }
    (premises, f)
}
