//! Cold-hint audit: hint-db entries a supplied attempt log never used.
//!
//! Hint databases accrete — entries get added for one proof and outlive
//! it. Given an attempt log (see [`proof_trace::attempts`]), a hint
//! target is **hot** when it appears as the premise argument of any
//! attempt on a proved script's path (`on_path`); a `Hint` sentence is
//! **cold** when none of its targets is hot, and gets one `cold-hint`
//! finding. `auto`/`eauto` consume hints internally without logging a
//! premise, so a cold finding is evidence the entry never *visibly*
//! contributed, not proof it is useless — hence a lint, not an error.
//!
//! Unlike the structural passes, this one only runs when a log is
//! supplied (`corpus_analyze --attempt-log`), so the default analyzer
//! output — and CI's `--check` gate — is unchanged. A log containing no
//! successful attempt at all is treated as no evidence and produces no
//! findings, rather than branding every hint cold.

use std::collections::BTreeSet;

use proof_trace::attempts::AttemptRecord;

use crate::graph::{DepGraph, SymbolKind};
use crate::report::{Code, Finding};

/// Runs the audit, appending one finding per cold `Hint` sentence.
pub fn run(graph: &DepGraph, log: &[AttemptRecord], out: &mut Vec<Finding>) {
    let hot: BTreeSet<&str> = log
        .iter()
        .filter(|r| r.on_path && !r.premise.is_empty())
        .map(|r| r.premise.as_str())
        .collect();
    if hot.is_empty() {
        return;
    }
    for (id, sym) in graph.symbols() {
        if sym.kind != SymbolKind::Hint {
            continue;
        }
        let targets: Vec<&str> = graph
            .out(id)
            .map(|t| graph.symbol(t).name.as_str())
            .collect();
        if targets.is_empty() || targets.iter().any(|t| hot.contains(t)) {
            continue;
        }
        out.push(Finding {
            code: Code::ColdHint,
            file: sym.file.clone(),
            item: sym.name.clone(),
            item_index: sym.item_index,
            line: sym.line,
            message: format!(
                "hint target(s) {} never contributed to a successful proof across {} logged \
                 attempt(s)",
                targets.join(", "),
                log.len()
            ),
        });
    }
}
