//! Dead-symbol audit: reachability from the benchmark theorems.
//!
//! Liveness roots are the benchmark theorems (or an explicit name list)
//! plus every `Hint` sentence — a hint registers its target with the
//! automation, so the target is load-bearing even when no theorem
//! statement mentions it. Everything transitively referenced from a root
//! is live; the rest is dead. Constructors, rules, and hint sentences are
//! never flagged on their own (their declaring inductive or predicate is
//! the actionable unit, and membership edges keep them in lock-step), and
//! prelude built-ins are exempt (they are the language, not the corpus).

use minicoq_vernac::loader::Development;

use crate::graph::{DepGraph, SymbolKind, PRELUDE_FILE};
use crate::report::{Code, Finding};

/// Which symbols anchor liveness.
#[derive(Debug, Clone)]
pub enum Roots {
    /// Every theorem of the loaded development (the benchmark set).
    AllTheorems,
    /// An explicit list of root symbol names.
    Names(Vec<String>),
}

/// Runs the dead-symbol audit.
pub fn run(dev: &Development, graph: &DepGraph, roots: &Roots, out: &mut Vec<Finding>) {
    let _sp = proof_trace::span("analysis", "dead");
    let mut root_ids: Vec<usize> = Vec::new();
    match roots {
        Roots::AllTheorems => {
            for t in &dev.theorems {
                if let Some(id) = graph.lookup(&t.name) {
                    root_ids.push(id);
                }
            }
        }
        Roots::Names(names) => {
            for n in names {
                if let Some(id) = graph.lookup(n) {
                    root_ids.push(id);
                }
            }
        }
    }
    for (id, sym) in graph.symbols() {
        if sym.kind == SymbolKind::Hint {
            root_ids.push(id);
        }
    }
    let live = graph.reachable(&root_ids);
    for (id, sym) in graph.symbols() {
        if live[id]
            || sym.file == PRELUDE_FILE
            || matches!(
                sym.kind,
                SymbolKind::Ctor | SymbolKind::Rule | SymbolKind::Hint
            )
        {
            continue;
        }
        out.push(Finding {
            code: Code::DeadSymbol,
            file: sym.file.clone(),
            item: sym.name.clone(),
            item_index: sym.item_index,
            line: sym.line,
            message: format!(
                "{:?} `{}` is unreachable from every benchmark theorem and hint",
                sym.kind, sym.name
            ),
        });
    }
}
