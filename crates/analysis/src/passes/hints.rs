//! Hint-loop detection: an abstract backchaining graph per hint database.
//!
//! `auto`/`eauto` backchain: to prove a goal with head `P`, they apply a
//! hint whose conclusion unifies with the goal and recurse into its
//! premises. Model that as a graph over *head symbols* — one edge
//! `conclusion-head -> premise-head` per (hint, premise atom) — and
//! classify each edge as *decreasing* when every instantiation makes the
//! premise strictly smaller than the conclusion: the premise's total
//! argument size is strictly below the conclusion's, and no variable
//! occurs more often in the premise than in the conclusion (so no
//! substitution can grow it past the conclusion). Backchaining along
//! decreasing edges always terminates; a cycle containing any
//! non-decreasing edge can resubmit a goal at least as large as the one
//! being proved, which only the fuel budget stops. One finding is emitted
//! per such cycle (strongly connected component), naming the offending
//! hints.

use std::collections::{BTreeMap, BTreeSet};

use minicoq::env::Env;
use minicoq::formula::Formula;
use minicoq::term::Term;

use crate::graph::DepGraph;
use crate::report::{Code, Finding};

use super::premises_and_conclusion;

/// Head symbol of an atomic formula; equalities all share the `=` head.
fn head_of(f: &Formula) -> Option<(&str, Vec<&Term>)> {
    match f {
        Formula::Pred(p, _, args) => Some((p.as_str(), args.iter().collect())),
        Formula::Eq(_, a, b) => Some(("=", vec![a, b])),
        _ => None,
    }
}

/// Collects the atomic sub-formulas of a premise (the goals backchaining
/// may recurse into). Conjunctions, disjunctions and nested implications
/// are all walked: an atom anywhere inside the premise can become a
/// subgoal after destruction.
fn premise_atoms<'a>(f: &'a Formula, out: &mut Vec<(&'a str, Vec<&'a Term>)>) {
    match f {
        Formula::Pred(..) | Formula::Eq(..) => {
            if let Some(h) = head_of(f) {
                out.push(h);
            }
        }
        Formula::True | Formula::False => {}
        Formula::Not(a) => premise_atoms(a, out),
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) | Formula::Iff(a, b) => {
            premise_atoms(a, out);
            premise_atoms(b, out);
        }
        Formula::Forall(_, _, b) | Formula::Exists(_, _, b) | Formula::ForallSort(_, b) => {
            premise_atoms(b, out)
        }
        Formula::FMatch(_, arms) => {
            for (_, rhs) in arms {
                premise_atoms(rhs, out);
            }
        }
    }
}

fn term_size(t: &Term) -> usize {
    match t {
        Term::Var(_) | Term::Meta(_) => 1,
        Term::App(_, args) => 1 + args.iter().map(term_size).sum::<usize>(),
        Term::Match(s, arms) => {
            1 + term_size(s) + arms.iter().map(|(_, r)| term_size(r)).sum::<usize>()
        }
    }
}

fn var_counts<'a>(args: &[&'a Term], out: &mut BTreeMap<&'a str, usize>) {
    for t in args {
        match t {
            Term::Var(v) => *out.entry(v.as_str()).or_insert(0) += 1,
            Term::Meta(_) => {}
            Term::App(_, inner) => {
                let inner: Vec<&Term> = inner.iter().collect();
                var_counts(&inner, out);
            }
            Term::Match(s, arms) => {
                var_counts(&[s.as_ref()], out);
                let rhs: Vec<&Term> = arms.iter().map(|(_, r)| r).collect();
                var_counts(&rhs, out);
            }
        }
    }
}

/// True when backchaining from the conclusion to this premise strictly
/// shrinks the goal under every substitution.
fn decreasing(prem_args: &[&Term], concl_args: &[&Term]) -> bool {
    let psize: usize = prem_args.iter().map(|t| term_size(t)).sum();
    let csize: usize = concl_args.iter().map(|t| term_size(t)).sum();
    if psize >= csize {
        return false;
    }
    let mut pc = BTreeMap::new();
    let mut cc = BTreeMap::new();
    var_counts(prem_args, &mut pc);
    var_counts(concl_args, &mut cc);
    pc.iter()
        .all(|(v, n)| cc.get(v).copied().unwrap_or(0) >= *n)
}

/// One abstract backchaining edge.
struct Edge {
    from: String,
    to: String,
    hint: String,
    decreasing: bool,
}

/// Runs hint-loop detection over every hint database of `env`.
pub fn run(env: &Env, graph: &DepGraph, out: &mut Vec<Finding>) {
    let _sp = proof_trace::span("analysis", "hints");
    for (db, hints) in env.hints.iter() {
        let mut edges: Vec<Edge> = Vec::new();
        let mut nodes: BTreeSet<String> = BTreeSet::new();
        for hint in hints {
            let Some(stmt) = env.rule_or_lemma(hint) else {
                continue; // unresolved hints are the graph layer's finding
            };
            let (premises, conclusion) = premises_and_conclusion(&stmt);
            let Some((chead, cargs)) = head_of(conclusion) else {
                continue; // auto cannot backchain on a non-atomic conclusion
            };
            nodes.insert(chead.to_string());
            for p in premises {
                let mut atoms = Vec::new();
                premise_atoms(p, &mut atoms);
                for (phead, pargs) in atoms {
                    nodes.insert(phead.to_string());
                    edges.push(Edge {
                        from: chead.to_string(),
                        to: phead.to_string(),
                        hint: hint.clone(),
                        decreasing: decreasing(&pargs, &cargs),
                    });
                }
            }
        }
        report_cycles(db, &nodes, &edges, graph, out);
    }
}

/// Finds strongly connected components of the backchaining graph and
/// emits one [`Code::HintLoop`] finding per cyclic component containing a
/// non-decreasing edge.
fn report_cycles(
    db: &str,
    nodes: &BTreeSet<String>,
    edges: &[Edge],
    graph: &DepGraph,
    out: &mut Vec<Finding>,
) {
    let index: BTreeMap<&str, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let n = nodes.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in edges {
        adj[index[e.from.as_str()]].push(index[e.to.as_str()]);
    }
    let scc = scc_ids(n, &adj);
    let mut scc_sizes: BTreeMap<usize, usize> = BTreeMap::new();
    for &c in &scc {
        *scc_sizes.entry(c).or_insert(0) += 1;
    }
    // Group offending (non-decreasing, intra-component, cyclic) edges per
    // component.
    let mut offending: BTreeMap<usize, Vec<&Edge>> = BTreeMap::new();
    for e in edges {
        let (f, t) = (index[e.from.as_str()], index[e.to.as_str()]);
        if scc[f] != scc[t] || e.decreasing {
            continue;
        }
        let cyclic = f == t || scc_sizes[&scc[f]] > 1;
        if cyclic {
            offending.entry(scc[f]).or_default().push(e);
        }
    }
    for (_, comp_edges) in offending {
        let mut hints: Vec<&str> = comp_edges.iter().map(|e| e.hint.as_str()).collect();
        hints.sort_unstable();
        hints.dedup();
        let mut heads: Vec<&str> = comp_edges
            .iter()
            .flat_map(|e| [e.from.as_str(), e.to.as_str()])
            .collect();
        heads.sort_unstable();
        heads.dedup();
        // Anchor the finding at the first offending hint's declaration.
        let (file, item_index, line) = hints
            .first()
            .and_then(|h| graph.lookup(h))
            .map(|id| {
                let sym = graph.symbol(id);
                (sym.file.clone(), sym.item_index, sym.line)
            })
            .unwrap_or_else(|| (String::new(), 0, 0));
        out.push(Finding {
            code: Code::HintLoop,
            file,
            item: hints.first().unwrap_or(&"").to_string(),
            item_index,
            line,
            message: format!(
                "hint db `{db}`: backchaining cycle over {{{}}} via non-decreasing hint(s) {} \
                 — auto/eauto can diverge until fuel runs out",
                heads.join(", "),
                hints.join(", "),
            ),
        });
    }
}

/// Kosaraju strongly-connected components; returns a component id per node.
fn scc_ids(n: usize, adj: &[Vec<usize>]) -> Vec<usize> {
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for start in 0..n {
        if seen[start] {
            continue;
        }
        // Iterative post-order DFS.
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        seen[start] = true;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            if *i < adj[v].len() {
                let next = adj[v][*i];
                *i += 1;
                if !seen[next] {
                    seen[next] = true;
                    stack.push((next, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }
    let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, outs) in adj.iter().enumerate() {
        for &w in outs {
            radj[w].push(v);
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut c = 0;
    for &v in order.iter().rev() {
        if comp[v] != usize::MAX {
            continue;
        }
        let mut stack = vec![v];
        comp[v] = c;
        while let Some(x) = stack.pop() {
            for &w in &radj[x] {
                if comp[w] == usize::MAX {
                    comp[w] = c;
                    stack.push(w);
                }
            }
        }
        c += 1;
    }
    comp
}
