//! Rewrite-orientation lint: detect equational lemma pairs that are exact
//! reverses of each other.
//!
//! When both `l = r` and `r = l` (up to renaming of their universally
//! quantified variables) are registered, a rewriting loop can ping-pong
//! between the two forever; only one orientation should exist, with the
//! other derived by `symmetry` at use sites. Detection canonicalizes each
//! unconditional equation by renaming term and sort variables in first-
//! occurrence order, then matches one lemma's forward key against
//! another's reversed key. A lemma that is its *own* reverse (e.g.
//! commutativity, `x + y = y + x`) is deliberately skipped: that shape is
//! standard and loop-avoidance is the rewriter's job, not the corpus's.

use std::collections::BTreeMap;

use minicoq::env::Env;
use minicoq::formula::Formula;
use minicoq::sort::Sort;
use minicoq::term::Term;

use crate::graph::DepGraph;
use crate::report::{Code, Finding};

use super::strip_quantifiers;

/// Variable-renaming state shared across the two sides of one key.
#[derive(Default)]
struct Canon {
    terms: BTreeMap<String, String>,
    sorts: BTreeMap<String, String>,
}

impl Canon {
    fn term_var(&mut self, v: &str) -> String {
        let n = self.terms.len();
        self.terms
            .entry(v.to_string())
            .or_insert_with(|| format!("v{n}"))
            .clone()
    }

    fn sort_var(&mut self, v: &str) -> String {
        let n = self.sorts.len();
        self.sorts
            .entry(v.to_string())
            .or_insert_with(|| format!("s{n}"))
            .clone()
    }

    fn sort(&mut self, s: &Sort) -> Sort {
        match s {
            Sort::Atom(n) => Sort::Atom(n.clone()),
            Sort::Var(v) => Sort::Var(self.sort_var(v)),
            Sort::Meta(m) => Sort::Meta(*m),
            Sort::App(n, args) => Sort::App(n.clone(), args.iter().map(|a| self.sort(a)).collect()),
        }
    }

    fn term(&mut self, t: &Term) -> Term {
        match t {
            Term::Var(v) => Term::Var(self.term_var(v)),
            Term::Meta(m) => Term::Meta(*m),
            Term::App(f, args) => Term::App(f.clone(), args.iter().map(|a| self.term(a)).collect()),
            // `match` on the rewrite side is rare; keep it opaque rather
            // than canonicalizing pattern binders.
            Term::Match(..) => t.clone(),
        }
    }
}

/// Canonical key of the equation `l = r : s`, renaming variables in
/// first-occurrence order of the (sort, l, r) traversal.
fn eq_key(sort: &Sort, l: &Term, r: &Term) -> String {
    let mut c = Canon::default();
    let s = c.sort(sort);
    let cl = c.term(l);
    let cr = c.term(r);
    format!("{s:?} |- {cl:?} = {cr:?}")
}

/// Runs the rewrite-orientation lint over every unconditional equational
/// lemma of `env`.
pub fn run(env: &Env, graph: &DepGraph, out: &mut Vec<Finding>) {
    let _sp = proof_trace::span("analysis", "rewrite");
    // name -> (forward key, reverse key), in declaration order.
    let mut keys: Vec<(&str, String, String)> = Vec::new();
    for lemma in env.lemmas.iter() {
        if let Formula::Eq(s, l, r) = strip_quantifiers(&lemma.stmt) {
            keys.push((lemma.name.as_str(), eq_key(s, l, r), eq_key(s, r, l)));
        }
    }
    let by_fwd: BTreeMap<&str, &str> = keys.iter().map(|(n, f, _)| (f.as_str(), *n)).collect();
    for (name, fwd, rev) in &keys {
        // Skip self-reverse shapes (commutativity, `x + y = y + x`) by
        // key, not by name: a copy of a self-reverse equation in another
        // module is a duplicate, not an opposite orientation.
        if fwd == rev {
            continue;
        }
        let Some(&other) = by_fwd.get(rev.as_str()) else {
            continue;
        };
        // Report each pair once, from its lexicographically first member.
        if other == *name || *name > other {
            continue;
        }
        let (file, item_index, line) = graph
            .lookup(name)
            .map(|id| {
                let sym = graph.symbol(id);
                (sym.file.clone(), sym.item_index, sym.line)
            })
            .unwrap_or_else(|| (String::new(), 0, 0));
        out.push(Finding {
            code: Code::RewritePingPong,
            file,
            item: name.to_string(),
            item_index,
            line,
            message: format!(
                "equational lemmas `{name}` and `{other}` are exact reverses: rewriting with \
                 both can ping-pong forever; keep one orientation"
            ),
        });
    }
}
