//! Strict-positivity (stratification) check for inductive predicates.
//!
//! A predicate — or any member of its mutual-recursion group — may appear
//! in its own introduction rules only in strictly positive positions:
//! as a premise atom, or nested to the *right* of implications inside a
//! premise. An occurrence to the left of a nested implication (or under
//! `~`/`<->`, which hide a left-of-implication occurrence) makes the
//! intended least fixed point non-monotone, so the predicate has no
//! well-defined inductive semantics and `induction` on it is unsound.
//! Groups are the strongly connected components of the predicate
//! reference graph, so `with`-chained mutual predicates are checked as a
//! unit. One finding is emitted per offending predicate.

use std::collections::{BTreeMap, BTreeSet};

use minicoq::env::{Env, PredDef};
use minicoq::formula::Formula;

use crate::graph::{formula_refs, DepGraph};
use crate::report::{Code, Finding};

use super::premises_and_conclusion;

/// True when `f` mentions any predicate in `group`.
fn mentions_group(f: &Formula, group: &BTreeSet<&str>) -> bool {
    let mut refs = BTreeSet::new();
    formula_refs(f, &mut refs);
    refs.iter().any(|r| group.contains(r.as_str()))
}

/// Checks that every occurrence of a group predicate inside `f` (a rule
/// premise) is strictly positive. Returns the first violating description.
fn check_strict(f: &Formula, group: &BTreeSet<&str>) -> Option<String> {
    match f {
        Formula::True | Formula::False | Formula::Eq(..) | Formula::Pred(..) => None,
        Formula::Not(a) => {
            if mentions_group(a, group) {
                Some("occurs under negation".to_string())
            } else {
                None
            }
        }
        Formula::Iff(a, b) => {
            if mentions_group(a, group) || mentions_group(b, group) {
                Some("occurs under `<->` (a hidden left-of-implication position)".to_string())
            } else {
                None
            }
        }
        Formula::Implies(p, q) => {
            if mentions_group(p, group) {
                Some("occurs left of a nested implication".to_string())
            } else {
                check_strict(q, group)
            }
        }
        Formula::And(a, b) | Formula::Or(a, b) => {
            check_strict(a, group).or_else(|| check_strict(b, group))
        }
        Formula::Forall(_, _, b) | Formula::Exists(_, _, b) | Formula::ForallSort(_, b) => {
            check_strict(b, group)
        }
        Formula::FMatch(_, arms) => arms.iter().find_map(|(_, rhs)| check_strict(rhs, group)),
    }
}

/// Runs the positivity check over every inductive predicate of `env`.
pub fn run(env: &Env, graph: &DepGraph, out: &mut Vec<Finding>) {
    let _sp = proof_trace::span("analysis", "positivity");
    // Reference graph between inductive predicates (rules may reference
    // other predicates; `with`-mates reference each other).
    let preds: Vec<(&str, &minicoq::env::IndPred)> = env
        .preds
        .iter()
        .filter_map(|(n, pd)| match pd {
            PredDef::Inductive(ip) => Some((n.as_str(), ip)),
            PredDef::Defined(_) => None,
        })
        .collect();
    let index: BTreeMap<&str, usize> = preds
        .iter()
        .enumerate()
        .map(|(i, (n, _))| (*n, i))
        .collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); preds.len()];
    for (i, (_, ip)) in preds.iter().enumerate() {
        let mut refs = BTreeSet::new();
        for (_, stmt) in &ip.rules {
            formula_refs(stmt, &mut refs);
        }
        for r in &refs {
            if let Some(&j) = index.get(r.as_str()) {
                adj[i].push(j);
            }
        }
    }
    let comp = scc_ids(preds.len(), &adj);
    // Check each predicate's rules against its own mutual group.
    for (i, (name, ip)) in preds.iter().enumerate() {
        let group: BTreeSet<&str> = preds
            .iter()
            .enumerate()
            .filter(|(j, _)| comp[*j] == comp[i])
            .map(|(_, (n, _))| *n)
            .collect();
        let mut violation: Option<(String, String)> = None;
        'rules: for (rule_name, stmt) in &ip.rules {
            let (premises, _) = premises_and_conclusion(stmt);
            for p in premises {
                if let Some(why) = check_strict(p, &group) {
                    violation = Some((rule_name.to_string(), why));
                    break 'rules;
                }
            }
        }
        if let Some((rule, why)) = violation {
            let (file, item_index, line) = graph
                .lookup(name)
                .map(|id| {
                    let sym = graph.symbol(id);
                    (sym.file.clone(), sym.item_index, sym.line)
                })
                .unwrap_or_else(|| (String::new(), 0, 0));
            out.push(Finding {
                code: Code::NonPositive,
                file,
                item: name.to_string(),
                item_index,
                line,
                message: format!(
                    "inductive predicate `{name}` is not strictly positive: in rule `{rule}` \
                     the group {{{}}} {why}",
                    group.iter().copied().collect::<Vec<_>>().join(", "),
                ),
            });
        }
    }
}

/// Kosaraju strongly-connected components (small n; clarity over speed).
fn scc_ids(n: usize, adj: &[Vec<usize>]) -> Vec<usize> {
    fn post(v: usize, adj: &[Vec<usize>], seen: &mut [bool], order: &mut Vec<usize>) {
        seen[v] = true;
        for &w in &adj[v] {
            if !seen[w] {
                post(w, adj, seen, order);
            }
        }
        order.push(v);
    }
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for v in 0..n {
        if !seen[v] {
            post(v, adj, &mut seen, &mut order);
        }
    }
    let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, outs) in adj.iter().enumerate() {
        for &w in outs {
            radj[w].push(v);
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut c = 0;
    for &v in order.iter().rev() {
        if comp[v] != usize::MAX {
            continue;
        }
        let mut stack = vec![v];
        comp[v] = c;
        while let Some(x) = stack.pop() {
            for &w in &radj[x] {
                if comp[w] == usize::MAX {
                    comp[w] = c;
                    stack.push(w);
                }
            }
        }
        c += 1;
    }
    comp
}
