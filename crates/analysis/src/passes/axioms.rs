//! Axiom/admit audit: every unproved assumption in the corpus.
//!
//! `Axiom` statements and `Admitted.` lemmas both enter the environment
//! on trust; a benchmark that silently depends on them measures prompt
//! compliance, not verification. This pass flags each one so the corpus
//! stays assumption-free (or at least assumption-explicit).

use minicoq_vernac::item::ItemKind;
use minicoq_vernac::loader::Development;

use crate::graph::DepGraph;
use crate::report::{Code, Finding};

/// Runs the axiom/admit audit over every item of the development.
pub fn run(dev: &Development, graph: &DepGraph, out: &mut Vec<Finding>) {
    let _sp = proof_trace::span("analysis", "axioms");
    for file in &dev.files {
        for (idx, item) in file.items.iter().enumerate() {
            let code = if item.kind == ItemKind::Axiom {
                Code::Axiom
            } else if item.admitted {
                Code::Admitted
            } else {
                continue;
            };
            let line = graph
                .lookup(&item.name)
                .map(|id| graph.symbol(id).line)
                .unwrap_or(0);
            let message = match code {
                Code::Axiom => format!("`{}` is assumed as an axiom", item.name),
                _ => format!("lemma `{}` is Admitted without a checked proof", item.name),
            };
            out.push(Finding {
                code,
                file: file.name.clone(),
                item: item.name.clone(),
                item_index: idx,
                line,
                message,
            });
        }
    }
}
