//! The whole-development symbol table and dependency graph.
//!
//! Nodes are every named object of a loaded development plus the built-in
//! prelude: sorts, inductive datatypes and their constructors, functions,
//! defined and inductive predicates and their rules, lemmas, axioms, and
//! hint sentences (which get synthetic names). Edges point from a symbol
//! to every symbol its elaborated statement or body references; membership
//! edges between an inductive and its constructors (and a predicate and
//! its rules) run both ways, so reachability through either keeps the
//! whole declaration alive.
//!
//! References are extracted from the *elaborated* kernel objects, not from
//! source tokens, so binders never alias globals. The one exception is
//! proof scripts, which the kernel does not retain: their identifier
//! tokens are matched against the symbol table, adding an edge for every
//! token that resolves (a conservative over-approximation — a proof-local
//! name that shadows a global adds a spurious edge, which can only make a
//! dead symbol look live, never the reverse).

use std::collections::{BTreeMap, BTreeSet};

use minicoq::env::{Env, PredDef};
use minicoq::formula::Formula;
use minicoq::sort::Sort;
use minicoq::term::{Pat, Term};
use minicoq_vernac::item::ItemKind;
use minicoq_vernac::lint::hint_targets;
use minicoq_vernac::loader::Development;

/// The pseudo-file prelude symbols are attributed to.
pub const PRELUDE_FILE: &str = "<prelude>";

/// What a graph node denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolKind {
    /// An opaque sort or sort constructor.
    Sort,
    /// An inductive datatype.
    Inductive,
    /// A datatype constructor.
    Ctor,
    /// A `Definition`/`Fixpoint` returning a sort.
    Function,
    /// A predicate defined by a formula.
    DefinedPred,
    /// An inductively defined predicate.
    IndPred,
    /// An introduction rule of an inductive predicate.
    Rule,
    /// A proved (or admitted) lemma.
    Lemma,
    /// An `Axiom` statement.
    Axiom,
    /// A `Hint` sentence (synthetic node; always a liveness root).
    Hint,
}

/// One node of the dependency graph.
#[derive(Debug, Clone)]
pub struct Symbol {
    /// Unique name. Hint sentences get synthetic `Hint@File#idx` names.
    pub name: String,
    /// Node kind.
    pub kind: SymbolKind,
    /// Module the symbol is declared in ([`PRELUDE_FILE`] for built-ins).
    pub file: String,
    /// Index of the declaring item within its file (0 for prelude).
    pub item_index: usize,
    /// 1-based source line of the declaring item (0 for prelude).
    pub line: usize,
}

/// A reference that failed to resolve against the symbol table.
#[derive(Debug, Clone)]
pub struct UnresolvedRef {
    /// Module of the referencing item.
    pub file: String,
    /// Name of the referencing item (synthetic for hints).
    pub item: String,
    /// Index of the referencing item.
    pub item_index: usize,
    /// Source line of the referencing item.
    pub line: usize,
    /// The name that did not resolve.
    pub name: String,
}

/// The dependency graph over a loaded development.
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    symbols: Vec<Symbol>,
    by_name: BTreeMap<String, usize>,
    out: Vec<BTreeSet<usize>>,
    edge_count: usize,
    /// References that resolved to no symbol (graph-closure violations).
    pub unresolved: Vec<UnresolvedRef>,
}

impl DepGraph {
    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True when the graph has no symbols.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The symbol with the given id.
    pub fn symbol(&self, id: usize) -> &Symbol {
        &self.symbols[id]
    }

    /// All symbols with their ids.
    pub fn symbols(&self) -> impl Iterator<Item = (usize, &Symbol)> {
        self.symbols.iter().enumerate()
    }

    /// Resolves a name to a symbol id.
    pub fn lookup(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Outgoing reference edges of a symbol.
    pub fn out(&self, id: usize) -> impl Iterator<Item = usize> + '_ {
        self.out[id].iter().copied()
    }

    /// The set of symbols reachable from `roots` along reference edges
    /// (including the roots themselves), as a membership vector.
    pub fn reachable(&self, roots: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.symbols.len()];
        let mut stack: Vec<usize> = Vec::new();
        for &r in roots {
            if !seen[r] {
                seen[r] = true;
                stack.push(r);
            }
        }
        while let Some(id) = stack.pop() {
            for next in &self.out[id] {
                if !seen[*next] {
                    seen[*next] = true;
                    stack.push(*next);
                }
            }
        }
        seen
    }

    fn add_symbol(&mut self, sym: Symbol) -> usize {
        // First declaration wins; the lint layer reports cross-namespace
        // name collisions separately.
        if let Some(&id) = self.by_name.get(&sym.name) {
            return id;
        }
        let id = self.symbols.len();
        self.by_name.insert(sym.name.clone(), id);
        self.symbols.push(sym);
        self.out.push(BTreeSet::new());
        id
    }

    fn add_edge(&mut self, from: usize, to: usize) {
        if self.out[from].insert(to) {
            self.edge_count += 1;
        }
    }

    /// Builds the graph for a loaded development. `sources` maps module
    /// names to their source text (used only to turn item byte offsets
    /// into line numbers); modules missing from it get line 0.
    pub fn build(dev: &Development, sources: &[(String, String)]) -> DepGraph {
        let _sp = proof_trace::span("analysis", "graph");
        let src: BTreeMap<&str, &str> = sources
            .iter()
            .map(|(n, t)| (n.as_str(), t.as_str()))
            .collect();
        let mut g = DepGraph::default();
        let prelude = Env::with_prelude();
        g.add_env_symbols(&prelude);
        // Phase 1: declare every file symbol so forward references inside
        // mutual groups (and hints ahead of us in an unrelated file) all
        // resolve during phase 2.
        for file in &dev.files {
            let text = src.get(file.name.as_str()).copied().unwrap_or("");
            for (idx, item) in file.items.iter().enumerate() {
                g.declare_item(dev, &file.name, idx, item, line_of(text, item.start));
            }
        }
        // Phase 2: reference edges.
        for file in &dev.files {
            let text = src.get(file.name.as_str()).copied().unwrap_or("");
            for (idx, item) in file.items.iter().enumerate() {
                g.link_item(dev, &file.name, idx, item, line_of(text, item.start));
            }
        }
        g
    }

    /// Declares the prelude's built-ins as symbols (with membership edges;
    /// their own bodies only reference other built-ins, which never affects
    /// file-level reachability, so deeper prelude edges are skipped).
    fn add_env_symbols(&mut self, env: &Env) {
        let at = |name: &str, kind| Symbol {
            name: name.to_string(),
            kind,
            file: PRELUDE_FILE.to_string(),
            item_index: 0,
            line: 0,
        };
        for s in env.sorts.iter() {
            self.add_symbol(at(s, SymbolKind::Sort));
        }
        for s in env.sort_ctors.keys() {
            self.add_symbol(at(s, SymbolKind::Sort));
        }
        for (n, ind) in env.inductives.iter() {
            let ind_id = self.add_symbol(at(n, SymbolKind::Inductive));
            for c in &ind.ctors {
                let cid = self.add_symbol(at(&c.name, SymbolKind::Ctor));
                self.add_edge(ind_id, cid);
                self.add_edge(cid, ind_id);
            }
        }
        for n in env.funcs.keys() {
            self.add_symbol(at(n, SymbolKind::Function));
        }
        for (n, pd) in env.preds.iter() {
            match pd {
                PredDef::Defined(_) => {
                    self.add_symbol(at(n, SymbolKind::DefinedPred));
                }
                PredDef::Inductive(ip) => {
                    let pid = self.add_symbol(at(n, SymbolKind::IndPred));
                    for (rn, _) in &ip.rules {
                        let rid = self.add_symbol(at(rn, SymbolKind::Rule));
                        self.add_edge(pid, rid);
                        self.add_edge(rid, pid);
                    }
                }
            }
        }
        for l in env.lemmas.iter() {
            self.add_symbol(at(&l.name, SymbolKind::Lemma));
        }
    }

    fn declare_item(
        &mut self,
        dev: &Development,
        file: &str,
        idx: usize,
        item: &minicoq_vernac::item::Item,
        line: usize,
    ) {
        let sym = |name: &str, kind| Symbol {
            name: name.to_string(),
            kind,
            file: file.to_string(),
            item_index: idx,
            line,
        };
        match item.kind {
            ItemKind::Import => {}
            ItemKind::SortDecl => {
                self.add_symbol(sym(&item.name, SymbolKind::Sort));
            }
            ItemKind::Inductive => {
                for member in group_members(dev, &item.text, &item.name) {
                    if let Some(ind) = dev.env.inductives.get(member.as_str()) {
                        let ind_id = self.add_symbol(sym(&member, SymbolKind::Inductive));
                        for c in &ind.ctors {
                            let cid = self.add_symbol(sym(&c.name, SymbolKind::Ctor));
                            self.add_edge(ind_id, cid);
                            self.add_edge(cid, ind_id);
                        }
                    } else if let Some(PredDef::Inductive(ip)) = dev.env.preds.get(member.as_str())
                    {
                        let pid = self.add_symbol(sym(&member, SymbolKind::IndPred));
                        for (rn, _) in &ip.rules {
                            let rid = self.add_symbol(sym(rn, SymbolKind::Rule));
                            self.add_edge(pid, rid);
                            self.add_edge(rid, pid);
                        }
                    }
                }
            }
            ItemKind::Definition | ItemKind::Fixpoint => {
                if dev.env.funcs.contains_key(item.name.as_str()) {
                    self.add_symbol(sym(&item.name, SymbolKind::Function));
                } else if dev.env.preds.contains_key(item.name.as_str()) {
                    self.add_symbol(sym(&item.name, SymbolKind::DefinedPred));
                }
            }
            ItemKind::Lemma => {
                self.add_symbol(sym(&item.name, SymbolKind::Lemma));
            }
            ItemKind::Axiom => {
                self.add_symbol(sym(&item.name, SymbolKind::Axiom));
            }
            ItemKind::Hint => {
                self.add_symbol(sym(&hint_symbol_name(file, idx), SymbolKind::Hint));
            }
        }
    }

    fn link_item(
        &mut self,
        dev: &Development,
        file: &str,
        idx: usize,
        item: &minicoq_vernac::item::Item,
        line: usize,
    ) {
        match item.kind {
            ItemKind::Import | ItemKind::SortDecl => {}
            ItemKind::Inductive => {
                for member in group_members(dev, &item.text, &item.name) {
                    if let Some(ind) = dev.env.inductives.get(member.as_str()) {
                        let mut refs = BTreeSet::new();
                        for c in &ind.ctors {
                            for s in &c.args {
                                sort_refs(s, &mut refs);
                            }
                        }
                        self.link_refs(&member, file, idx, line, &refs);
                    } else if let Some(PredDef::Inductive(ip)) = dev.env.preds.get(member.as_str())
                    {
                        for (rn, stmt) in &ip.rules {
                            let mut refs = BTreeSet::new();
                            formula_refs(stmt, &mut refs);
                            for s in &ip.arg_sorts {
                                sort_refs(s, &mut refs);
                            }
                            self.link_refs(rn, file, idx, line, &refs);
                        }
                    }
                }
            }
            ItemKind::Definition | ItemKind::Fixpoint => {
                let mut refs = BTreeSet::new();
                if let Some(f) = dev.env.funcs.get(item.name.as_str()) {
                    term_refs(&f.body, &mut refs);
                    sort_refs(&f.ret, &mut refs);
                    for (_, s) in &f.params {
                        sort_refs(s, &mut refs);
                    }
                } else if let Some(PredDef::Defined(dp)) = dev.env.preds.get(item.name.as_str()) {
                    formula_refs(&dp.body, &mut refs);
                    for (_, s) in &dp.params {
                        sort_refs(s, &mut refs);
                    }
                }
                // A recursive body references its own name; self-edges say
                // nothing about reachability, so drop them.
                refs.remove(item.name.as_str());
                self.link_refs(&item.name, file, idx, line, &refs);
            }
            ItemKind::Lemma | ItemKind::Axiom => {
                let mut refs = BTreeSet::new();
                if item.kind == ItemKind::Lemma {
                    if let Some(thm) = dev
                        .theorems
                        .iter()
                        .find(|t| t.file == file && t.item_index == idx)
                    {
                        formula_refs(&thm.stmt, &mut refs);
                    }
                } else if let Some(l) = dev.env.lemma(&item.name) {
                    formula_refs(&l.stmt, &mut refs);
                }
                self.link_refs(&item.name, file, idx, line, &refs);
                // Proof scripts are unelaborated text: resolve their tokens
                // against the symbol table, ignoring the ones that don't
                // resolve (tactic names, hypothesis names, bullets).
                if let Some(proof) = &item.proof {
                    let Some(&from) = self.by_name.get(item.name.as_str()) else {
                        return;
                    };
                    let token_ids: Vec<usize> = ident_tokens(proof)
                        .filter_map(|t| self.by_name.get(t).copied())
                        .collect();
                    for to in token_ids {
                        if to != from {
                            self.add_edge(from, to);
                        }
                    }
                }
            }
            ItemKind::Hint => {
                let hint_name = hint_symbol_name(file, idx);
                let Some((class, names)) = hint_targets(&item.text) else {
                    return;
                };
                let refs: BTreeSet<String> = names.into_iter().collect();
                // `Hint Constructors p` references the predicate; `Hint
                // Resolve l` references the lemma or rule directly. Either
                // way the targets are plain names against the table.
                let _ = class;
                self.link_refs(&hint_name, file, idx, line, &refs);
            }
        }
    }

    /// Adds an edge from `item` to every resolvable name in `refs`,
    /// recording the rest as unresolved references.
    fn link_refs(
        &mut self,
        item: &str,
        file: &str,
        idx: usize,
        line: usize,
        refs: &BTreeSet<String>,
    ) {
        let Some(&from) = self.by_name.get(item) else {
            return;
        };
        for r in refs {
            match self.by_name.get(r.as_str()) {
                Some(&to) => {
                    if to != from {
                        self.add_edge(from, to);
                    }
                }
                None => self.unresolved.push(UnresolvedRef {
                    file: file.to_string(),
                    item: item.to_string(),
                    item_index: idx,
                    line,
                    name: r.clone(),
                }),
            }
        }
    }
}

/// The synthetic symbol name of the hint item at `file`/`idx`.
pub fn hint_symbol_name(file: &str, idx: usize) -> String {
    format!("Hint@{file}#{idx}")
}

/// Inverse of [`hint_symbol_name`]: the `(file, item index)` a synthetic
/// hint symbol name encodes, or `None` for ordinary symbol names.
pub fn parse_hint_symbol_name(name: &str) -> Option<(&str, usize)> {
    let (file, idx) = name.strip_prefix("Hint@")?.rsplit_once('#')?;
    Some((file, idx.parse().ok()?))
}

/// 1-based line number of byte offset `start` in `text`.
fn line_of(text: &str, start: usize) -> usize {
    if text.is_empty() {
        return 0;
    }
    let end = start.min(text.len());
    1 + text.as_bytes()[..end]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
}

/// The member names an `Inductive` item declares: the head name plus every
/// `with`-chained member. `with` also appears inside `match` expressions,
/// so candidate tokens are filtered against the elaborated environment.
fn group_members(dev: &Development, text: &str, first: &str) -> Vec<String> {
    let mut out = vec![first.to_string()];
    let toks: Vec<&str> = ident_tokens(text).collect();
    for w in toks.windows(2) {
        if w[0] == "with"
            && w[1] != first
            && (dev.env.inductives.contains_key(w[1]) || dev.env.preds.contains_key(w[1]))
            && !out.iter().any(|m| m == w[1])
        {
            out.push(w[1].to_string());
        }
    }
    out
}

/// The identifier tokens of a source fragment.
fn ident_tokens(s: &str) -> impl Iterator<Item = &str> {
    s.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|t| !t.is_empty())
}

/// Collects every declared name a sort references.
pub fn sort_refs(s: &Sort, out: &mut BTreeSet<String>) {
    match s {
        Sort::Atom(n) => {
            out.insert(n.clone());
        }
        Sort::Var(_) | Sort::Meta(_) => {}
        Sort::App(n, args) => {
            out.insert(n.clone());
            for a in args {
                sort_refs(a, out);
            }
        }
    }
}

/// Collects every declared name a term references (variables and pattern
/// binders excluded; constructor patterns included).
pub fn term_refs(t: &Term, out: &mut BTreeSet<String>) {
    match t {
        Term::Var(_) | Term::Meta(_) => {}
        Term::App(f, args) => {
            out.insert(f.clone());
            for a in args {
                term_refs(a, out);
            }
        }
        Term::Match(scrut, arms) => {
            term_refs(scrut, out);
            for (pat, rhs) in arms {
                if let Pat::Ctor(c, _) = pat {
                    out.insert(c.clone());
                }
                term_refs(rhs, out);
            }
        }
    }
}

/// Collects every declared name a formula references.
pub fn formula_refs(f: &Formula, out: &mut BTreeSet<String>) {
    match f {
        Formula::True | Formula::False => {}
        Formula::Eq(s, a, b) => {
            sort_refs(s, out);
            term_refs(a, out);
            term_refs(b, out);
        }
        Formula::Pred(p, sorts, args) => {
            out.insert(p.clone());
            for s in sorts {
                sort_refs(s, out);
            }
            for a in args {
                term_refs(a, out);
            }
        }
        Formula::Not(a) => formula_refs(a, out),
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) | Formula::Iff(a, b) => {
            formula_refs(a, out);
            formula_refs(b, out);
        }
        Formula::Forall(_, s, b) | Formula::Exists(_, s, b) => {
            sort_refs(s, out);
            formula_refs(b, out);
        }
        Formula::ForallSort(_, b) => formula_refs(b, out),
        Formula::FMatch(scrut, arms) => {
            term_refs(scrut, out);
            for (pat, rhs) in arms {
                if let Pat::Ctor(c, _) = pat {
                    out.insert(c.clone());
                }
                formula_refs(rhs, out);
            }
        }
    }
}
