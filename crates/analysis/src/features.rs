//! Deterministic feature extraction for attempt-mined premise ranking.
//!
//! Every (theorem, premise) pair — and, more generally, every (theorem,
//! tactic) pair — maps to a fixed-width vector of small integer slots
//! computed from the environment's symbol table, the undirected reference
//! graph (shared with [`crate::premise`]), and content fingerprints of
//! premise statements (the env-side analogue of the per-symbol semantic
//! fingerprints used by change-impact analysis). The encoding is pinned
//! by golden tests: any change to slot layout, bucketing, or hashing MUST
//! bump [`FEATURES_SCHEMA`], because serialized attempt logs and model
//! artifacts reference the schema id and silently mixing encodings would
//! corrupt training counts.
//!
//! Extraction is total: names that do not resolve to a lemma (section
//! hypotheses, hallucinated identifiers) still get a vector, with the
//! premise slots collapsed to sentinel values. Determinism holds by
//! construction — everything is computed from `BTreeMap`/`BTreeSet`
//! traversals and FNV hashing, with no ambient state.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use minicoq::env::Env;
use minicoq::formula::Formula;
use proof_trace::ledger::fnv1a;

use crate::graph::{formula_refs, sort_refs, term_refs};
use crate::premise::distances;

/// Version of the feature encoding. Bump on any change to slot layout,
/// value bucketing, or the hash used for symbol-identity slots.
pub const FEATURES_SCHEMA: u32 = 1;

/// Number of feature slots in a vector.
pub const N_SLOTS: usize = 14;

/// A feature vector: one small bucketed value per slot (all < 256).
pub type FeatureVec = [u16; N_SLOTS];

/// Slot indices, named so goldens and ablations can refer to them.
pub mod slot {
    /// Tactic head word (0 = pure premise vector, no tactic context).
    pub const TACTIC_HEAD: usize = 0;
    /// Goal conclusion head (kind tag + hashed symbol identity).
    pub const GOAL_HEAD: usize = 1;
    /// log2 bucket of the goal statement size.
    pub const GOAL_SIZE: usize = 2;
    /// Rule shape of the goal: leading binders + premises, capped.
    pub const GOAL_SHAPE: usize = 3;
    /// Premise resolution: 0 none, 1 env lemma, 2 unresolved name.
    pub const PREMISE_KIND: usize = 4;
    /// Premise conclusion head (same encoding as GOAL_HEAD; 0 = n/a).
    pub const PREMISE_HEAD: usize = 5;
    /// Undirected graph distance goal → premise (1 + capped; 15 = ∞).
    pub const GRAPH_DIST: usize = 6;
    /// log2 bucket of the premise's directed dependency cone size.
    pub const CONE_SIZE: usize = 7;
    /// Number of hint databases containing the premise, capped.
    pub const HINT_DBS: usize = 8;
    /// Best declaration position across hint databases (1 + pos/2; 0 = n/a).
    pub const HINT_POS: usize = 9;
    /// Rewrite orientation vs the premise's conclusion shape.
    pub const REWRITE_ORIENT: usize = 10;
    /// |goal symbols ∩ premise statement symbols|, capped.
    pub const OVERLAP: usize = 11;
    /// log2 bucket of the premise statement size (0 = n/a).
    pub const PREMISE_SIZE: usize = 12;
    /// Content fingerprint byte of the premise statement (0 = n/a).
    pub const PREMISE_FP: usize = 13;
}

/// Tactic head words with stable ids (slot value = 1 + index). Unknown
/// heads map to 255. Append-only: inserting in the middle is a schema
/// change.
const TACTIC_HEADS: [&str; 27] = [
    "intros",
    "intro",
    "induction",
    "destruct",
    "unfold",
    "simpl",
    "reflexivity",
    "lia",
    "auto",
    "eauto",
    "split",
    "constructor",
    "subst",
    "inversion",
    "injection",
    "discriminate",
    "contradiction",
    "exists",
    "f_equal",
    "symmetry",
    "congruence",
    "assumption",
    "left",
    "right",
    "apply",
    "eapply",
    "rewrite",
];

fn log2_bucket(n: usize) -> u16 {
    let mut b = 0u16;
    let mut v = n;
    while v > 1 && b < 15 {
        v >>= 1;
        b += 1;
    }
    b
}

/// Head encoding shared by GOAL_HEAD and PREMISE_HEAD: a small tag for
/// structural heads, a hashed identity bucket for `Eq` sorts (16..64)
/// and predicate symbols (64..256).
fn head_code(conclusion: &Formula) -> u16 {
    match conclusion {
        Formula::True => 1,
        Formula::False => 2,
        Formula::Not(_) => 3,
        Formula::And(..) => 4,
        Formula::Or(..) => 5,
        Formula::Iff(..) => 6,
        Formula::FMatch(..) => 7,
        Formula::Exists(..) => 8,
        Formula::Eq(sort, _, _) => 16 + (fnv1a(format!("{sort:?}").as_bytes()) % 48) as u16,
        Formula::Pred(name, _, _) => 64 + (fnv1a(name.as_bytes()) % 192) as u16,
        // peel() strips these, but head_code is total anyway.
        Formula::Implies(..) | Formula::Forall(..) | Formula::ForallSort(..) => 9,
    }
}

/// Per-environment context: directed reference edges (for cone sizes),
/// hint-db membership, and a premise statement index. Build once per
/// environment and reuse across theorems.
pub struct FeatureCtx<'a> {
    env: &'a Env,
    /// Directed references: every declared name → names its definition
    /// or statement mentions.
    refs: BTreeMap<String, BTreeSet<String>>,
    /// Premise name → (number of hint dbs containing it, best position).
    hints: BTreeMap<String, (u16, u16)>,
    /// Lemma name → statement.
    lemmas: BTreeMap<&'a str, &'a Formula>,
}

impl<'a> FeatureCtx<'a> {
    /// Precomputes the per-environment tables.
    pub fn new(env: &'a Env) -> FeatureCtx<'a> {
        let mut refs: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (n, ind) in env.inductives.iter() {
            let mut r = BTreeSet::new();
            for c in &ind.ctors {
                r.insert(c.name.to_string());
                for s in &c.args {
                    sort_refs(s, &mut r);
                }
            }
            refs.insert(n.to_string(), r);
        }
        for (n, f) in env.funcs.iter() {
            let mut r = BTreeSet::new();
            term_refs(&f.body, &mut r);
            sort_refs(&f.ret, &mut r);
            for (_, s) in &f.params {
                sort_refs(s, &mut r);
            }
            refs.insert(n.to_string(), r);
        }
        for (n, pd) in env.preds.iter() {
            let mut r = BTreeSet::new();
            match pd {
                minicoq::env::PredDef::Defined(dp) => {
                    formula_refs(&dp.body, &mut r);
                    for (_, s) in &dp.params {
                        sort_refs(s, &mut r);
                    }
                }
                minicoq::env::PredDef::Inductive(ip) => {
                    for (rn, stmt) in &ip.rules {
                        r.insert(rn.to_string());
                        let mut rr = BTreeSet::new();
                        formula_refs(stmt, &mut rr);
                        refs.entry(rn.to_string()).or_default().extend(rr.clone());
                        r.extend(rr);
                    }
                    for s in &ip.arg_sorts {
                        sort_refs(s, &mut r);
                    }
                }
            }
            refs.insert(n.to_string(), r);
        }
        let mut lemmas: BTreeMap<&str, &Formula> = BTreeMap::new();
        for l in env.lemmas.iter() {
            let mut r = BTreeSet::new();
            formula_refs(&l.stmt, &mut r);
            refs.insert(l.name.to_string(), r);
            lemmas.insert(&l.name, &l.stmt);
        }
        let mut hints: BTreeMap<String, (u16, u16)> = BTreeMap::new();
        for db in env.hints.values() {
            for (pos, h) in db.iter().enumerate() {
                let e = hints.entry(h.to_string()).or_insert((0, u16::MAX));
                e.0 = (e.0 + 1).min(15);
                e.1 = e.1.min(pos.min(u16::MAX as usize) as u16);
            }
        }
        FeatureCtx {
            env,
            refs,
            hints,
            lemmas,
        }
    }

    /// Every premise name in scope: lemmas plus hint-db entries.
    pub fn premise_names(&self) -> BTreeSet<String> {
        let mut names: BTreeSet<String> = self.lemmas.keys().map(|k| k.to_string()).collect();
        for db in self.env.hints.values() {
            names.extend(db.iter().map(|h| h.to_string()));
        }
        names
    }

    /// Size of the directed dependency cone rooted at `name`, bounded at
    /// 64 nodes so extraction stays O(1) per premise.
    fn cone_size(&self, name: &str) -> usize {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        seen.insert(name.to_string());
        queue.push_back(name.to_string());
        while let Some(n) = queue.pop_front() {
            if seen.len() >= 64 {
                break;
            }
            if let Some(next) = self.refs.get(&n) {
                for m in next {
                    if seen.insert(m.clone()) {
                        queue.push_back(m.clone());
                    }
                }
            }
        }
        seen.len()
    }
}

/// Per-theorem context: BFS distances from the goal and the goal-side
/// slots, computed once and shared across all premises of the theorem.
pub struct GoalCtx {
    dist: BTreeMap<String, usize>,
    goal_syms: BTreeSet<String>,
    goal_head: u16,
    goal_size: u16,
    goal_shape: u16,
}

impl GoalCtx {
    /// Precomputes the goal-side features and the distance map.
    pub fn new(fcx: &FeatureCtx<'_>, goal: &Formula) -> GoalCtx {
        let mut goal_syms = BTreeSet::new();
        formula_refs(goal, &mut goal_syms);
        let peeled = goal.peel();
        GoalCtx {
            dist: distances(fcx.env, goal),
            goal_syms,
            goal_head: head_code(peeled.conclusion),
            goal_size: log2_bucket(goal.size()),
            goal_shape: (peeled.binders.len() + peeled.premises.len()).min(15) as u16,
        }
    }
}

/// The per-theorem vector: goal slots populated, premise slots zero.
pub fn theorem_vector(gcx: &GoalCtx) -> FeatureVec {
    let mut v = [0u16; N_SLOTS];
    v[slot::GOAL_HEAD] = gcx.goal_head;
    v[slot::GOAL_SIZE] = gcx.goal_size;
    v[slot::GOAL_SHAPE] = gcx.goal_shape;
    v
}

/// The per-(theorem, premise) vector. Total: unresolved names get
/// `PREMISE_KIND = 2` with the statement-derived slots zeroed.
pub fn premise_vector(fcx: &FeatureCtx<'_>, gcx: &GoalCtx, name: &str) -> FeatureVec {
    premise_into(fcx, gcx, name, false, theorem_vector(gcx))
}

fn premise_into(
    fcx: &FeatureCtx<'_>,
    gcx: &GoalCtx,
    name: &str,
    backward: bool,
    mut v: FeatureVec,
) -> FeatureVec {
    let stmt = fcx.lemmas.get(name).copied();
    v[slot::PREMISE_KIND] = if stmt.is_some() { 1 } else { 2 };
    v[slot::GRAPH_DIST] = match gcx.dist.get(name) {
        Some(&d) => 1 + d.min(13) as u16,
        None => 15,
    };
    if let Some(&(dbs, pos)) = fcx.hints.get(name) {
        v[slot::HINT_DBS] = dbs;
        v[slot::HINT_POS] = 1 + (pos as usize / 2).min(14) as u16;
    }
    if let Some(stmt) = stmt {
        let peeled = stmt.peel();
        v[slot::PREMISE_HEAD] = head_code(peeled.conclusion);
        v[slot::CONE_SIZE] = log2_bucket(fcx.cone_size(name));
        let mut syms = BTreeSet::new();
        formula_refs(stmt, &mut syms);
        v[slot::OVERLAP] = gcx.goal_syms.intersection(&syms).count().min(15) as u16;
        v[slot::PREMISE_SIZE] = log2_bucket(stmt.size());
        v[slot::PREMISE_FP] = 1 + (fnv1a(format!("{stmt:?}").as_bytes()) % 254) as u16;
        let equational = matches!(peeled.conclusion, Formula::Eq(..) | Formula::Iff(..));
        v[slot::REWRITE_ORIENT] = match (v[slot::REWRITE_ORIENT], equational, backward) {
            (0, _, _) => 0, // not a rewrite tactic
            (_, true, false) => 1,
            (_, true, true) => 2,
            (_, false, false) => 3,
            (_, false, true) => 4,
        };
    } else if v[slot::REWRITE_ORIENT] != 0 {
        v[slot::REWRITE_ORIENT] = if backward { 4 } else { 3 };
    }
    v
}

/// Parses a proposed tactic into `(head, premise argument, backward)`.
/// Only `apply`/`eapply`/`rewrite` shapes carry a premise; `apply L in H`
/// reports `L`.
pub fn parse_tactic(tactic: &str) -> (&str, Option<&str>, bool) {
    let mut words = tactic.split_whitespace();
    let head = words.next().unwrap_or("");
    match head {
        "apply" | "eapply" => (head, words.next(), false),
        "rewrite" => match words.next() {
            Some("<-") => (head, words.next(), true),
            other => (head, other, false),
        },
        _ => (head, None, false),
    }
}

/// The premise (lemma argument) named by a tactic, if any.
pub fn premise_of_tactic(tactic: &str) -> Option<&str> {
    parse_tactic(tactic).1
}

/// The per-(theorem, tactic) vector: the premise vector of the tactic's
/// lemma argument (when present) plus the tactic head slot. Total over
/// arbitrary tactic strings.
pub fn tactic_vector(fcx: &FeatureCtx<'_>, gcx: &GoalCtx, tactic: &str) -> FeatureVec {
    let (head, premise, backward) = parse_tactic(tactic);
    let mut v = theorem_vector(gcx);
    v[slot::TACTIC_HEAD] = match TACTIC_HEADS.iter().position(|h| *h == head) {
        Some(i) => 1 + i as u16,
        None => 255,
    };
    if head == "rewrite" {
        // Non-zero marks "rewrite context"; premise_into refines it.
        v[slot::REWRITE_ORIENT] = 3;
    }
    match premise {
        Some(p) => premise_into(fcx, gcx, p, backward, v),
        None => v,
    }
}

/// Stable textual encoding of a vector (two hex digits per slot), used
/// by golden tests and debug output.
pub fn encode(v: &FeatureVec) -> String {
    let mut s = String::with_capacity(N_SLOTS * 2);
    for x in v {
        s.push_str(&format!("{:02x}", (*x).min(255)));
    }
    s
}

/// Feature buckets of a vector: `(slot << 8) | value`, the keys the
/// count-based scorer aggregates over.
pub fn buckets(v: &FeatureVec) -> [u32; N_SLOTS] {
    let mut out = [0u32; N_SLOTS];
    for (i, x) in v.iter().enumerate() {
        out[i] = ((i as u32) << 8) | (*x as u32 & 0xff);
    }
    out
}
