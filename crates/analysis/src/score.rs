//! Offline learned scorer over attempt-mined feature buckets.
//!
//! The model is deliberately primitive — no ML framework, no floats on
//! disk. Training counts, per feature bucket, how many attempts carrying
//! that bucket succeeded (landed on a proved script's path) versus how
//! many were charged at all, and stores the Laplace-smoothed log-odds
//! `ln((wins + 1) / (losses + 1))` quantized to milli-units. Scoring a
//! vector sums the weights of its buckets; ties (and everything, when no
//! model is installed) fall back to declaration order, so ranking is
//! always a stable permutation.
//!
//! An optional one-pass logistic refinement re-fits the bucket weights
//! with a single deterministic sweep over the samples in log order,
//! which sharpens buckets whose count-based estimates are correlated.
//!
//! The artifact format is byte-stable: a magic header, little-endian
//! sorted `(bucket, milli-weight)` pairs, and a trailing FNV-1a checksum.
//! Training from the same samples always produces identical bytes — CI
//! pins this.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use minicoq::env::Env;
use minicoq::formula::Formula;
use proof_trace::ledger::fnv1a;

use crate::features::{
    self, buckets, tactic_vector, FeatureCtx, FeatureVec, GoalCtx, FEATURES_SCHEMA,
};

/// Version of the model artifact layout. Bump on any format change.
pub const MODEL_SCHEMA: u32 = 1;

pub const MAGIC: &[u8; 8] = b"RANKMDL\x01";

/// A trained bucket-weight model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    /// Feature encoding the weights were trained against.
    pub features_schema: u32,
    /// Whether the one-pass logistic refinement ran.
    pub refined: bool,
    /// Bucket → milli log-odds weight.
    pub weights: BTreeMap<u32, i32>,
}

impl Model {
    /// Trains from `(vector, success)` samples. Deterministic: counts
    /// are order-independent and the refinement sweep visits samples in
    /// the order given.
    pub fn train(samples: &[(FeatureVec, bool)], refine: bool) -> Model {
        let mut wins: BTreeMap<u32, u64> = BTreeMap::new();
        let mut total: BTreeMap<u32, u64> = BTreeMap::new();
        for (v, success) in samples {
            for b in buckets(v) {
                *total.entry(b).or_insert(0) += 1;
                if *success {
                    *wins.entry(b).or_insert(0) += 1;
                }
            }
        }
        let mut w: BTreeMap<u32, f64> = BTreeMap::new();
        for (b, &t) in &total {
            let win = wins.get(b).copied().unwrap_or(0);
            let loss = t - win;
            w.insert(*b, ((win as f64 + 1.0) / (loss as f64 + 1.0)).ln());
        }
        if refine {
            let lr = 0.05;
            for (v, success) in samples {
                let bs = buckets(v);
                let score: f64 = bs.iter().filter_map(|b| w.get(b)).sum();
                let p = 1.0 / (1.0 + (-score).exp());
                let grad = lr * (if *success { 1.0 } else { 0.0 } - p);
                for b in bs {
                    *w.entry(b).or_insert(0.0) += grad;
                }
            }
        }
        let weights = w
            .into_iter()
            .map(|(b, x)| (b, (x * 1000.0).round() as i32))
            .collect();
        Model {
            features_schema: FEATURES_SCHEMA,
            refined: refine,
            weights,
        }
    }

    /// Milli-unit score of a vector: the sum of its bucket weights.
    pub fn score_milli(&self, v: &FeatureVec) -> i64 {
        buckets(v)
            .iter()
            .filter_map(|b| self.weights.get(b))
            .map(|&w| w as i64)
            .sum()
    }

    /// Byte-stable serialization with a trailing FNV-1a checksum.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.weights.len() * 8);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&MODEL_SCHEMA.to_le_bytes());
        out.extend_from_slice(&self.features_schema.to_le_bytes());
        out.push(self.refined as u8);
        out.extend_from_slice(&(self.weights.len() as u32).to_le_bytes());
        for (b, w) in &self.weights {
            out.extend_from_slice(&b.to_le_bytes());
            out.extend_from_slice(&w.to_le_bytes());
        }
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parses [`Model::to_bytes`] output, verifying magic, schema, and
    /// checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Model, String> {
        if bytes.len() < MAGIC.len() + 13 + 8 {
            return Err("model artifact truncated".into());
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().unwrap());
        if fnv1a(body) != stored {
            return Err("model artifact checksum mismatch".into());
        }
        if &body[..8] != MAGIC {
            return Err("not a rank model artifact (bad magic)".into());
        }
        let rd_u32 = |off: usize| u32::from_le_bytes(body[off..off + 4].try_into().unwrap());
        let schema = rd_u32(8);
        if schema != MODEL_SCHEMA {
            return Err(format!("unsupported model schema {schema}"));
        }
        let features_schema = rd_u32(12);
        let refined = body[16] != 0;
        let n = rd_u32(17) as usize;
        if body.len() != 21 + n * 8 {
            return Err("model artifact length mismatch".into());
        }
        let mut weights = BTreeMap::new();
        for i in 0..n {
            let off = 21 + i * 8;
            let b = rd_u32(off);
            let w = i32::from_le_bytes(body[off + 4..off + 8].try_into().unwrap());
            weights.insert(b, w);
        }
        Ok(Model {
            features_schema,
            refined,
            weights,
        })
    }

    /// FNV-1a hash of the serialized artifact, for determinism checks.
    pub fn content_hash(&self) -> u64 {
        fnv1a(&self.to_bytes())
    }
}

fn registry() -> &'static RwLock<Option<Arc<Model>>> {
    static REGISTRY: RwLock<Option<Arc<Model>>> = RwLock::new(None);
    &REGISTRY
}

/// Installs a model process-wide. The model intentionally lives outside
/// `SearchConfig` — config feeds the cell cache key and must not embed
/// model contents; callers that vary the model must also vary the cell
/// `variant` or bypass the cache.
pub fn install_model(model: Model) {
    *registry().write().unwrap() = Some(Arc::new(model));
}

/// Removes any installed model (tests).
pub fn clear_model() {
    *registry().write().unwrap() = None;
}

/// The currently installed model, if any.
pub fn installed_model() -> Option<Arc<Model>> {
    registry().read().unwrap().clone()
}

/// Per-search ranking context: the installed model plus the theorem's
/// feature contexts, with a memo table so repeated tactics across
/// queries are scored once.
pub struct RankCtx<'a> {
    model: Arc<Model>,
    fcx: FeatureCtx<'a>,
    gcx: GoalCtx,
    memo: std::cell::RefCell<BTreeMap<String, i64>>,
}

impl<'a> RankCtx<'a> {
    /// Builds a context for one theorem, or `None` (with a counter bump)
    /// when no model is installed — callers fall back to graph ranking.
    pub fn new(env: &'a Env, goal: &Formula) -> Option<RankCtx<'a>> {
        let model = match installed_model() {
            Some(m) => m,
            None => {
                proof_trace::metrics::counter_inc("analysis.rank.no_model");
                return None;
            }
        };
        if model.features_schema != FEATURES_SCHEMA {
            proof_trace::metrics::counter_inc("analysis.rank.schema_mismatch");
            return None;
        }
        let fcx = FeatureCtx::new(env);
        let gcx = GoalCtx::new(&fcx, goal);
        Some(RankCtx {
            model,
            fcx,
            gcx,
            memo: std::cell::RefCell::new(BTreeMap::new()),
        })
    }

    /// Learned milli-score of a premise name against this theorem.
    pub fn score_premise(&self, name: &str) -> i64 {
        self.model
            .score_milli(&features::premise_vector(&self.fcx, &self.gcx, name))
    }

    /// Learned milli-score of a proposed tactic against this theorem.
    pub fn score_tactic(&self, tactic: &str) -> i64 {
        if let Some(&s) = self.memo.borrow().get(tactic) {
            return s;
        }
        let s = self
            .model
            .score_milli(&tactic_vector(&self.fcx, &self.gcx, tactic));
        self.memo.borrow_mut().insert(tactic.to_string(), s);
        s
    }

    /// Stable permutation of `tactics` by descending learned score
    /// (declaration order breaks ties): `out[k]` is the original index
    /// of the tactic ranked `k`-th.
    pub fn order_tactics(&self, tactics: &[&str]) -> Vec<usize> {
        let mut keyed: Vec<(i64, usize)> = tactics
            .iter()
            .enumerate()
            .map(|(i, t)| (-self.score_tactic(t), i))
            .collect();
        keyed.sort();
        keyed.into_iter().map(|(_, i)| i).collect()
    }
}
