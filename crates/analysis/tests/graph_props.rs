//! Property: the dependency graph is closed under reference. For any
//! generated development, every identifier a statement or hint mentions
//! either resolves to a graph symbol (and contributes an edge) or is
//! recorded in `graph.unresolved` — nothing silently vanishes.

use corpus_analysis::graph::{formula_refs, DepGraph};
use corpus_analysis::{analyze_sources, AnalysisConfig};
use minicoq_vernac::Loader;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Renders a generated development: a chain of unary functions (each
/// body referencing an earlier one), equational lemmas over random pairs
/// of them, and hints on a random subset of the lemmas.
fn render(funcs: usize, lemmas: &[(usize, usize)], hints: &[usize]) -> String {
    let mut src = String::new();
    for i in 0..funcs {
        let body = if i == 0 {
            "S n".to_string()
        } else {
            format!("f{} (S n)", i - 1)
        };
        src.push_str(&format!("Definition f{i} (n : nat) : nat := {body}.\n"));
    }
    for (k, (a, b)) in lemmas.iter().enumerate() {
        src.push_str(&format!(
            "Lemma g{k} : forall (n : nat), f{a} n = f{b} n.\nProof. auto. Qed.\n"
        ));
    }
    for h in hints {
        src.push_str(&format!("Hint Resolve g{h}.\n"));
    }
    src
}

proptest! {
    /// Every name referenced from a generated development's statements
    /// resolves to a symbol with a matching out-edge, and nothing lands
    /// in `unresolved`.
    #[test]
    fn generated_graphs_are_closed_under_reference(
        funcs in 1usize..5,
        pairs in proptest::collection::vec((0usize..5, 0usize..5), 1..6),
        hint_picks in proptest::collection::vec(0usize..6, 0..4),
    ) {
        let lemmas: Vec<(usize, usize)> = pairs
            .into_iter()
            .map(|(a, b)| (a % funcs, b % funcs))
            .collect();
        let hints: Vec<usize> = hint_picks
            .into_iter()
            .map(|h| h % lemmas.len())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let src = render(funcs, &lemmas, &hints);
        let sources = vec![("Gen".to_string(), src.clone())];
        let (report, graph) =
            analyze_sources(&sources, &AnalysisConfig::default()).expect("generated dev loads");
        // Closure: a loadable development has no dangling references.
        prop_assert!(graph.unresolved.is_empty(), "unresolved in:\n{src}");
        // Every statement-level reference is an out-edge of its lemma.
        let mut loader = Loader::new().check_proofs(false);
        loader.add_source("Gen", src.clone());
        let dev = loader.load().unwrap();
        for thm in &dev.theorems {
            let from = graph.lookup(&thm.name).expect("lemma is a symbol");
            let out: BTreeSet<usize> = graph.out(from).collect();
            let mut refs = BTreeSet::new();
            formula_refs(&thm.stmt, &mut refs);
            for r in refs {
                let to = graph.lookup(&r);
                prop_assert!(to.is_some(), "{} -> {r} resolves", thm.name);
                prop_assert!(
                    out.contains(&to.unwrap()),
                    "edge {} -> {r} present", thm.name
                );
            }
        }
        // And the analyzer agrees: no unknown-ref findings.
        prop_assert!(
            !report.findings.iter().any(|f| f.code == corpus_analysis::Code::UnknownRef),
            "unexpected unknown-ref in:\n{src}"
        );
    }

    /// A dangling reference (a hint db name nothing declares) is always
    /// *reported*, never dropped: closure's other half.
    #[test]
    fn dangling_names_are_always_reported(db in "[a-z]{3,8}") {
        let src = format!(
            "Lemma anchor : forall (n : nat), le n n.\nProof. auto. Qed.\n\
             Hint Resolve anchor : {db}.\n"
        );
        let sources = vec![("Gen".to_string(), src)];
        let (_, graph) =
            analyze_sources(&sources, &AnalysisConfig::default()).expect("loads");
        // `db` may collide with a declared name (e.g. a prelude symbol);
        // the property is conditional on it being genuinely undeclared.
        if graph.lookup(&db).is_none() {
            prop_assert!(
                graph.unresolved.iter().any(|u| u.name == db),
                "dangling {db} not reported"
            );
        }
    }
}

/// `DepGraph::build` agrees with the loader on which file declares each
/// theorem (spot-check on a two-file development with imports).
#[test]
fn graph_attributes_symbols_to_their_files() {
    let a = "Definition base (n : nat) : nat := S n.\n";
    let b = "Require Import A.\nLemma uses_base : forall (n : nat), base n = S n.\n\
             Proof. unfold base. reflexivity. Qed.\n";
    let mut loader = Loader::new().check_proofs(false);
    loader.add_source("A", a);
    loader.add_source("B", b);
    let dev = loader.load().unwrap();
    let sources = vec![
        ("A".to_string(), a.to_string()),
        ("B".to_string(), b.to_string()),
    ];
    let graph = DepGraph::build(&dev, &sources);
    let base = graph.symbol(graph.lookup("base").unwrap());
    assert_eq!(base.file, "A");
    assert_eq!(base.line, 1);
    let lem = graph.symbol(graph.lookup("uses_base").unwrap());
    assert_eq!(lem.file, "B");
    assert_eq!(lem.line, 2);
    // The cross-file reference edge exists.
    let out: Vec<usize> = graph.out(graph.lookup("uses_base").unwrap()).collect();
    assert!(out.contains(&graph.lookup("base").unwrap()));
}
