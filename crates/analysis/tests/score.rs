//! Scorer artifact: train → save → load → score round-trips
//! byte-identically, and the loader rejects corrupted artifacts.

use corpus_analysis::features::{FeatureVec, N_SLOTS};
use corpus_analysis::score::{Model, MAGIC};

/// A small synthetic sample set: bucket (0, 25) wins, bucket (4, 2)
/// loses, everything else is noise.
fn samples() -> Vec<(FeatureVec, bool)> {
    let mut out = Vec::new();
    for i in 0..20u16 {
        let mut v: FeatureVec = [0; N_SLOTS];
        v[0] = 25;
        v[2] = i % 5;
        out.push((v, i % 3 != 0));
        let mut w: FeatureVec = [0; N_SLOTS];
        w[0] = 27;
        w[4] = 2;
        w[2] = i % 7;
        out.push((w, false));
    }
    out
}

#[test]
fn train_save_load_score_round_trip_is_byte_identical() {
    for refine in [false, true] {
        let model = Model::train(&samples(), refine);
        assert!(!model.weights.is_empty());
        let bytes = model.to_bytes();
        assert_eq!(&bytes[..MAGIC.len()], MAGIC);
        let reloaded = Model::from_bytes(&bytes).expect("artifact loads");
        assert_eq!(model, reloaded, "refine={refine}");
        assert_eq!(
            bytes,
            reloaded.to_bytes(),
            "serialization must be byte-stable (refine={refine})"
        );
        assert_eq!(model.content_hash(), reloaded.content_hash());
        for (v, _) in samples() {
            assert_eq!(model.score_milli(&v), reloaded.score_milli(&v));
        }
    }
}

#[test]
fn training_is_deterministic() {
    let a = Model::train(&samples(), true);
    let b = Model::train(&samples(), true);
    assert_eq!(a.to_bytes(), b.to_bytes());
    assert_eq!(a.content_hash(), b.content_hash());
}

#[test]
fn winning_buckets_outscore_losing_buckets() {
    let model = Model::train(&samples(), false);
    let mut win: FeatureVec = [0; N_SLOTS];
    win[0] = 25;
    let mut lose: FeatureVec = [0; N_SLOTS];
    lose[0] = 27;
    lose[4] = 2;
    assert!(
        model.score_milli(&win) > model.score_milli(&lose),
        "win {} vs lose {}",
        model.score_milli(&win),
        model.score_milli(&lose)
    );
}

#[test]
fn corrupted_artifacts_are_rejected() {
    let bytes = Model::train(&samples(), false).to_bytes();
    // Flip one weight byte: the trailing checksum must catch it.
    let mut tampered = bytes.clone();
    let mid = bytes.len() / 2;
    tampered[mid] ^= 0x40;
    assert!(
        Model::from_bytes(&tampered).is_err(),
        "checksum must catch tampering"
    );
    // Truncation and a wrong magic are rejected too.
    assert!(Model::from_bytes(&bytes[..bytes.len() - 3]).is_err());
    let mut wrong_magic = bytes.clone();
    wrong_magic[0] ^= 0xff;
    assert!(Model::from_bytes(&wrong_magic).is_err());
    assert!(Model::from_bytes(&[]).is_err());
}
