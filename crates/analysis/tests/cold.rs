//! Cold-hint audit: a hint whose targets an attempt log shows on a
//! successful proof path stays quiet; a hint whose targets never
//! contributed gets exactly one finding.

use corpus_analysis::passes::cold;
use corpus_analysis::{analyze_sources, AnalysisConfig, AnalysisReport, Code, ALL_CODES};
use proof_trace::attempts::AttemptRecord;

/// One hot hint (`near`, used on a proved path) and one cold hint
/// (`far`, never used).
const SRC: &str = "Sort blob.\n\
    Definition idb (b : blob) : blob := b.\n\
    Lemma near : forall (b : blob), idb b = b.\n\
    Proof. unfold idb. reflexivity. Qed.\n\
    Lemma far : forall (n : nat), le n n.\n\
    Proof. auto. Qed.\n\
    Hint Resolve far.\n\
    Hint Resolve near.\n";

fn on_path_record(premise: &str) -> AttemptRecord {
    AttemptRecord {
        theorem: "goal".to_string(),
        tactic: format!("apply {premise}"),
        premise: premise.to_string(),
        outcome: "proved".to_string(),
        on_path: true,
        ..AttemptRecord::default()
    }
}

fn graph_of(src: &str) -> corpus_analysis::DepGraph {
    let sources = vec![("Gen".to_string(), src.to_string())];
    let (_report, graph) =
        analyze_sources(&sources, &AnalysisConfig::default()).expect("fixture loads");
    graph
}

#[test]
fn one_hot_one_cold_hint_yields_exactly_one_finding() {
    let graph = graph_of(SRC);
    let log = vec![on_path_record("near")];
    let mut findings = Vec::new();
    cold::run(&graph, &log, &mut findings);
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    let f = &findings[0];
    assert_eq!(f.code, Code::ColdHint);
    assert_eq!(f.code.code(), "cold-hint");
    assert!(
        f.message.contains("far"),
        "the cold hint targets `far`: {}",
        f.message
    );
}

#[test]
fn log_without_successes_is_no_evidence() {
    let graph = graph_of(SRC);
    // Plenty of attempts, none on a proved path: branding every hint
    // cold from a failed run would be noise, so the pass stays silent.
    let mut rec = on_path_record("near");
    rec.on_path = false;
    let mut findings = Vec::new();
    cold::run(&graph, &vec![rec; 5], &mut findings);
    assert!(findings.is_empty(), "findings: {findings:?}");
}

#[test]
fn all_hot_hints_yield_no_findings() {
    let graph = graph_of(SRC);
    let log = vec![on_path_record("near"), on_path_record("far")];
    let mut findings = Vec::new();
    cold::run(&graph, &log, &mut findings);
    assert!(findings.is_empty(), "findings: {findings:?}");
}

#[test]
fn cold_hint_is_a_first_class_reason_code() {
    assert_eq!(ALL_CODES.len(), 9);
    assert!(ALL_CODES.contains(&Code::ColdHint));
    // Reason codes must stay pairwise distinct.
    for (i, a) in ALL_CODES.iter().enumerate() {
        for b in &ALL_CODES[i + 1..] {
            assert_ne!(a.code(), b.code());
        }
    }
}

#[test]
fn cold_findings_render_in_sarif() {
    let graph = graph_of(SRC);
    let log = vec![on_path_record("near")];
    let mut findings = Vec::new();
    cold::run(&graph, &log, &mut findings);
    let report = AnalysisReport {
        findings,
        symbols: graph.len(),
        edges: graph.edge_count(),
    };
    let sarif = report.sarif_json("cold_test", "corpus/");
    assert!(sarif.contains("\"cold-hint\""), "sarif: {sarif}");
    assert!(sarif.contains("far"), "sarif names the cold hint's target");
}
