//! The corpus itself must stay analyzer-clean: every pass, zero findings.
//! This is the regression guard behind `corpus_analyze --check`.

use corpus_analysis::{analyze_sources, AnalysisConfig};

fn corpus_sources() -> Vec<(String, String)> {
    fscq_corpus::corpus_sources()
        .into_iter()
        .map(|(n, t)| (n.to_string(), t.to_string()))
        .collect()
}

#[test]
fn corpus_is_clean() {
    let sources = corpus_sources();
    let (report, graph) =
        analyze_sources(&sources, &AnalysisConfig::default()).expect("corpus elaborates");
    assert!(!graph.is_empty());
    for f in &report.findings {
        eprintln!("{f}");
    }
    assert!(
        report.is_clean(),
        "corpus has {} analyzer finding(s)",
        report.findings.len()
    );
}

#[test]
fn corpus_graph_has_no_unresolved_refs() {
    let sources = corpus_sources();
    let (_, graph) =
        analyze_sources(&sources, &AnalysisConfig::default()).expect("corpus elaborates");
    let unresolved: Vec<String> = graph
        .unresolved
        .iter()
        .map(|u| format!("{}:{} -> {}", u.file, u.item, u.name))
        .collect();
    assert!(unresolved.is_empty(), "unresolved: {unresolved:?}");
}

#[test]
fn pass_counts_cover_every_code() {
    let sources = corpus_sources();
    let (report, _) =
        analyze_sources(&sources, &AnalysisConfig::default()).expect("corpus elaborates");
    let counts = report.pass_counts();
    for code in corpus_analysis::ALL_CODES {
        assert!(counts.contains_key(code.code()), "missing {code}");
    }
}
