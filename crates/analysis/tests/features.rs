//! Feature extraction: golden-pinned encodings for representative corpus
//! theorems, plus generated-corpus properties (total, deterministic,
//! in-range).
//!
//! The golden strings pin `FEATURES_SCHEMA` 1's exact encoding: any
//! change to a slot layout, bucket function, or head-symbol hash must
//! bump the schema and re-pin these.

use corpus_analysis::features::{
    self, encode, premise_vector, tactic_vector, theorem_vector, FeatureCtx, GoalCtx, N_SLOTS,
};
use fscq_corpus::Corpus;
use proptest::prelude::*;

/// Extracts the three encodings the goldens pin for one theorem: its
/// goal vector, a premise vector, and an `apply`-tactic vector for that
/// premise.
fn encodings(corpus: &Corpus, theorem: &str, premise: &str) -> (String, String, String) {
    let thm = corpus.dev.theorem(theorem).expect("pinned theorem exists");
    let env = corpus.dev.env_before(thm);
    let fcx = FeatureCtx::new(env);
    let gcx = GoalCtx::new(&fcx, &thm.stmt);
    (
        encode(&theorem_vector(&gcx)),
        encode(&premise_vector(&fcx, &gcx, premise)),
        encode(&tactic_vector(&fcx, &gcx, &format!("apply {premise}"))),
    )
}

#[test]
fn golden_feature_vectors_for_pinned_theorems() {
    let corpus = Corpus::load();
    let cases = [
        (
            "add_comm",
            "add_0_r",
            (
                "003c030200000000000000000000",
                "003c0302013c0202000000020246",
                "193c0302013c0202000000020246",
            ),
        ),
        (
            "tl_find_nil",
            "tl_names_length",
            (
                "003c020100000000000000000000",
                "003c0201013c02040000000102ad",
                "193c0201013c02040000000102ad",
            ),
        ),
        (
            "nonzero_addrs_app",
            "nonzero_addrs_nil",
            (
                "003c030200000000000000000000",
                "003c0302013c02030000000202f2",
                "193c0302013c02030000000202f2",
            ),
        ),
    ];
    for (thm, premise, (goal, prem, tac)) in cases {
        let (g, p, t) = encodings(&corpus, thm, premise);
        assert_eq!(g.len(), 2 * N_SLOTS, "{thm}: encoding width");
        assert_eq!(g, goal, "{thm}: goal vector drifted — bump FEATURES_SCHEMA");
        assert_eq!(p, prem, "{thm}/{premise}: premise vector drifted");
        assert_eq!(t, tac, "{thm}/{premise}: tactic vector drifted");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Over procedurally generated corpora, extraction is *total* (every
    /// theorem and every in-scope premise yields a vector with all slots
    /// in encoding range) and *deterministic* (a fresh context re-derives
    /// byte-identical encodings).
    #[test]
    fn extraction_is_total_and_deterministic_on_generated_corpora(
        seed in 0u64..1000,
        count in 6usize..16,
    ) {
        let spec = corpus_gen::GenSpec::new(seed, count);
        let gen = corpus_gen::generate(&spec);
        let dev = gen.development(false).expect("generated corpus loads");
        for thm in &dev.theorems {
            let env = dev.env_before(thm);
            let fcx = FeatureCtx::new(env);
            let gcx = GoalCtx::new(&fcx, &thm.stmt);
            let goal = theorem_vector(&gcx);
            prop_assert!(goal.iter().all(|&x| x <= 255), "{}: slot out of range", thm.name);
            // Fresh context: same bytes.
            let fcx2 = FeatureCtx::new(env);
            let gcx2 = GoalCtx::new(&fcx2, &thm.stmt);
            prop_assert_eq!(encode(&goal), encode(&theorem_vector(&gcx2)));
            for premise in fcx.premise_names() {
                let v = premise_vector(&fcx, &gcx, &premise);
                prop_assert!(v.iter().all(|&x| x <= 255), "{}/{premise}: slot out of range", thm.name);
                prop_assert_eq!(
                    encode(&v),
                    encode(&premise_vector(&fcx2, &gcx2, &premise)),
                    "premise re-extraction drifted"
                );
                let t = tactic_vector(&fcx, &gcx, &format!("apply {premise}"));
                prop_assert!(t[features::slot::TACTIC_HEAD] != 0, "apply head must be known");
            }
        }
    }
}
