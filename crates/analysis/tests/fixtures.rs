//! Seeded fixtures: each analyzer pass must fire on its known-bad input —
//! exactly once, with its reason code, and without collateral findings
//! from the other passes.

use corpus_analysis::{analyze_sources, AnalysisConfig, Code, Roots};

fn analyze(src: &str, config: &AnalysisConfig) -> corpus_analysis::AnalysisReport {
    let sources = vec![("Fixture".to_string(), src.to_string())];
    let (report, _) = analyze_sources(&sources, config).expect("fixture elaborates");
    report
}

fn single_finding(src: &str, config: &AnalysisConfig, code: Code) {
    let report = analyze(src, config);
    let all: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert_eq!(
        report.findings.len(),
        1,
        "expected exactly one finding, got {all:?}"
    );
    assert_eq!(report.findings[0].code, code, "wrong code in {all:?}");
    assert_eq!(report.findings[0].file, "Fixture");
    assert!(report.findings[0].line > 0, "finding carries a source line");
}

#[test]
fn looping_hint_db_is_flagged_once() {
    // `loopy`'s premise is the conclusion with the arguments swapped —
    // same size, same variable counts — so backchaining on `le` never
    // shrinks the goal: a fuel-divergent cycle.
    single_finding(
        "Lemma loopy : forall (n : nat) (m : nat), le m n -> le n m.\n\
         Proof. auto. Qed.\n\
         Hint Resolve loopy.\n",
        &AnalysisConfig::default(),
        Code::HintLoop,
    );
}

#[test]
fn structurally_decreasing_hints_are_not_flagged() {
    // The prelude's own `le` hints (le_n, le_S) plus a decreasing user
    // hint: every cycle edge shrinks its goal, so no finding.
    let report = analyze(
        "Lemma le_down : forall (n : nat) (m : nat), le n m -> le n (S m).\n\
         Proof. auto. Qed.\n\
         Hint Resolve le_down.\n",
        &AnalysisConfig::default(),
    );
    assert!(report.is_clean(), "unexpected: {:?}", report.findings);
}

#[test]
fn non_positive_inductive_is_flagged_once() {
    // `bad` occurs to the left of a nested implication in its own
    // introduction rule; `bad_keepalive` keeps it out of the dead pass.
    single_finding(
        "Inductive bad : nat -> Prop :=\n\
         | bad_intro : forall (n : nat), (bad n -> False) -> bad n.\n\
         Lemma bad_keepalive : forall (n : nat), bad n -> bad n.\n\
         Proof. intros. assumption. Qed.\n",
        &AnalysisConfig::default(),
        Code::NonPositive,
    );
}

#[test]
fn mutual_group_positivity_uses_the_whole_group() {
    // `even`/`odd` reference each other positively: the SCC machinery
    // must treat them as one group and stay quiet.
    let report = analyze(
        "Inductive even : nat -> Prop :=\n\
         | even_O : even O\n\
         | even_S : forall (n : nat), odd n -> even (S n)\n\
         with odd : nat -> Prop :=\n\
         | odd_S : forall (n : nat), even n -> odd (S n).\n\
         Lemma even_keepalive : forall (n : nat), even n -> even n.\n\
         Proof. intros. assumption. Qed.\n\
         Lemma odd_keepalive : forall (n : nat), odd n -> odd n.\n\
         Proof. intros. assumption. Qed.\n",
        &AnalysisConfig::default(),
    );
    assert!(report.is_clean(), "unexpected: {:?}", report.findings);
}

#[test]
fn dead_lemma_is_flagged_once() {
    // With `used` as the only benchmark root, `helper` is unreachable.
    single_finding(
        "Lemma used : forall (n : nat), le n n.\n\
         Proof. auto. Qed.\n\
         Lemma helper : forall (n : nat), le n (S n).\n\
         Proof. auto. Qed.\n",
        &AnalysisConfig {
            roots: Roots::Names(vec!["used".to_string()]),
        },
        Code::DeadSymbol,
    );
}

#[test]
fn proof_references_keep_symbols_live() {
    // `helper` is referenced only from `used`'s proof script; proof-token
    // edges must keep it alive.
    let report = analyze(
        "Lemma helper : forall (n : nat), le n (S n).\n\
         Proof. auto. Qed.\n\
         Lemma used : forall (n : nat), le n (S n).\n\
         Proof. apply helper. Qed.\n",
        &AnalysisConfig {
            roots: Roots::Names(vec!["used".to_string()]),
        },
    );
    assert!(report.is_clean(), "unexpected: {:?}", report.findings);
}

#[test]
fn reversed_rewrite_pair_is_flagged_once() {
    single_finding(
        "Definition idn (n : nat) : nat := n.\n\
         Lemma idn_fwd : forall (n : nat), idn n = n.\n\
         Proof. unfold idn. reflexivity. Qed.\n\
         Lemma idn_bwd : forall (n : nat), n = idn n.\n\
         Proof. unfold idn. reflexivity. Qed.\n",
        &AnalysisConfig::default(),
        Code::RewritePingPong,
    );
}

#[test]
fn commutativity_is_not_a_pingpong() {
    // A lemma that is its own reverse (symmetric shape) is standard and
    // deliberately not flagged.
    let report = analyze(
        "Definition swap2 (a : nat) (b : nat) : nat := a.\n\
         Lemma swap_comm : forall (a : nat) (b : nat), swap2 a b = swap2 b a.\n\
         Proof. auto. Qed.\n",
        &AnalysisConfig::default(),
    );
    assert!(report.is_clean(), "unexpected: {:?}", report.findings);
}

#[test]
fn admitted_lemma_is_flagged_once() {
    single_finding(
        "Lemma someday : forall (n : nat), le n n.\n\
         Proof.\n\
         Admitted.\n",
        &AnalysisConfig::default(),
        Code::Admitted,
    );
}

#[test]
fn axiom_is_flagged_once() {
    // `trustme` is referenced from a proof so the dead pass stays quiet;
    // the axiom audit alone fires.
    single_finding(
        "Axiom trustme : forall (n : nat), le n n.\n\
         Lemma uses_axiom : forall (n : nat), le n n.\n\
         Proof. apply trustme. Qed.\n",
        &AnalysisConfig::default(),
        Code::Axiom,
    );
}

#[test]
fn unknown_hint_reference_is_flagged_once() {
    // The loader validates `Hint Resolve` *targets* (an unknown lemma is
    // a load error), but silently swallows a `: db` suffix naming a
    // database nothing tracks — the graph reports that dangling name.
    single_finding(
        "Lemma anchor : forall (n : nat), le n n.\n\
         Proof. auto. Qed.\n\
         Hint Resolve anchor : ghostdb.\n",
        &AnalysisConfig::default(),
        Code::UnknownRef,
    );
}

#[test]
fn sarif_report_carries_rule_and_location() {
    let sources = vec![(
        "Fixture".to_string(),
        "Lemma someday : forall (n : nat), le n n.\nProof.\nAdmitted.\n".to_string(),
    )];
    let (report, _) =
        analyze_sources(&sources, &AnalysisConfig::default()).expect("fixture elaborates");
    let sarif = report.sarif_json("corpus_analyze", "crates/fscq/corpus/");
    assert!(sarif.contains("\"2.1.0\""));
    assert!(sarif.contains("\"admitted\""));
    assert!(sarif.contains("crates/fscq/corpus/Fixture.v"));
    assert!(sarif.contains("startLine"));
    // Every reason code is declared as a rule even when it did not fire.
    for code in corpus_analysis::ALL_CODES {
        assert!(sarif.contains(code.code()), "rule {code} missing");
    }
}

#[test]
fn unknown_ref_fails_the_exit_gate() {
    // A dangling reference is a first-class finding, not a side-channel:
    // it must flip `is_clean()` (the CI exit gate in `corpus_analyze`
    // returns non-zero exactly when a report is not clean), show up in
    // the per-pass counts, name the unresolved symbol, and survive into
    // the SARIF export other tools consume.
    let report = analyze(
        "Lemma anchor : forall (n : nat), le n n.\n\
         Proof. auto. Qed.\n\
         Hint Resolve anchor : ghostdb.\n",
        &AnalysisConfig::default(),
    );
    assert!(!report.is_clean(), "dangling reference must gate the exit");
    let counts = report.pass_counts();
    assert_eq!(
        counts.get(Code::UnknownRef.code()).copied(),
        Some(1),
        "unknown-ref must be counted as its own pass"
    );
    let f = &report.findings[0];
    assert!(
        f.message.contains("ghostdb"),
        "finding names the unresolved symbol: {}",
        f.message
    );
    let sarif = report.sarif_json("corpus_analyze", "crates/fscq/corpus/");
    assert!(
        sarif.contains("unknown-ref"),
        "finding reaches the SARIF export"
    );
}
