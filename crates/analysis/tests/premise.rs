//! Premise ranking: a goal-directed, stable permutation of each hint
//! database — never an addition or removal.

use std::collections::BTreeSet;

use corpus_analysis::premise::reranked_env;
use minicoq_vernac::Loader;

const SRC: &str = "Sort blob.\n\
    Definition idb (b : blob) : blob := b.\n\
    Lemma near : forall (b : blob), idb b = b.\n\
    Proof. unfold idb. reflexivity. Qed.\n\
    Lemma far : forall (n : nat), le n n.\n\
    Proof. auto. Qed.\n\
    Hint Resolve far.\n\
    Hint Resolve near.\n";

fn load() -> minicoq_vernac::loader::Development {
    let mut loader = Loader::new().check_proofs(false);
    loader.add_source("Gen", SRC);
    loader.load().unwrap()
}

#[test]
fn reranking_is_a_permutation() {
    let dev = load();
    let goal = &dev.theorem("near").unwrap().stmt;
    let ranked = reranked_env(&dev.env, goal);
    assert_eq!(dev.env.hints.len(), ranked.hints.len());
    for (db, hints) in dev.env.hints.iter() {
        let before: BTreeSet<&String> = hints.iter().collect();
        let after: BTreeSet<&String> = ranked.hints[db].iter().collect();
        assert_eq!(before, after, "db {db} changed contents");
        assert_eq!(hints.len(), ranked.hints[db].len(), "db {db} changed size");
    }
}

#[test]
fn goal_adjacent_hints_rank_first() {
    let dev = load();
    // `near`'s statement shares symbols (blob, idb) with the goal;
    // `far` lives in a disconnected nat/le component. Declaration order
    // puts far first, ranking must put near first.
    let goal = &dev.theorem("near").unwrap().stmt;
    let core = dev.env.hint_db("core");
    let pos = |db: &[String], name: &str| db.iter().position(|h| h == name).unwrap();
    assert!(pos(core, "far") < pos(core, "near"), "fixture order broke");
    let ranked = reranked_env(&dev.env, goal);
    let rcore = ranked.hint_db("core");
    assert!(
        pos(rcore, "near") < pos(rcore, "far"),
        "ranked order: {rcore:?}"
    );
}

#[test]
fn unreachable_hints_keep_declaration_order() {
    let dev = load();
    // A goal over the nat component leaves blob-side hints unreachable;
    // ties and unreachable hints preserve their relative order (stable
    // sort), keeping the permutation deterministic.
    let goal = &dev.theorem("far").unwrap().stmt;
    let ranked = reranked_env(&dev.env, goal);
    let a = reranked_env(&dev.env, goal);
    assert_eq!(
        ranked.hint_db("core"),
        a.hint_db("core"),
        "nondeterministic"
    );
}
