//! `proof-trace`: a zero-dependency tracing, metrics, and profiling layer
//! for the whole proof-search stack.
//!
//! The repo's dependency policy is vendored-offline-only, so instead of
//! pulling in `tracing`, this crate builds the three observability
//! primitives the evaluation needs from `std` alone:
//!
//! * **Spans and events** ([`span`], [`event`]) — monotonic wall-clock
//!   intervals carrying a *kind* (the phase taxonomy: `oracle`, `stm`,
//!   `preflight`, `frontier`, `cache`, `journal`, …), a name, key/value
//!   fields, and a parent id derived from a per-thread span stack.
//! * **A sharded in-memory collector** ([`collect`]) — finished records go
//!   to one of a fixed set of mutex-guarded shards picked by thread id, so
//!   parallel runner workers almost never contend. The collector is
//!   bounded: past the cap records are counted as dropped, never silently
//!   lost.
//! * **A metrics registry** ([`metrics`]) — named counters, gauges, and
//!   log₂-bucketed latency histograms with *exact* merge semantics
//!   (buckets are integer counts, so merging per-shard histograms is
//!   byte-equal to recording serially; `tests/hist_props.rs` proves it).
//!
//! Two exporters ([`export`]) turn a drained collector into artifacts: a
//! JSONL event stream (one self-describing object per line, the input to
//! the `trace_report` binary) and a Chrome trace-event JSON loadable in
//! Perfetto / `chrome://tracing`.
//!
//! # Determinism contract
//!
//! Tracing is a **side channel**. Nothing recorded here may flow back into
//! proof search, cell-cache keys, journal records, golden transcripts, or
//! any byte-compared output — timing is nondeterministic and would poison
//! them all. The instrumented crates uphold this by construction (trace
//! calls only *read* experiment state), and
//! `proof-metrics/tests/trace_determinism.rs` asserts a traced grid's
//! primary output is byte-identical to an untraced one.
//!
//! # Overhead contract
//!
//! Tracing is **off** by default. Every entry point first loads one
//! relaxed [`AtomicBool`]; when disabled, [`span`] returns an inert guard
//! without reading the clock and the hot instrumentation sites skip their
//! registry lookups entirely, so release builds pay a few branches per
//! query, not per nanosecond measured. `BENCH_eval.json` records the
//! measured on-vs-off delta for the full Table 2 grid.

pub mod collect;
pub mod export;
pub mod metrics;
pub mod report;

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

pub use collect::{drain, EventRec, Field, SpanRec, TraceData};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when the collector is armed. One relaxed atomic load — cheap
/// enough to guard every instrumentation site in release builds.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Arms or disarms the collector. Arming initializes the global collector
/// (fixing the trace epoch) if this is the first time.
pub fn set_enabled(on: bool) {
    if on {
        collect::collector();
    }
    ENABLED.store(on, Ordering::SeqCst);
}

/// A live span: records a timed interval on drop. Obtained from [`span`];
/// inert (no clock read, no allocation) when tracing is disabled.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    id: u64,
    parent: u64,
    tid: u64,
    kind: &'static str,
    name: String,
    start: Instant,
    start_ns: u64,
    fields: Vec<(&'static str, Field)>,
}

impl SpanGuard {
    /// An inert guard (what [`span`] returns when tracing is disabled).
    pub fn inert() -> SpanGuard {
        SpanGuard { active: None }
    }

    /// True when this guard will record on drop.
    pub fn is_armed(&self) -> bool {
        self.active.is_some()
    }

    /// Attaches an integer field (no-op when inert).
    pub fn field_u64(&mut self, key: &'static str, value: u64) {
        if let Some(a) = &mut self.active {
            a.fields.push((key, Field::U64(value)));
        }
    }

    /// Attaches a string field (no-op when inert; the value is only
    /// cloned when the span is live).
    pub fn field_str(&mut self, key: &'static str, value: &str) {
        if let Some(a) = &mut self.active {
            a.fields.push((key, Field::Str(value.to_string())));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else {
            return;
        };
        collect::end_span(a.id);
        let dur_ns = a.start.elapsed().as_nanos() as u64;
        collect::collector().record_span(SpanRec {
            id: a.id,
            parent: a.parent,
            tid: a.tid,
            kind: a.kind,
            name: a.name,
            start_ns: a.start_ns,
            dur_ns,
            fields: a.fields,
        });
    }
}

/// Opens a span of the given kind. The kind is the phase taxonomy key the
/// report aggregates by (`oracle`, `stm`, `preflight`, `frontier`,
/// `cache`, `journal`, `cell`, `theorem`, …; a `.`-suffix refines a phase,
/// e.g. `oracle.prompt` reports under `oracle`). The parent is whatever
/// span is currently open on this thread. Returns an inert guard — one
/// atomic load, nothing else — when tracing is disabled.
pub fn span(kind: &'static str, name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inert();
    }
    let c = collect::collector();
    let id = c.next_span_id();
    let tid = collect::current_tid();
    let parent = collect::begin_span(id);
    let start = Instant::now();
    SpanGuard {
        active: Some(ActiveSpan {
            id,
            parent,
            tid,
            kind,
            name: name.to_string(),
            start,
            start_ns: c.ns_since_epoch(start),
            fields: Vec::new(),
        }),
    }
}

/// Records an instant event of the given kind under the currently open
/// span (if any). No-op when tracing is disabled.
pub fn event(kind: &'static str, name: &str) {
    event_with(kind, name, Vec::new());
}

/// As [`event`], with fields. The field vector is only built by callers
/// that already checked [`enabled`], or passed inline (cheap when empty).
pub fn event_with(kind: &'static str, name: &str, fields: Vec<(&'static str, Field)>) {
    if !enabled() {
        return;
    }
    let c = collect::collector();
    c.record_event(EventRec {
        parent: collect::current_span(),
        tid: collect::current_tid(),
        kind,
        name: name.to_string(),
        ts_ns: c.ns_since_epoch(Instant::now()),
        fields,
    });
}

/// A stopwatch that *always* measures wall time, and additionally emits a
/// span when tracing is enabled. This is the timing primitive for call
/// sites whose measurements are load-bearing regardless of tracing — e.g.
/// the cell runner's `wall_ms`, which must be recorded identically for
/// computed, cache-hit, and crashed cells.
pub struct Stopwatch {
    start: Instant,
    span: SpanGuard,
}

impl Stopwatch {
    /// Starts timing and opens a span of the given kind (inert when
    /// tracing is disabled — the stopwatch still runs).
    pub fn span(kind: &'static str, name: &str) -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
            span: span(kind, name),
        }
    }

    /// Milliseconds elapsed since the stopwatch started.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// The underlying span guard, for attaching fields.
    pub fn span_mut(&mut self) -> &mut SpanGuard {
        &mut self.span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        assert!(!enabled());
        let mut g = span("test", "x");
        assert!(!g.is_armed());
        g.field_u64("k", 1); // no-op, must not panic
        event("test", "e");
    }

    #[test]
    fn stopwatch_measures_without_tracing() {
        let sw = Stopwatch::span("test", "t");
        assert!(sw.elapsed_ms() >= 0.0);
        assert!(!sw.span.is_armed() || enabled());
    }
}
