//! `proof-trace`: a zero-dependency tracing, metrics, and profiling layer
//! for the whole proof-search stack.
//!
//! The repo's dependency policy is vendored-offline-only, so instead of
//! pulling in `tracing`, this crate builds the three observability
//! primitives the evaluation needs from `std` alone:
//!
//! * **Spans and events** ([`span`], [`event`]) — monotonic wall-clock
//!   intervals carrying a *kind* (the phase taxonomy: `oracle`, `stm`,
//!   `preflight`, `frontier`, `cache`, `journal`, …), a name, key/value
//!   fields, and a parent id derived from a per-thread span stack.
//! * **A sharded in-memory collector** ([`collect`]) — finished records go
//!   to one of a fixed set of mutex-guarded shards picked by thread id, so
//!   parallel runner workers almost never contend. The collector is
//!   bounded: past the cap records are counted as dropped, never silently
//!   lost.
//! * **A metrics registry** ([`metrics`]) — named counters, gauges, and
//!   log₂-bucketed latency histograms with *exact* merge semantics
//!   (buckets are integer counts, so merging per-shard histograms is
//!   byte-equal to recording serially; `tests/hist_props.rs` proves it).
//!
//! Two exporters ([`export`]) turn a drained collector into artifacts: a
//! JSONL event stream (one self-describing object per line, the input to
//! the `trace_report` binary) and a Chrome trace-event JSON loadable in
//! Perfetto / `chrome://tracing`.
//!
//! # Determinism contract
//!
//! Tracing is a **side channel**. Nothing recorded here may flow back into
//! proof search, cell-cache keys, journal records, golden transcripts, or
//! any byte-compared output — timing is nondeterministic and would poison
//! them all. The instrumented crates uphold this by construction (trace
//! calls only *read* experiment state), and
//! `proof-metrics/tests/trace_determinism.rs` asserts a traced grid's
//! primary output is byte-identical to an untraced one.
//!
//! # Overhead contract
//!
//! Tracing is **off** by default. Every entry point first loads one
//! relaxed [`AtomicBool`]; when disabled, [`span`] returns an inert guard
//! without reading the clock and the hot instrumentation sites skip their
//! registry lookups entirely, so release builds pay a few branches per
//! query, not per nanosecond measured. `BENCH_eval.json` records the
//! measured on-vs-off delta for the full Table 2 grid.

pub mod attempts;
pub mod collect;
pub mod export;
pub mod expose;
pub mod ledger;
pub mod metrics;
pub mod radar;
pub mod report;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

pub use collect::{drain, EventRec, Field, SpanRec, TraceData};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when the collector is armed. One relaxed atomic load — cheap
/// enough to guard every instrumentation site in release builds.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Arms or disarms the collector. Arming initializes the global collector
/// (fixing the trace epoch) if this is the first time.
pub fn set_enabled(on: bool) {
    if on {
        collect::collector();
    }
    ENABLED.store(on, Ordering::SeqCst);
}

/// A live span: records a timed interval on drop. Obtained from [`span`];
/// inert (no clock read, no allocation) when tracing is disabled. A guard
/// from [`span_sampled`] may instead be *elided*: it records no span, but
/// still measures its duration and accumulates it into the owning
/// [`SampleSite`]'s residue so phase attribution stays exact.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
    elided: Option<ElidedSpan>,
}

struct ElidedSpan {
    site: &'static SampleSite,
    kind: &'static str,
    parent_kind: &'static str,
    start: Instant,
}

struct ActiveSpan {
    id: u64,
    parent: u64,
    tid: u64,
    kind: &'static str,
    name: String,
    start: Instant,
    start_ns: u64,
    fields: Vec<(&'static str, Field)>,
}

impl SpanGuard {
    /// An inert guard (what [`span`] returns when tracing is disabled).
    pub fn inert() -> SpanGuard {
        SpanGuard {
            active: None,
            elided: None,
        }
    }

    /// True when this guard will record on drop.
    pub fn is_armed(&self) -> bool {
        self.active.is_some()
    }

    /// Attaches an integer field (no-op when inert).
    pub fn field_u64(&mut self, key: &'static str, value: u64) {
        if let Some(a) = &mut self.active {
            a.fields.push((key, Field::U64(value)));
        }
    }

    /// Attaches a string field (no-op when inert; the value is only
    /// cloned when the span is live).
    pub fn field_str(&mut self, key: &'static str, value: &str) {
        if let Some(a) = &mut self.active {
            a.fields.push((key, Field::Str(value.to_string())));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(e) = self.elided.take() {
            let dur_ns = e.start.elapsed().as_nanos() as u64;
            collect::pop_suppress();
            e.site.accumulate(e.kind, e.parent_kind, dur_ns);
            return;
        }
        let Some(a) = self.active.take() else {
            return;
        };
        collect::end_span(a.id);
        let dur_ns = a.start.elapsed().as_nanos() as u64;
        collect::collector().record_span(SpanRec {
            id: a.id,
            parent: a.parent,
            tid: a.tid,
            kind: a.kind,
            name: a.name,
            start_ns: a.start_ns,
            dur_ns,
            fields: a.fields,
        });
    }
}

/// Opens a span of the given kind. The kind is the phase taxonomy key the
/// report aggregates by (`oracle`, `stm`, `preflight`, `frontier`,
/// `cache`, `journal`, `cell`, `theorem`, …; a `.`-suffix refines a phase,
/// e.g. `oracle.prompt` reports under `oracle`). The parent is whatever
/// span is currently open on this thread. Returns an inert guard — one
/// atomic load, nothing else — when tracing is disabled.
pub fn span(kind: &'static str, name: &str) -> SpanGuard {
    if !enabled() || collect::suppressed() {
        return SpanGuard::inert();
    }
    let c = collect::collector();
    let id = c.next_span_id();
    let tid = collect::current_tid();
    let parent = collect::begin_span(id, kind);
    let start = Instant::now();
    SpanGuard {
        active: Some(ActiveSpan {
            id,
            parent,
            tid,
            kind,
            name: name.to_string(),
            start,
            start_ns: c.ns_since_epoch(start),
            fields: Vec::new(),
        }),
        elided: None,
    }
}

/// The sampling modulus: record 1 in `rate` spans at each
/// [`span_sampled`] site. `1` disables sampling (record everything).
/// Initialized from `TRACE_SAMPLE` on first use; [`set_sample_rate`]
/// overrides at runtime (the env value is latched, so tests and A/B
/// harnesses use the setter).
pub fn sample_rate() -> u64 {
    let r = SAMPLE_RATE.load(Ordering::Relaxed);
    if r != 0 {
        return r;
    }
    let r = std::env::var("TRACE_SAMPLE")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(DEFAULT_SAMPLE_RATE);
    SAMPLE_RATE.store(r, Ordering::Relaxed);
    r
}

/// Overrides the sampling modulus (`1` = record every span; `0` resets
/// to unlatched, so the next [`sample_rate`] call re-reads
/// `TRACE_SAMPLE`).
pub fn set_sample_rate(rate: u64) {
    SAMPLE_RATE.store(rate, Ordering::SeqCst);
}

/// Default 1-in-N sampling for hot spans when `TRACE_SAMPLE` is unset.
const DEFAULT_SAMPLE_RATE: u64 = 16;

/// 0 = not yet initialized from the environment.
static SAMPLE_RATE: AtomicU64 = AtomicU64::new(0);

/// Every [`SampleSite`] that has elided at least one span, so residues can
/// be drained without enumerating call sites.
static SITES: Mutex<Vec<&'static SampleSite>> = Mutex::new(Vec::new());

/// Per-call-site sampling state: the modulus counter plus the exact
/// residue (total elided nanoseconds and span count, keyed by the parent
/// phase the elided time is misfiled under). Declared `static` at each
/// instrumentation site.
pub struct SampleSite {
    n: AtomicU64,
    registered: AtomicBool,
    acc: Mutex<Vec<ResidueSlot>>,
}

struct ResidueSlot {
    kind: &'static str,
    parent_kind: &'static str,
    ns: u64,
    count: u64,
}

impl SampleSite {
    /// A fresh site (usable in `static` position).
    pub const fn new() -> SampleSite {
        SampleSite {
            n: AtomicU64::new(0),
            registered: AtomicBool::new(false),
            acc: Mutex::new(Vec::new()),
        }
    }

    fn accumulate(&'static self, kind: &'static str, parent_kind: &'static str, ns: u64) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            lock_sites().push(self);
        }
        let mut acc = self.acc.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(slot) = acc
            .iter_mut()
            .find(|s| s.kind == kind && s.parent_kind == parent_kind)
        {
            slot.ns += ns;
            slot.count += 1;
        } else {
            acc.push(ResidueSlot {
                kind,
                parent_kind,
                ns,
                count: 1,
            });
        }
    }
}

impl Default for SampleSite {
    fn default() -> SampleSite {
        SampleSite::new()
    }
}

fn lock_sites() -> std::sync::MutexGuard<'static, Vec<&'static SampleSite>> {
    SITES.lock().unwrap_or_else(|p| p.into_inner())
}

/// Exact accounting for spans a [`SampleSite`] elided: `ns` nanoseconds
/// across `count` spans of phase `phase` whose recorded time would
/// otherwise be misattributed to `parent_phase` self-time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampledResidue {
    /// Phase of the elided spans (prefix of the site's kind before `.`).
    pub phase: String,
    /// Phase of the nearest *recorded* ancestor span (empty for roots).
    pub parent_phase: String,
    /// Total elided wall time in nanoseconds.
    pub ns: u64,
    /// Number of elided spans.
    pub count: u64,
}

fn phase_of(kind: &str) -> &str {
    kind.split('.').next().unwrap_or(kind)
}

/// Aggregates every site's residue by (phase, parent phase), sorted for
/// deterministic export order. `reset` clears the accumulators (what
/// [`collect::drain`] does); a scrape passes `false` for a live view.
pub fn take_residues(reset: bool) -> Vec<SampledResidue> {
    let mut by_key: std::collections::BTreeMap<(String, String), (u64, u64)> =
        std::collections::BTreeMap::new();
    let sites: Vec<&'static SampleSite> = lock_sites().clone();
    for site in sites {
        let mut acc = site.acc.lock().unwrap_or_else(|p| p.into_inner());
        for slot in acc.iter() {
            let key = (
                phase_of(slot.kind).to_string(),
                phase_of(slot.parent_kind).to_string(),
            );
            let e = by_key.entry(key).or_insert((0, 0));
            e.0 += slot.ns;
            e.1 += slot.count;
        }
        if reset {
            acc.clear();
        }
    }
    by_key
        .into_iter()
        .map(|((phase, parent_phase), (ns, count))| SampledResidue {
            phase,
            parent_phase,
            ns,
            count,
        })
        .collect()
}

/// Non-destructive view of the current residues (for `/metrics`).
pub fn peek_residues() -> Vec<SampledResidue> {
    take_residues(false)
}

/// Opens a span of the given kind at a *sampled* site: 1 in
/// [`sample_rate`] calls records a real span (exactly like [`span`]); the
/// rest return an **elided** guard that records nothing, suppresses every
/// span and event in its subtree, and on drop adds its exact duration to
/// the site's residue, keyed by the phase of the nearest recorded
/// ancestor. `report::phase_breakdown_full` moves that time back to this
/// site's phase, so sampling changes trace *volume*, never phase totals.
/// Registry counters at the call site are untouched and stay exact.
pub fn span_sampled(site: &'static SampleSite, kind: &'static str, name: &str) -> SpanGuard {
    if !enabled() || collect::suppressed() {
        return SpanGuard::inert();
    }
    let rate = sample_rate();
    if rate <= 1 || site.n.fetch_add(1, Ordering::Relaxed).is_multiple_of(rate) {
        return span(kind, name);
    }
    let parent_kind = collect::current_span_kind().unwrap_or("");
    collect::push_suppress();
    SpanGuard {
        active: None,
        elided: Some(ElidedSpan {
            site,
            kind,
            parent_kind,
            start: Instant::now(),
        }),
    }
}

/// Records an instant event of the given kind under the currently open
/// span (if any). No-op when tracing is disabled.
pub fn event(kind: &'static str, name: &str) {
    event_with(kind, name, Vec::new());
}

/// As [`event`], with fields. The field vector is only built by callers
/// that already checked [`enabled`], or passed inline (cheap when empty).
pub fn event_with(kind: &'static str, name: &str, fields: Vec<(&'static str, Field)>) {
    if !enabled() || collect::suppressed() {
        return;
    }
    let c = collect::collector();
    c.record_event(EventRec {
        parent: collect::current_span(),
        tid: collect::current_tid(),
        kind,
        name: name.to_string(),
        ts_ns: c.ns_since_epoch(Instant::now()),
        fields,
    });
}

/// A stopwatch that *always* measures wall time, and additionally emits a
/// span when tracing is enabled. This is the timing primitive for call
/// sites whose measurements are load-bearing regardless of tracing — e.g.
/// the cell runner's `wall_ms`, which must be recorded identically for
/// computed, cache-hit, and crashed cells.
pub struct Stopwatch {
    start: Instant,
    span: SpanGuard,
}

impl Stopwatch {
    /// Starts timing and opens a span of the given kind (inert when
    /// tracing is disabled — the stopwatch still runs).
    pub fn span(kind: &'static str, name: &str) -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
            span: span(kind, name),
        }
    }

    /// Milliseconds elapsed since the stopwatch started.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// The underlying span guard, for attaching fields.
    pub fn span_mut(&mut self) -> &mut SpanGuard {
        &mut self.span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        assert!(!enabled());
        let mut g = span("test", "x");
        assert!(!g.is_armed());
        g.field_u64("k", 1); // no-op, must not panic
        event("test", "e");
    }

    #[test]
    fn stopwatch_measures_without_tracing() {
        let sw = Stopwatch::span("test", "t");
        assert!(sw.elapsed_ms() >= 0.0);
        assert!(!sw.span.is_armed() || enabled());
    }
}
