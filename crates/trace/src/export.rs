//! Exporters: the JSONL event stream and Chrome trace-event JSON.
//!
//! Both formats are written with a hand-rolled escaper (this crate is
//! dependency-free); the shapes are deliberately boring:
//!
//! * **JSONL** — one self-describing object per line: a `meta` header,
//!   then `span`, `event`, `counter`, `gauge`, and `hist` lines. This is
//!   the lossless artifact the `trace_report` binary consumes.
//! * **Chrome trace-event JSON** — an object with a `traceEvents` array of
//!   complete (`"ph":"X"`) span events and instant (`"ph":"i"`) events,
//!   plus process/thread-name metadata, loadable in Perfetto or
//!   `chrome://tracing`. Timestamps are microseconds with sub-µs decimals,
//!   so nothing is rounded away.

use std::io::{BufWriter, Write};
use std::path::Path;

use crate::collect::{Field, TraceData};
use crate::metrics::MetricsSnapshot;

/// JSON-escapes `s` into `out` (quotes included).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_json_str(&mut out, s);
    out
}

/// Renders a field map as a JSON object.
fn fields_json(fields: &[(&'static str, Field)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, k);
        out.push(':');
        match v {
            Field::U64(n) => out.push_str(&n.to_string()),
            Field::Str(s) => push_json_str(&mut out, s),
        }
    }
    out.push('}');
    out
}

/// Microsecond timestamp with nanosecond decimals, as Chrome expects.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Writes the JSONL event stream: a `meta` line, every span and event,
/// then the metrics registry snapshot.
pub fn write_jsonl(
    path: impl AsRef<Path>,
    data: &TraceData,
    metrics: &MetricsSnapshot,
) -> std::io::Result<()> {
    if let Some(dir) = path.as_ref().parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        w,
        "{{\"t\":\"meta\",\"spans\":{},\"events\":{},\"dropped\":{}}}",
        data.spans.len(),
        data.events.len(),
        data.dropped
    )?;
    for s in &data.spans {
        writeln!(
            w,
            "{{\"t\":\"span\",\"id\":{},\"parent\":{},\"tid\":{},\"kind\":{},\"name\":{},\"start_ns\":{},\"dur_ns\":{},\"fields\":{}}}",
            s.id,
            s.parent,
            s.tid,
            json_str(s.kind),
            json_str(&s.name),
            s.start_ns,
            s.dur_ns,
            fields_json(&s.fields)
        )?;
    }
    for e in &data.events {
        writeln!(
            w,
            "{{\"t\":\"event\",\"parent\":{},\"tid\":{},\"kind\":{},\"name\":{},\"ts_ns\":{},\"fields\":{}}}",
            e.parent,
            e.tid,
            json_str(e.kind),
            json_str(&e.name),
            e.ts_ns,
            fields_json(&e.fields)
        )?;
    }
    for (name, v) in &metrics.counters {
        writeln!(
            w,
            "{{\"t\":\"counter\",\"name\":{},\"value\":{v}}}",
            json_str(name)
        )?;
    }
    for (name, v) in &metrics.gauges {
        writeln!(
            w,
            "{{\"t\":\"gauge\",\"name\":{},\"value\":{v}}}",
            json_str(name)
        )?;
    }
    for (name, h) in &metrics.hists {
        let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
        writeln!(
            w,
            "{{\"t\":\"hist\",\"name\":{},\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
            json_str(name),
            h.count,
            h.sum,
            buckets.join(",")
        )?;
    }
    for r in &data.sampled {
        writeln!(
            w,
            "{{\"t\":\"sampled\",\"phase\":{},\"parent_phase\":{},\"ns\":{},\"count\":{}}}",
            json_str(&r.phase),
            json_str(&r.parent_phase),
            r.ns,
            r.count
        )?;
    }
    w.flush()
}

/// Sanitizes a collapsed-stack frame label: `;` separates frames and the
/// trailing space separates the value, so both are replaced.
fn flame_frame(kind: &str, name: &str) -> String {
    let raw = if name.is_empty() {
        kind.to_string()
    } else {
        format!("{kind}:{name}")
    };
    raw.chars()
        .map(|c| match c {
            ';' | ' ' | '\n' | '\r' | '\t' => '_',
            c => c,
        })
        .collect()
}

/// Renders spans as collapsed stacks (the `inferno` / `flamegraph.pl` /
/// speedscope input format): one `frame;frame;frame value` line per
/// distinct root-to-leaf path, value = **self time in microseconds**
/// (duration minus recorded children), identical stacks merged, lines
/// sorted so output is a function of the span data alone. Spans whose
/// parent was dropped by the collector cap surface as roots.
pub fn collapsed_stacks(spans: &[crate::SpanRec]) -> String {
    use std::collections::BTreeMap;
    use std::collections::HashMap;
    let by_id: HashMap<u64, &crate::SpanRec> = spans.iter().map(|s| (s.id, s)).collect();
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    for s in spans {
        if s.parent != 0 && by_id.contains_key(&s.parent) {
            *child_ns.entry(s.parent).or_insert(0) += s.dur_ns;
        }
    }
    let mut merged: BTreeMap<String, u64> = BTreeMap::new();
    for s in spans {
        let self_ns = s
            .dur_ns
            .saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
        let self_us = self_ns / 1_000;
        if self_us == 0 {
            continue;
        }
        let mut frames = vec![flame_frame(s.kind, &s.name)];
        let mut cur = s.parent;
        let mut hops = 0;
        while cur != 0 && hops < 512 {
            let Some(p) = by_id.get(&cur) else { break };
            frames.push(flame_frame(p.kind, &p.name));
            cur = p.parent;
            hops += 1;
        }
        frames.reverse();
        *merged.entry(frames.join(";")).or_insert(0) += self_us;
    }
    let mut out = String::new();
    for (stack, us) in merged {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

/// Writes [`collapsed_stacks`] to a file.
pub fn write_collapsed(path: impl AsRef<Path>, spans: &[crate::SpanRec]) -> std::io::Result<()> {
    if let Some(dir) = path.as_ref().parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, collapsed_stacks(spans))
}

/// Writes Chrome trace-event JSON: thread-name metadata, one complete
/// (`X`) event per span, one instant (`i`) event per trace event. All
/// spans share `pid` 1; `tid` is the trace-local thread id.
pub fn write_chrome(path: impl AsRef<Path>, data: &TraceData) -> std::io::Result<()> {
    if let Some(dir) = path.as_ref().parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
    let mut first = true;
    let mut emit = |w: &mut BufWriter<std::fs::File>, line: &str| -> std::io::Result<()> {
        if first {
            first = false;
            writeln!(w, "{line}")
        } else {
            writeln!(w, ",{line}")
        }
    };
    emit(
        &mut w,
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"proof-search\"}}",
    )?;
    let mut tids: Vec<u64> = data
        .spans
        .iter()
        .map(|s| s.tid)
        .chain(data.events.iter().map(|e| e.tid))
        .collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in &tids {
        emit(
            &mut w,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\"trace-thread-{tid}\"}}}}"
            ),
        )?;
    }
    for s in &data.spans {
        let display = if s.name.is_empty() {
            s.kind.to_string()
        } else {
            format!("{}: {}", s.kind, s.name)
        };
        emit(
            &mut w,
            &format!(
                "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{}}}",
                json_str(&display),
                json_str(s.kind),
                us(s.start_ns),
                us(s.dur_ns),
                s.tid,
                fields_json(&s.fields)
            ),
        )?;
    }
    for e in &data.events {
        let display = if e.name.is_empty() {
            e.kind.to_string()
        } else {
            format!("{}: {}", e.kind, e.name)
        };
        emit(
            &mut w,
            &format!(
                "{{\"name\":{},\"cat\":{},\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{}}}",
                json_str(&display),
                json_str(e.kind),
                us(e.ts_ns),
                e.tid,
                fields_json(&e.fields)
            ),
        )?;
    }
    writeln!(w, "]}}")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{EventRec, SpanRec};

    #[test]
    fn escaping_covers_controls_and_quotes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn us_renders_sub_microsecond() {
        assert_eq!(us(1_234_567), "1234.567");
        assert_eq!(us(999), "0.999");
    }

    #[test]
    fn writers_produce_files() {
        let dir = std::env::temp_dir().join(format!("trace-export-{}", std::process::id()));
        let data = TraceData {
            spans: vec![SpanRec {
                id: 1,
                parent: 0,
                tid: 1,
                kind: "cell",
                name: "A \"quoted\"".into(),
                start_ns: 10,
                dur_ns: 1_000_000,
                fields: vec![("theorems", Field::U64(3))],
            }],
            events: vec![EventRec {
                parent: 1,
                tid: 1,
                kind: "cache",
                name: "miss".into(),
                ts_ns: 20,
                fields: vec![],
            }],
            dropped: 0,
            sampled: vec![],
        };
        let snap = MetricsSnapshot::default();
        let jsonl = dir.join("t.jsonl");
        let chrome = dir.join("t.json");
        write_jsonl(&jsonl, &data, &snap).unwrap();
        write_chrome(&chrome, &data).unwrap();
        let j = std::fs::read_to_string(&jsonl).unwrap();
        assert!(j.starts_with("{\"t\":\"meta\""));
        assert!(j.contains("\"kind\":\"cell\""));
        let c = std::fs::read_to_string(&chrome).unwrap();
        assert!(c.contains("\"traceEvents\""));
        assert!(c.contains("\"ph\":\"X\""));
        assert!(c.contains("\"ph\":\"i\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
