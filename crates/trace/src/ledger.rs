//! The append-only run ledger: one line per bench-bin run, forever.
//!
//! `BENCH_eval.json` is a *snapshot* — every run overwrites it, so the
//! perf trajectory across commits is invisible. The ledger fixes that:
//! every bench bin appends one [`RunRecord`] (git sha, corpus content
//! hash, throughput, proved fraction, cache and fault counters, per-phase
//! self time) to `telemetry/RUNS.jsonl` and never rewrites history. The
//! `radar` bin reads it back and runs a changepoint test over the last-k
//! runs of each series ([`crate::radar`]).
//!
//! Crash safety reuses the `metrics::journal` torn-tail discipline: each
//! line is an envelope `{"ev":"run","v":N,"checksum":...,"payload":...}`
//! whose payload rides as an FNV-1a-checksummed escaped JSON string; an
//! append first terminates a torn final line, and the loader skips any
//! line that fails to parse or checksum. A crash can cost at most the one
//! record being written, never the ledger.
//!
//! This crate is dependency-free, so the module carries its own small
//! recursive-descent JSON parser — enough to read back what it writes
//! (and any hand-edited record that is still valid JSON).

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::export::json_str;

/// Ledger envelope schema version.
pub const LEDGER_SCHEMA: u64 = 1;

/// Default ledger path, relative to the repo root.
pub const DEFAULT_LEDGER_PATH: &str = "telemetry/RUNS.jsonl";

/// FNV-1a over a byte string (same parameters as `metrics::journal`; the
/// trace crate is dependency-free so it carries its own copy).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One bench-bin run, as the ledger records it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunRecord {
    /// Seconds since the Unix epoch when the record was appended.
    pub ts_unix: u64,
    /// The bench binary (`table2`, `perf_gate`, `gen`, `incr`,
    /// `trace_overhead`, …).
    pub bin: String,
    /// Run label within the bin (cell lineup, subcommand).
    pub label: String,
    /// Variant tag — the series key alongside `bin` (e.g. `perf-gate`,
    /// `gen:<fingerprint>`); empty for the default lineup.
    pub variant: String,
    /// `git rev-parse --short=12 HEAD` at run time (or `GIT_SHA`,
    /// or `unknown`).
    pub git_sha: String,
    /// Content hash of the corpus/environment the run evaluated.
    pub corpus_hash: String,
    /// Cell-level worker parallelism.
    pub jobs: u64,
    /// Theorem evaluations across all cells of the run.
    pub theorems: u64,
    /// How many of them ended `proved`.
    pub proved: u64,
    /// End-to-end wall time of the measured work, milliseconds.
    pub wall_ms: f64,
    /// Aggregate throughput (theorems / wall seconds).
    pub thm_per_sec: f64,
    /// Cells served from the cell cache.
    pub cache_hits: u64,
    /// Cells computed (cache miss, journal replay, or fresh).
    pub cache_misses: u64,
    /// Injected oracle faults observed (`search.oracle_faults`).
    pub oracle_faults: u64,
    /// Oracle retries performed (`search.oracle_retries`).
    pub oracle_retries: u64,
    /// Trace records dropped at the collector cap (0 when untraced).
    pub dropped_spans: u64,
    /// Extra named counters worth trending (interner dedup stats, …).
    pub counters: BTreeMap<String, u64>,
    /// Per-phase self time in milliseconds, rolled up from the trace
    /// (empty when the run was untraced).
    pub phase_self_ms: BTreeMap<String, f64>,
}

impl RunRecord {
    /// Proved fraction (0 when the run evaluated nothing).
    pub fn proved_fraction(&self) -> f64 {
        if self.theorems == 0 {
            0.0
        } else {
            self.proved as f64 / self.theorems as f64
        }
    }

    /// The series this record belongs to: `bin` plus the variant tag.
    pub fn series(&self) -> String {
        if self.variant.is_empty() {
            self.bin.clone()
        } else {
            format!("{}/{}", self.bin, self.variant)
        }
    }

    /// Serializes the record as a single JSON line (the envelope payload).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let push_field = |out: &mut String, key: &str, value: String| {
            if out.len() > 1 {
                out.push(',');
            }
            out.push_str(&json_str(key));
            out.push(':');
            out.push_str(&value);
        };
        push_field(&mut out, "ts_unix", self.ts_unix.to_string());
        push_field(&mut out, "bin", json_str(&self.bin));
        push_field(&mut out, "label", json_str(&self.label));
        push_field(&mut out, "variant", json_str(&self.variant));
        push_field(&mut out, "git_sha", json_str(&self.git_sha));
        push_field(&mut out, "corpus_hash", json_str(&self.corpus_hash));
        push_field(&mut out, "jobs", self.jobs.to_string());
        push_field(&mut out, "theorems", self.theorems.to_string());
        push_field(&mut out, "proved", self.proved.to_string());
        push_field(&mut out, "wall_ms", fmt_f64(self.wall_ms));
        push_field(&mut out, "thm_per_sec", fmt_f64(self.thm_per_sec));
        push_field(&mut out, "cache_hits", self.cache_hits.to_string());
        push_field(&mut out, "cache_misses", self.cache_misses.to_string());
        push_field(&mut out, "oracle_faults", self.oracle_faults.to_string());
        push_field(&mut out, "oracle_retries", self.oracle_retries.to_string());
        push_field(&mut out, "dropped_spans", self.dropped_spans.to_string());
        let mut counters = String::from("{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                counters.push(',');
            }
            counters.push_str(&json_str(k));
            counters.push(':');
            counters.push_str(&v.to_string());
        }
        counters.push('}');
        push_field(&mut out, "counters", counters);
        let mut phases = String::from("{");
        for (i, (k, v)) in self.phase_self_ms.iter().enumerate() {
            if i > 0 {
                phases.push(',');
            }
            phases.push_str(&json_str(k));
            phases.push(':');
            phases.push_str(&fmt_f64(*v));
        }
        phases.push('}');
        push_field(&mut out, "phase_self_ms", phases);
        out.push('}');
        out
    }

    /// Parses a record from its JSON form. Unknown fields are ignored and
    /// missing fields default, so old readers survive new writers and
    /// vice versa.
    pub fn from_json(text: &str) -> Option<RunRecord> {
        let Json::Obj(fields) = parse_json(text).ok()? else {
            return None;
        };
        let mut r = RunRecord::default();
        for (k, v) in fields {
            match (k.as_str(), v) {
                ("ts_unix", Json::Num(n)) => r.ts_unix = n as u64,
                ("bin", Json::Str(s)) => r.bin = s,
                ("label", Json::Str(s)) => r.label = s,
                ("variant", Json::Str(s)) => r.variant = s,
                ("git_sha", Json::Str(s)) => r.git_sha = s,
                ("corpus_hash", Json::Str(s)) => r.corpus_hash = s,
                ("jobs", Json::Num(n)) => r.jobs = n as u64,
                ("theorems", Json::Num(n)) => r.theorems = n as u64,
                ("proved", Json::Num(n)) => r.proved = n as u64,
                ("wall_ms", Json::Num(n)) => r.wall_ms = n,
                ("thm_per_sec", Json::Num(n)) => r.thm_per_sec = n,
                ("cache_hits", Json::Num(n)) => r.cache_hits = n as u64,
                ("cache_misses", Json::Num(n)) => r.cache_misses = n as u64,
                ("oracle_faults", Json::Num(n)) => r.oracle_faults = n as u64,
                ("oracle_retries", Json::Num(n)) => r.oracle_retries = n as u64,
                ("dropped_spans", Json::Num(n)) => r.dropped_spans = n as u64,
                ("counters", Json::Obj(m)) => {
                    for (ck, cv) in m {
                        if let Json::Num(n) = cv {
                            r.counters.insert(ck, n as u64);
                        }
                    }
                }
                ("phase_self_ms", Json::Obj(m)) => {
                    for (pk, pv) in m {
                        if let Json::Num(n) = pv {
                            r.phase_self_ms.insert(pk, n);
                        }
                    }
                }
                _ => {}
            }
        }
        Some(r)
    }
}

/// Shortest-faithful float formatting for the ledger (finite; NaN and
/// infinities write as 0 — no run metric legitimately produces them).
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    let s = format!("{v}");
    // `{}` on f64 is already round-trip shortest in Rust.
    s
}

/// Seconds since the Unix epoch, 0 if the clock is before it.
pub fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// The current commit's short sha: `GIT_SHA` env override (CI sets it),
/// else `git rev-parse --short=12 HEAD`, else `unknown`.
pub fn git_sha() -> String {
    if let Ok(sha) = std::env::var("GIT_SHA") {
        let sha = sha.trim().to_string();
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The append-only run ledger at a fixed path.
#[derive(Debug, Clone)]
pub struct Ledger {
    path: PathBuf,
}

impl Ledger {
    /// A ledger at `path`. Nothing is created until the first append.
    pub fn at(path: impl Into<PathBuf>) -> Ledger {
        Ledger { path: path.into() }
    }

    /// The ledger honored by bench bins: `LEDGER_PATH` env override, else
    /// [`DEFAULT_LEDGER_PATH`].
    pub fn from_env() -> Ledger {
        let path = std::env::var("LEDGER_PATH")
            .ok()
            .filter(|p| !p.trim().is_empty())
            .unwrap_or_else(|| DEFAULT_LEDGER_PATH.to_string());
        Ledger::at(path)
    }

    /// The ledger's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record. Best-effort (the ledger must never take down
    /// the run it observes); returns whether the write succeeded.
    pub fn append(&self, record: &RunRecord) -> bool {
        let payload = record.to_json();
        let line = format!(
            "{{\"ev\":\"run\",\"v\":{LEDGER_SCHEMA},\"checksum\":\"{:016x}\",\"payload\":{}}}",
            fnv1a(payload.as_bytes()),
            json_str(&payload)
        );
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(dir);
            }
        }
        // Torn-tail repair, exactly as metrics::journal: a process that
        // died mid-write leaves no trailing newline; terminate that line
        // first or this record would merge into it and both would be lost.
        let needs_repair = std::fs::read(&self.path)
            .map(|bytes| !bytes.is_empty() && bytes.last() != Some(&b'\n'))
            .unwrap_or(false);
        let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
        else {
            return false;
        };
        if needs_repair && writeln!(f).is_err() {
            return false;
        }
        writeln!(f, "{line}").is_ok()
    }

    /// Loads every valid record, in file (= chronological) order. Missing
    /// file yields the empty ledger; unparseable or checksum-failing
    /// lines are skipped.
    pub fn load(&self) -> Vec<RunRecord> {
        let Ok(text) = std::fs::read_to_string(&self.path) else {
            return Vec::new();
        };
        let mut records = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(Json::Obj(fields)) = parse_json(line) else {
                continue;
            };
            let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
            if get("ev").and_then(Json::as_str) != Some("run") {
                continue;
            }
            let Some(payload) = get("payload").and_then(Json::as_str) else {
                continue;
            };
            let Some(stored) = get("checksum").and_then(Json::as_str) else {
                continue;
            };
            if format!("{:016x}", fnv1a(payload.as_bytes())) != stored {
                continue;
            }
            if let Some(r) = RunRecord::from_json(payload) {
                records.push(r);
            }
        }
        records
    }
}

// ---------------------------------------------------------------------------
// A minimal JSON value + recursive-descent parser (read path only; the
// write path is the hand-rolled serializer above, as everywhere else in
// this crate).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (f64 is exact for every magnitude the ledger writes).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing content is an error).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing content at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.i))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let v = self.value()?;
            fields.push((key, v));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.b[self.i..].starts_with(b"\\u") {
                                    self.i += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                    } else {
                                        0xFFFD
                                    }
                                } else {
                                    0xFFFD
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                0xFFFD
                            } else {
                                hi
                            };
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                }
                c if c < 0x20 => return Err("control byte in string".to_string()),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the bytes
                    // are valid — find the char that starts one byte back.
                    let start = self.i - 1;
                    let mut end = self.i;
                    while end < self.b.len() && (self.b[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.b[start..end])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    out.push_str(s);
                    self.i = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.i + 4 > self.b.len() {
            return Err("short \\u escape".to_string());
        }
        let s = std::str::from_utf8(&self.b[self.i..self.i + 4])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.i += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).map_err(|_| "bad number")?;
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{s}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunRecord {
        RunRecord {
            ts_unix: 1_754_000_000,
            bin: "table2".into(),
            label: "grid \"quoted\"".into(),
            variant: String::new(),
            git_sha: "abc123def456".into(),
            corpus_hash: "0011223344556677".into(),
            jobs: 2,
            theorems: 294,
            proved: 106,
            wall_ms: 3120.5,
            thm_per_sec: 94.23,
            cache_hits: 3,
            cache_misses: 7,
            oracle_faults: 0,
            oracle_retries: 0,
            dropped_spans: 0,
            counters: [("intern.hits".to_string(), 42u64)].into_iter().collect(),
            phase_self_ms: [("oracle".to_string(), 1200.25)].into_iter().collect(),
        }
    }

    fn temp_ledger(name: &str) -> Ledger {
        let p = std::env::temp_dir().join(format!("ledger-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        Ledger::at(p)
    }

    #[test]
    fn record_roundtrips() {
        let r = sample();
        let parsed = RunRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(r, parsed);
    }

    #[test]
    fn append_load_roundtrip_and_torn_tail() {
        let l = temp_ledger("roundtrip");
        assert!(l.append(&sample()));
        let mut second = sample();
        second.bin = "perf_gate".into();
        assert!(l.append(&second));
        assert_eq!(l.load().len(), 2);
        // Tear the last line mid-write; the first record must survive and
        // the next append must repair the tail.
        let text = std::fs::read_to_string(l.path()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        std::fs::write(
            l.path(),
            format!("{}\n{}", lines[0], &lines[1][..lines[1].len() / 2]),
        )
        .unwrap();
        assert_eq!(l.load().len(), 1);
        assert!(l.append(&sample()));
        let loaded = l.load();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].bin, "table2");
        let _ = std::fs::remove_file(l.path());
    }

    #[test]
    fn checksum_mismatch_is_skipped() {
        let l = temp_ledger("checksum");
        l.append(&sample());
        let text = std::fs::read_to_string(l.path()).unwrap();
        let tampered = text.replacen("\"checksum\":\"", "\"checksum\":\"f", 1);
        assert_ne!(tampered, text);
        std::fs::write(l.path(), tampered).unwrap();
        assert!(l.load().is_empty());
        let _ = std::fs::remove_file(l.path());
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v =
            parse_json(r#"{"a":[1,2.5,-3e2],"b":"q\"\\\nA😀","c":{"d":null,"e":true}}"#).unwrap();
        let Json::Obj(fields) = v else { panic!() };
        assert_eq!(
            fields[0].1,
            Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-300.0)])
        );
        assert_eq!(fields[1].1, Json::Str("q\"\\\nA😀".to_string()));
    }

    #[test]
    fn series_key_includes_variant() {
        let mut r = sample();
        assert_eq!(r.series(), "table2");
        r.variant = "perf-gate".into();
        assert_eq!(r.series(), "table2/perf-gate");
    }
}
