//! The attempt log: one checksummed JSONL record per search attempt.
//!
//! `prove --attempt-log` and grid runs (when an attempt sink is
//! installed) emit one record for every tactic the searcher charged
//! against a theorem — the proposed tactic, its extracted premise
//! argument, the feature-schema id the miner should decode it with, the
//! commit outcome, and the expansion count/depth at which it was tried.
//! `rank train` folds these into bucket counts; the `cold-hint` analysis
//! pass audits hint databases against them.
//!
//! The wire format mirrors [`crate::ledger`]: each line is an envelope
//! `{"ev":"attempt","v":N,"checksum":...,"payload":...}` whose payload
//! rides as an FNV-1a-checksummed escaped JSON string, with the same
//! torn-tail repair on append and checksum-verified skip on load. Like
//! everything in this crate, attempt logging is a side channel: records
//! are *read* from finished searches and must never flow back into
//! search behavior, cache keys, or byte-compared outputs.

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::export::json_str;
use crate::ledger::{fnv1a, parse_json, Json};

/// Attempt-log schema version (the envelope `v`).
pub const ATTEMPTS_SCHEMA: u64 = 1;

/// One charged search attempt.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttemptRecord {
    /// Theorem under search.
    pub theorem: String,
    /// The proposed tactic, verbatim.
    pub tactic: String,
    /// The tactic's premise (lemma) argument, empty when none.
    pub premise: String,
    /// Feature-encoding schema the miner should use for this record.
    pub features_schema: u64,
    /// Commit outcome: `applied`, `proved`, `duplicate`, `timeout`,
    /// `preflight`, or `rejected`.
    pub outcome: String,
    /// Expansions charged before this attempt was tried.
    pub expansions: u64,
    /// Depth of the parent node in the proof tree.
    pub depth: u64,
    /// Oracle query index the attempt came from.
    pub query: u64,
    /// Whether the attempt lies on the final proved script's path.
    pub on_path: bool,
}

impl AttemptRecord {
    /// Hand-rolled serializer (this crate is dependency-free).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"theorem\":{},\"tactic\":{},\"premise\":{},\"features_schema\":{},\
             \"outcome\":{},\"expansions\":{},\"depth\":{},\"query\":{},\"on_path\":{}}}",
            json_str(&self.theorem),
            json_str(&self.tactic),
            json_str(&self.premise),
            self.features_schema,
            json_str(&self.outcome),
            self.expansions,
            self.depth,
            self.query,
            self.on_path
        )
    }

    /// Tolerant parse of [`to_json`](Self::to_json) output: missing
    /// fields default, unknown fields are ignored.
    pub fn from_json(text: &str) -> Option<AttemptRecord> {
        let Ok(Json::Obj(fields)) = parse_json(text) else {
            return None;
        };
        let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let str_of = |name: &str| get(name).and_then(Json::as_str).unwrap_or("").to_string();
        let num_of = |name: &str| get(name).and_then(Json::as_u64).unwrap_or(0);
        Some(AttemptRecord {
            theorem: str_of("theorem"),
            tactic: str_of("tactic"),
            premise: str_of("premise"),
            features_schema: num_of("features_schema"),
            outcome: str_of("outcome"),
            expansions: num_of("expansions"),
            depth: num_of("depth"),
            query: num_of("query"),
            on_path: matches!(get("on_path"), Some(Json::Bool(true))),
        })
    }
}

/// An append-only attempt log at a fixed path.
#[derive(Debug, Clone)]
pub struct AttemptLog {
    path: PathBuf,
}

impl AttemptLog {
    /// A log at an explicit path.
    pub fn at(path: impl Into<PathBuf>) -> AttemptLog {
        AttemptLog { path: path.into() }
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends records in order under one file handle, so one theorem's
    /// attempts land contiguously even with concurrent writers taking
    /// turns. Best-effort; returns whether every write succeeded.
    pub fn append_all(&self, records: &[AttemptRecord]) -> bool {
        if records.is_empty() {
            return true;
        }
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(dir);
            }
        }
        // Torn-tail repair, exactly as ledger::append.
        let needs_repair = std::fs::read(&self.path)
            .map(|bytes| !bytes.is_empty() && bytes.last() != Some(&b'\n'))
            .unwrap_or(false);
        let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
        else {
            return false;
        };
        if needs_repair && writeln!(f).is_err() {
            return false;
        }
        for r in records {
            let payload = r.to_json();
            let line = format!(
                "{{\"ev\":\"attempt\",\"v\":{ATTEMPTS_SCHEMA},\"checksum\":\"{:016x}\",\"payload\":{}}}",
                fnv1a(payload.as_bytes()),
                json_str(&payload)
            );
            if writeln!(f, "{line}").is_err() {
                return false;
            }
        }
        true
    }

    /// Loads every valid record in file order; unparseable or
    /// checksum-failing lines are skipped.
    pub fn load(&self) -> Vec<AttemptRecord> {
        let Ok(text) = std::fs::read_to_string(&self.path) else {
            return Vec::new();
        };
        let mut records = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(Json::Obj(fields)) = parse_json(line) else {
                continue;
            };
            let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
            if get("ev").and_then(Json::as_str) != Some("attempt") {
                continue;
            }
            let Some(payload) = get("payload").and_then(Json::as_str) else {
                continue;
            };
            let Some(stored) = get("checksum").and_then(Json::as_str) else {
                continue;
            };
            if format!("{:016x}", fnv1a(payload.as_bytes())) != stored {
                continue;
            }
            if let Some(r) = AttemptRecord::from_json(payload) {
                records.push(r);
            }
        }
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_log(tag: &str) -> AttemptLog {
        let dir = std::env::temp_dir().join(format!("attempts-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        AttemptLog::at(dir.join("attempts.jsonl"))
    }

    fn rec(theorem: &str, tactic: &str, on_path: bool) -> AttemptRecord {
        AttemptRecord {
            theorem: theorem.to_string(),
            tactic: tactic.to_string(),
            premise: "app_nil_l".to_string(),
            features_schema: 1,
            outcome: if on_path { "proved" } else { "rejected" }.to_string(),
            expansions: 7,
            depth: 2,
            query: 3,
            on_path,
        }
    }

    #[test]
    fn round_trips_through_json() {
        let r = rec("app_nil_l", "apply app_nil_l", true);
        assert_eq!(AttemptRecord::from_json(&r.to_json()), Some(r));
    }

    #[test]
    fn append_load_round_trip_preserves_order() {
        let log = temp_log("order");
        let records = vec![
            rec("a", "intros", false),
            rec("a", "apply app_nil_l", true),
            rec("b", "rewrite <- app_nil_l", false),
        ];
        assert!(log.append_all(&records));
        assert_eq!(log.load(), records);
        let _ = std::fs::remove_dir_all(log.path().parent().unwrap());
    }

    #[test]
    fn tampered_lines_are_skipped_and_torn_tail_repaired() {
        let log = temp_log("tamper");
        assert!(log.append_all(&[rec("a", "intros", false), rec("b", "lia", true)]));
        let text = std::fs::read_to_string(log.path()).unwrap();
        let tampered = text.replacen("\"checksum\":\"", "\"checksum\":\"f", 1);
        // Also tear the tail: drop the final newline.
        std::fs::write(log.path(), tampered.trim_end_matches('\n')).unwrap();
        assert!(log.append_all(&[rec("c", "auto", false)]));
        let loaded = log.load();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].theorem, "b");
        assert_eq!(loaded[1].theorem, "c");
        let _ = std::fs::remove_dir_all(log.path().parent().unwrap());
    }

    #[test]
    fn escapes_survive_the_envelope() {
        let log = temp_log("escape");
        let mut r = rec("quote", "apply \"weird\\name\"", false);
        r.premise = "line\nbreak".to_string();
        assert!(log.append_all(std::slice::from_ref(&r)));
        assert_eq!(log.load(), vec![r]);
        let _ = std::fs::remove_dir_all(log.path().parent().unwrap());
    }
}
