//! The regression radar: robust changepoint detection over the run
//! ledger.
//!
//! Records group into series by (`bin`, `variant`); within a series each
//! tracked metric's **newest** value is compared against the median of
//! the previous `last_k` runs using the classic robust z-score
//!
//! ```text
//! z = 0.6745 · |x − median| / MAD        (MAD > 0)
//! ```
//!
//! where MAD is the median absolute deviation and 0.6745 rescales it to a
//! standard-deviation-equivalent under normality. Median/MAD (instead of
//! mean/σ) keeps one historical outlier — a loaded CI machine, a cold
//! cache — from either masking a real regression or poisoning the
//! baseline. When the baseline is perfectly stable (MAD = 0, the common
//! case for deterministic metrics like proved fraction), the test falls
//! back to a per-metric relative-change threshold, which is what lets a
//! two-run ledger already flag a regression.
//!
//! Only deviations in each metric's *bad* direction (throughput down,
//! faults up) flag; improvements are reported but never fail `--check`.

use crate::ledger::RunRecord;

/// A metric the radar trends.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// Key into [`metric_value`].
    pub key: &'static str,
    /// Direction: `true` when larger is better (throughput), `false`
    /// when smaller is better (wall time, faults, drops).
    pub higher_is_better: bool,
    /// Relative-change threshold for the MAD = 0 fallback.
    pub rel_max: f64,
    /// Floor for the relative-change denominator (lets a 0 → n jump in a
    /// count metric register as a finite change of n / floor).
    pub floor: f64,
}

/// Every metric the radar watches.
pub const METRICS: &[MetricDef] = &[
    MetricDef {
        key: "thm_per_sec",
        higher_is_better: true,
        rel_max: 0.30,
        floor: 1e-9,
    },
    MetricDef {
        key: "proved_fraction",
        higher_is_better: true,
        rel_max: 0.02,
        floor: 1e-9,
    },
    MetricDef {
        key: "wall_ms",
        higher_is_better: false,
        rel_max: 0.50,
        floor: 1e-9,
    },
    MetricDef {
        key: "oracle_faults",
        higher_is_better: false,
        rel_max: 0.90,
        floor: 1.0,
    },
    MetricDef {
        key: "oracle_retries",
        higher_is_better: false,
        rel_max: 0.90,
        floor: 1.0,
    },
    MetricDef {
        key: "dropped_spans",
        higher_is_better: false,
        rel_max: 0.90,
        floor: 1.0,
    },
    // Node-expansion totals from the premise-rank A/B (`rank` bin): a
    // counter, absent from most series, trended so a ranking-quality
    // regression (more frontier pops to reach the same proofs) is caught.
    MetricDef {
        key: "expansions",
        higher_is_better: false,
        rel_max: 0.10,
        floor: 1.0,
    },
];

/// Looks up a metric definition by key.
pub fn metric_def(key: &str) -> Option<&'static MetricDef> {
    METRICS.iter().find(|m| m.key == key)
}

/// Extracts a metric value from a record.
pub fn metric_value(r: &RunRecord, key: &str) -> Option<f64> {
    match key {
        "thm_per_sec" => Some(r.thm_per_sec),
        "proved_fraction" => Some(r.proved_fraction()),
        "wall_ms" => Some(r.wall_ms),
        "oracle_faults" => Some(r.oracle_faults as f64),
        "oracle_retries" => Some(r.oracle_retries as f64),
        "dropped_spans" => Some(r.dropped_spans as f64),
        "expansions" => r.counters.get("expansions").map(|&n| n as f64),
        _ => None,
    }
}

/// Radar tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct RadarParams {
    /// Baseline window: the newest value is judged against the median of
    /// at most this many preceding runs.
    pub last_k: usize,
    /// Robust z-score threshold (MAD > 0 path).
    pub z_max: f64,
    /// Global scale on the per-metric relative thresholds (1.0 = as
    /// defined in [`METRICS`]).
    pub rel_scale: f64,
}

impl Default for RadarParams {
    fn default() -> RadarParams {
        RadarParams {
            last_k: 8,
            z_max: 3.5,
            rel_scale: 1.0,
        }
    }
}

/// One (series, metric) verdict.
#[derive(Debug, Clone)]
pub struct Assessment {
    /// Series key (`bin` or `bin/variant`).
    pub series: String,
    /// Metric key.
    pub metric: &'static str,
    /// Newest value.
    pub latest: f64,
    /// Median of the baseline window.
    pub median: f64,
    /// MAD of the baseline window.
    pub mad: f64,
    /// Robust z of the newest value against the baseline (signed: > 0 is
    /// the bad direction, < 0 an improvement; 0 when MAD = 0).
    pub robust_z: f64,
    /// Relative change in the bad direction (signed like `robust_z`).
    pub rel_change: f64,
    /// How many baseline runs the verdict used.
    pub baseline_n: usize,
    /// Full history, oldest first (baseline window + latest).
    pub history: Vec<f64>,
    /// True when the newest value regressed.
    pub regressed: bool,
}

/// Median of a sample (0 for an empty one).
pub fn median(mut xs: Vec<f64>) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Median absolute deviation around `med`.
pub fn mad(xs: &[f64], med: f64) -> f64 {
    median(xs.iter().map(|x| (x - med).abs()).collect())
}

/// Runs the changepoint test over every series × metric. `metric_filter`
/// restricts to the named metrics (empty = all of [`METRICS`]). Series
/// with fewer than two runs yield no assessment — there is nothing to
/// compare yet.
pub fn assess(
    records: &[RunRecord],
    params: &RadarParams,
    metric_filter: &[String],
) -> Vec<Assessment> {
    let mut series_keys: Vec<String> = Vec::new();
    for r in records {
        let key = r.series();
        if !series_keys.contains(&key) {
            series_keys.push(key);
        }
    }
    let mut out = Vec::new();
    for series in &series_keys {
        let runs: Vec<&RunRecord> = records.iter().filter(|r| &r.series() == series).collect();
        if runs.len() < 2 {
            continue;
        }
        for def in METRICS {
            if !metric_filter.is_empty() && !metric_filter.iter().any(|m| m == def.key) {
                continue;
            }
            let values: Vec<f64> = runs
                .iter()
                .filter_map(|r| metric_value(r, def.key))
                .collect();
            if values.len() < 2 {
                continue;
            }
            let latest = *values.last().unwrap();
            let window_start = values.len().saturating_sub(1 + params.last_k);
            let baseline = &values[window_start..values.len() - 1];
            let med = median(baseline.to_vec());
            let mad_v = mad(baseline, med);
            // Signed deviation in the bad direction.
            let bad_delta = if def.higher_is_better {
                med - latest
            } else {
                latest - med
            };
            let robust_z = if mad_v > 0.0 {
                0.6745 * bad_delta / mad_v
            } else {
                0.0
            };
            let rel_change = bad_delta / med.abs().max(def.floor);
            let rel_max = def.rel_max * params.rel_scale;
            let regressed = if mad_v > 0.0 {
                robust_z > params.z_max && rel_change > 0.0
            } else {
                rel_change > rel_max
            };
            out.push(Assessment {
                series: series.clone(),
                metric: def.key,
                latest,
                median: med,
                mad: mad_v,
                robust_z,
                rel_change,
                baseline_n: baseline.len(),
                history: values[window_start..].to_vec(),
                regressed,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(bin: &str, thm_per_sec: f64, faults: u64) -> RunRecord {
        RunRecord {
            bin: bin.to_string(),
            theorems: 100,
            proved: 36,
            wall_ms: 100.0 * 1000.0 / thm_per_sec.max(1e-9),
            thm_per_sec,
            oracle_faults: faults,
            ..RunRecord::default()
        }
    }

    #[test]
    fn median_and_mad() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(mad(&[1.0, 2.0, 3.0, 100.0], 2.5), 1.0);
    }

    #[test]
    fn stable_series_flags_fault_jump_on_second_run() {
        // The two-run demo: run 1 seeds, run 2 regresses.
        let records = vec![rec("table2", 60.0, 0), rec("table2", 58.0, 12)];
        let flags = assess(&records, &RadarParams::default(), &[]);
        let faults = flags
            .iter()
            .find(|a| a.metric == "oracle_faults")
            .expect("fault metric assessed");
        assert!(faults.regressed, "0 -> 12 faults must flag: {faults:?}");
        let tps = flags.iter().find(|a| a.metric == "thm_per_sec").unwrap();
        assert!(!tps.regressed, "a 3% throughput dip must not flag");
    }

    #[test]
    fn mad_path_flags_large_deviation_only() {
        let mut records: Vec<RunRecord> = [60.0, 61.0, 59.0, 60.5, 59.5, 60.2]
            .iter()
            .map(|&t| rec("perf_gate", t, 0))
            .collect();
        records.push(rec("perf_gate", 30.0, 0));
        let flags = assess(&records, &RadarParams::default(), &[]);
        let tps = flags.iter().find(|a| a.metric == "thm_per_sec").unwrap();
        assert!(tps.mad > 0.0);
        assert!(tps.regressed, "halved throughput must flag: {tps:?}");
        // An improvement must never flag.
        let mut improving = records.clone();
        improving.last_mut().unwrap().thm_per_sec = 120.0;
        improving.last_mut().unwrap().wall_ms = 100.0 * 1000.0 / 120.0;
        let flags = assess(&improving, &RadarParams::default(), &[]);
        assert!(flags
            .iter()
            .filter(|a| a.metric == "thm_per_sec" || a.metric == "wall_ms")
            .all(|a| !a.regressed));
    }

    #[test]
    fn filter_restricts_metrics() {
        let records = vec![rec("t", 60.0, 0), rec("t", 10.0, 9)];
        let flags = assess(
            &records,
            &RadarParams::default(),
            &["oracle_faults".to_string()],
        );
        assert!(flags.iter().all(|a| a.metric == "oracle_faults"));
        assert!(flags.iter().any(|a| a.regressed));
    }

    #[test]
    fn single_run_series_yields_nothing() {
        let records = vec![rec("solo", 60.0, 0)];
        assert!(assess(&records, &RadarParams::default(), &[]).is_empty());
    }
}
