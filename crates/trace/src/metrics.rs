//! The metrics registry: named counters, gauges, and log₂-bucketed
//! latency histograms.
//!
//! Metrics are aggregates, not streams — they cost a fixed-size slot per
//! name no matter how hot the site, which is why per-tactic latency lives
//! here instead of in the span collector. All three metric types are
//! lock-free once their [`Arc`] handle is resolved; resolving a handle
//! takes the registry lock, so hot loops should resolve once ([`counter`],
//! [`histogram`]) and hold the handle, while cold sites can use the
//! name-at-call-site helpers ([`counter_add`], [`observe`], [`gauge_set`]).
//!
//! Histograms bucket by `floor(log2(v)) + 1` (bucket 0 holds exactly the
//! value 0), so bucket `i ≥ 1` covers `[2^(i-1), 2^i - 1]`. Buckets are
//! plain integer counts and the sum is exact, which gives histograms
//! **exact merge semantics**: merging shard-local histograms element-wise
//! is equal — not approximately, equal — to recording every value into one
//! histogram serially. `tests/hist_props.rs` proves this by property test.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Number of histogram buckets: one for zero plus one per power of two of
/// a `u64` value.
pub const HIST_BUCKETS: usize = 65;

/// The bucket index a value lands in: 0 for 0, else `floor(log2(v)) + 1`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// The closed value range `[lo, hi]` bucket `i` covers.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < HIST_BUCKETS, "bucket index out of range");
    if i == 0 {
        (0, 0)
    } else if i == HIST_BUCKETS - 1 {
        (1u64 << (i - 1), u64::MAX)
    } else {
        (1u64 << (i - 1), (1u64 << i) - 1)
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that goes up and down (frontier depth, live states).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed histogram with an exact sum.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Merges another histogram into this one (exact: element-wise bucket
    /// and sum addition).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// An immutable copy of the current state.
    pub fn snapshot(&self) -> HistData {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistData {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data histogram snapshot (what exporters and reports consume).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistData {
    /// Per-bucket counts ([`HIST_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Exact sum of recorded values.
    pub sum: u64,
}

impl HistData {
    /// Element-wise merge (exact).
    pub fn merge(&mut self, other: &HistData) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; HIST_BUCKETS];
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Mean of the recorded values (exact sum / exact count).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile (0 ≤ q ≤ 1).
    /// A log₂-resolution estimate: exact about which power-of-two band the
    /// quantile falls in, nothing finer.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(i).1;
            }
        }
        bucket_bounds(HIST_BUCKETS - 1).1
    }
}

/// An immutable snapshot of the whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub hists: BTreeMap<String, HistData>,
}

/// The global registry.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    hists: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::default)
}

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Registry {
    /// The counter named `name`, created on first use. The hit path
    /// allocates nothing (the owned key is only built on first insert).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = lock_recover(&self.counters);
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = lock_recover(&self.gauges);
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = lock_recover(&self.hists);
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Snapshots every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock_recover(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: lock_recover(&self.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            hists: lock_recover(&self.hists)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Drops every metric (tests and between-grid resets). Bumps the
    /// reset generation so every [`HotCounter`] re-resolves its handle.
    pub fn reset(&self) {
        lock_recover(&self.counters).clear();
        lock_recover(&self.gauges).clear();
        lock_recover(&self.hists).clear();
        RESET_GEN.fetch_add(1, Ordering::Release);
    }
}

/// Bumped on every [`Registry::reset`]; [`HotCounter`] compares it to
/// decide whether a cached handle still points into the live registry.
static RESET_GEN: AtomicU64 = AtomicU64::new(0);

/// A counter handle cached at the call site: the registry lookup (global
/// lock + map walk) runs once per process, not once per increment, while
/// [`Registry::reset`] still invalidates the cache so counts never land in
/// an orphaned slot. Declare `static` at hot sites whose label is fixed:
///
/// ```
/// use proof_trace::metrics::HotCounter;
/// static HITS: HotCounter = HotCounter::new("cache.hits");
/// HITS.inc();
/// assert_eq!(proof_trace::metrics::snapshot().counters["cache.hits"], 1);
/// ```
pub struct HotCounter {
    name: &'static str,
    slot: Mutex<Option<(u64, Arc<Counter>)>>,
}

impl HotCounter {
    /// A fresh unresolved handle (usable in `static` position).
    pub const fn new(name: &'static str) -> HotCounter {
        HotCounter {
            name,
            slot: Mutex::new(None),
        }
    }

    /// Adds `n` to the named counter, resolving (or re-resolving after a
    /// registry reset) the handle if needed.
    pub fn add(&self, n: u64) {
        let generation = RESET_GEN.load(Ordering::Acquire);
        let mut slot = lock_recover(&self.slot);
        match slot.as_ref() {
            Some((cached_gen, c)) if *cached_gen == generation => c.add(n),
            _ => {
                let c = registry().counter(self.name);
                c.add(n);
                *slot = Some((generation, c));
            }
        }
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }
}

/// Resolves the counter named `name` (hold the handle in hot loops).
pub fn counter(name: &str) -> Arc<Counter> {
    registry().counter(name)
}

/// Resolves the histogram named `name` (hold the handle in hot loops).
pub fn histogram(name: &str) -> Arc<Histogram> {
    registry().histogram(name)
}

/// Adds `n` to the counter named `name`.
pub fn counter_add(name: &str, n: u64) {
    registry().counter(name).add(n);
}

/// Adds 1 to the counter named `name`.
pub fn counter_inc(name: &str) {
    counter_add(name, 1);
}

/// Sets the gauge named `name`.
pub fn gauge_set(name: &str, v: i64) {
    registry().gauge(name).set(v);
}

/// Records `v` into the histogram named `name`.
pub fn observe(name: &str, v: u64) {
    registry().histogram(name).record(v);
}

/// Snapshots the global registry.
pub fn snapshot() -> MetricsSnapshot {
    registry().snapshot()
}

/// Clears the global registry.
pub fn reset() {
    registry().reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_of(lo), i, "lo bound of bucket {i}");
            assert_eq!(bucket_of(hi), i, "hi bound of bucket {i}");
        }
    }

    #[test]
    fn hot_counter_survives_registry_reset() {
        static HOT: HotCounter = HotCounter::new("test.hot_counter");
        HOT.add(3);
        assert_eq!(registry().counter("test.hot_counter").get(), 3);
        registry().reset();
        // The cached handle is stale now; the next add must re-resolve
        // into the fresh registry rather than increment the orphan.
        HOT.inc();
        assert_eq!(registry().counter("test.hot_counter").get(), 1);
    }

    #[test]
    fn quantiles_from_buckets() {
        let h = Histogram::default();
        for v in [1u64, 1, 2, 100, 1000] {
            h.record(v);
        }
        let d = h.snapshot();
        assert_eq!(d.count, 5);
        assert_eq!(d.sum, 1104);
        // Median is the 3rd of 5 values (2) → bucket [2,3] upper bound.
        assert_eq!(d.quantile_upper(0.5), 3);
        // Max lands in 1000's bucket [512, 1023].
        assert_eq!(d.quantile_upper(1.0), 1023);
    }
}
