//! The sharded in-memory collector.
//!
//! Finished spans and events land in one of [`SHARDS`] mutex-guarded
//! vectors, picked by the recording thread's id — workers on the runner's
//! pool therefore almost never contend on a lock. The collector is
//! bounded ([`default_cap`], override with `TRACE_CAP`): past the cap,
//! records are counted in `dropped` instead of being stored, so a
//! pathological run degrades to a truncated trace with an explicit drop
//! count, never to unbounded memory. [`drain`] empties every shard and
//! returns the records sorted by start time, ready for the exporters.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Number of collector shards. A small power of two: enough that the
/// runner's worker pool spreads out, small enough to drain cheaply.
const SHARDS: usize = 16;

/// Capacity of the `/tracez` recent-span ring (most recent finished spans,
/// kept only while the exposition server is armed).
const RING_CAP: usize = 256;

/// A span/event field value. Integers and strings cover every
/// instrumentation site; keeping floats out keeps the exporters exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Field {
    /// An integer value (counts, ids, sizes, indices).
    U64(u64),
    /// A string value (outcome labels, reason codes).
    Str(String),
}

/// A finished span.
#[derive(Debug, Clone)]
pub struct SpanRec {
    /// Unique span id (process-wide, starts at 1).
    pub id: u64,
    /// Id of the enclosing span on the same thread; 0 for a root.
    pub parent: u64,
    /// Trace-local thread id (dense, assigned in first-use order).
    pub tid: u64,
    /// Phase taxonomy kind (`oracle`, `stm`, `cell`, …).
    pub kind: &'static str,
    /// Display name (theorem name, cell label, operation).
    pub name: String,
    /// Nanoseconds since the trace epoch at span start.
    pub start_ns: u64,
    /// Span duration in nanoseconds (monotonic clock).
    pub dur_ns: u64,
    /// Key/value fields.
    pub fields: Vec<(&'static str, Field)>,
}

/// An instant event.
#[derive(Debug, Clone)]
pub struct EventRec {
    /// Id of the span open on this thread when the event fired; 0 if none.
    pub parent: u64,
    /// Trace-local thread id.
    pub tid: u64,
    /// Phase taxonomy kind.
    pub kind: &'static str,
    /// Display name (`hit`, `miss`, `store`, …).
    pub name: String,
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Key/value fields.
    pub fields: Vec<(&'static str, Field)>,
}

/// Everything a drain returns: the records plus the drop count.
#[derive(Debug, Default)]
pub struct TraceData {
    /// Finished spans, sorted by (start, id).
    pub spans: Vec<SpanRec>,
    /// Instant events, sorted by (timestamp, tid).
    pub events: Vec<EventRec>,
    /// Records discarded because the collector cap was reached.
    pub dropped: u64,
    /// Exact time/count accounting for spans elided by sampling
    /// ([`crate::span_sampled`]), aggregated by (phase, parent phase).
    pub sampled: Vec<crate::SampledResidue>,
}

struct Shard {
    spans: Mutex<Vec<SpanRec>>,
    events: Mutex<Vec<EventRec>>,
}

/// The process-wide collector. Created once, on first arm.
pub(crate) struct Collector {
    epoch: Instant,
    shards: Vec<Shard>,
    next_id: AtomicU64,
    next_tid: AtomicU64,
    stored: AtomicUsize,
    dropped: AtomicU64,
    cap: usize,
    ring: Mutex<VecDeque<SpanRec>>,
}

/// Whether finished spans are mirrored into the recent-span ring. Armed by
/// the exposition server ([`crate::expose`]); off otherwise so the ring
/// costs one relaxed load per span when nobody can scrape it.
static RING_ON: AtomicBool = AtomicBool::new(false);

static COLLECTOR: OnceLock<Collector> = OnceLock::new();

/// The record cap: `TRACE_CAP` env override, else 4 million. At roughly a
/// hundred bytes per record that bounds collector memory to a few hundred
/// MB on the most span-dense grid runs.
fn default_cap() -> usize {
    std::env::var("TRACE_CAP")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(4_000_000)
}

/// Locks a mutex, recovering from poisoning: a worker that panicked while
/// recording leaves internally consistent shards (pushes are atomic), so
/// the data is always safe to reuse.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

pub(crate) fn collector() -> &'static Collector {
    COLLECTOR.get_or_init(|| Collector {
        epoch: Instant::now(),
        shards: (0..SHARDS)
            .map(|_| Shard {
                spans: Mutex::new(Vec::new()),
                events: Mutex::new(Vec::new()),
            })
            .collect(),
        next_id: AtomicU64::new(1),
        next_tid: AtomicU64::new(1),
        stored: AtomicUsize::new(0),
        dropped: AtomicU64::new(0),
        cap: default_cap(),
        ring: Mutex::new(VecDeque::with_capacity(RING_CAP)),
    })
}

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
    static STACK: RefCell<Vec<(u64, &'static str)>> = const { RefCell::new(Vec::new()) };
    static SUPPRESS: Cell<u32> = const { Cell::new(0) };
}

/// This thread's trace-local id, assigned densely on first use.
pub(crate) fn current_tid() -> u64 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            return v;
        }
        let v = collector().next_tid.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

/// Pushes a new span id on this thread's stack; returns the previous top
/// (the new span's parent), 0 if the stack was empty.
pub(crate) fn begin_span(id: u64, kind: &'static str) -> u64 {
    STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().map(|&(id, _)| id).unwrap_or(0);
        s.push((id, kind));
        parent
    })
}

/// Pops `id` from this thread's stack. Tolerates a missing id (tracing
/// toggled mid-span) by removing the matching entry wherever it is.
pub(crate) fn end_span(id: u64) {
    STACK.with(|s| {
        let mut s = s.borrow_mut();
        if s.last().map(|&(id, _)| id) == Some(id) {
            s.pop();
        } else if let Some(pos) = s.iter().rposition(|&(x, _)| x == id) {
            s.remove(pos);
        }
    });
}

/// The id of the span currently open on this thread, 0 if none.
pub(crate) fn current_span() -> u64 {
    STACK.with(|s| s.borrow().last().map(|&(id, _)| id).unwrap_or(0))
}

/// The kind of the span currently open on this thread, if any. Used by
/// sampled-out spans to attribute their residue time to the phase their
/// duration will otherwise be misfiled under.
pub(crate) fn current_span_kind() -> Option<&'static str> {
    STACK.with(|s| s.borrow().last().map(|&(_, kind)| kind))
}

/// True while this thread is inside a sampled-out span's subtree: every
/// span and event opened here must stay inert so the elided interval is
/// opaque (its whole duration is accounted once, by the residue).
pub(crate) fn suppressed() -> bool {
    SUPPRESS.with(|s| s.get() != 0)
}

pub(crate) fn push_suppress() {
    SUPPRESS.with(|s| s.set(s.get() + 1));
}

pub(crate) fn pop_suppress() {
    SUPPRESS.with(|s| s.set(s.get().saturating_sub(1)));
}

impl Collector {
    pub(crate) fn next_span_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn ns_since_epoch(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    fn admit(&self) -> bool {
        if self.stored.fetch_add(1, Ordering::Relaxed) >= self.cap {
            self.stored.fetch_sub(1, Ordering::Relaxed);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        true
    }

    fn shard(&self) -> &Shard {
        &self.shards[(current_tid() as usize) % SHARDS]
    }

    pub(crate) fn record_span(&self, rec: SpanRec) {
        if RING_ON.load(Ordering::Relaxed) {
            let mut ring = lock_recover(&self.ring);
            if ring.len() == RING_CAP {
                ring.pop_front();
            }
            ring.push_back(rec.clone());
        }
        if self.admit() {
            lock_recover(&self.shard().spans).push(rec);
        }
    }

    pub(crate) fn record_event(&self, rec: EventRec) {
        if self.admit() {
            lock_recover(&self.shard().events).push(rec);
        }
    }
}

/// Empties every shard and returns the accumulated records, spans sorted
/// by (start, id) and events by (timestamp, tid) so export order is a
/// function of the recorded data alone, not of shard iteration order.
/// Resets the drop counter and the sampling residue accumulators.
pub fn drain() -> TraceData {
    let Some(c) = COLLECTOR.get() else {
        return TraceData {
            sampled: crate::take_residues(true),
            ..TraceData::default()
        };
    };
    let mut data = TraceData {
        dropped: c.dropped.swap(0, Ordering::Relaxed),
        sampled: crate::take_residues(true),
        ..TraceData::default()
    };
    for shard in &c.shards {
        data.spans.append(&mut lock_recover(&shard.spans));
        data.events.append(&mut lock_recover(&shard.events));
    }
    c.stored.store(0, Ordering::Relaxed);
    data.spans.sort_by_key(|s| (s.start_ns, s.id));
    data.events.sort_by_key(|e| (e.ts_ns, e.tid));
    data
}

/// The running dropped-record count, without resetting it. This is the
/// scrape-time view: [`drain`] still owns the reset.
pub fn dropped_so_far() -> u64 {
    COLLECTOR
        .get()
        .map(|c| c.dropped.load(Ordering::Relaxed))
        .unwrap_or(0)
}

/// How many records the collector currently holds (approximate under
/// concurrent recording; exact when quiescent).
pub fn stored_so_far() -> u64 {
    COLLECTOR
        .get()
        .map(|c| c.stored.load(Ordering::Relaxed) as u64)
        .unwrap_or(0)
}

/// Arms or disarms the recent-span ring (`/tracez`). Armed by the
/// exposition server; spans finished while disarmed are not mirrored.
pub fn set_ring_enabled(on: bool) {
    RING_ON.store(on, Ordering::SeqCst);
}

/// The most recent finished spans (oldest first, at most [`RING_CAP`]),
/// cloned out of the ring. Empty unless the ring is armed.
pub fn recent_spans() -> Vec<SpanRec> {
    let Some(c) = COLLECTOR.get() else {
        return Vec::new();
    };
    lock_recover(&c.ring).iter().cloned().collect()
}
