//! Trace analysis: the per-phase time breakdown and slowest-cells tables
//! behind the `trace_report` binary.
//!
//! The report operates on *parsed* spans ([`Span`], plain `String` kinds —
//! the binary reads them back from a JSONL export) plus a metrics
//! snapshot. The central quantity is **self time**: a span's duration
//! minus the durations of its direct children, aggregated by *phase* (the
//! span kind up to the first `.`, so `oracle.prompt` accounts under
//! `oracle`). Because children nest inside parents on each thread, phase
//! self times over a well-formed trace partition total busy time exactly —
//! whatever share lands in a named phase is genuinely attributed, and the
//! remainder is visible as container overhead rather than silently lost.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

use crate::metrics::MetricsSnapshot;

/// A parsed span, as read back from a JSONL export.
#[derive(Debug, Clone)]
pub struct Span {
    /// Span id.
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Trace-local thread id.
    pub tid: u64,
    /// Phase taxonomy kind.
    pub kind: String,
    /// Display name.
    pub name: String,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// The execution phases the acceptance contract names: a healthy trace
/// attributes ≥95% of busy time to these.
pub const NAMED_PHASES: [&str; 7] = [
    "oracle",
    "preflight",
    "stm",
    "frontier",
    "cache",
    "journal",
    "classify",
];

/// The phase a span kind accounts under: everything before the first `.`.
pub fn phase_of(kind: &str) -> &str {
    kind.split('.').next().unwrap_or(kind)
}

/// Aggregated per-phase accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Phase → (self nanoseconds, span count).
    pub phases: BTreeMap<String, (u64, u64)>,
    /// Sum of root-span durations: total thread-busy nanoseconds. Equals
    /// wall time for a single-threaded run; for a pooled run it is the
    /// across-threads busy total the phase shares are taken against.
    pub total_busy_ns: u64,
}

impl PhaseBreakdown {
    /// Self time of `phase` in nanoseconds.
    pub fn self_ns(&self, phase: &str) -> u64 {
        self.phases.get(phase).map(|&(ns, _)| ns).unwrap_or(0)
    }

    /// Share of busy time attributed to the named phases of the
    /// acceptance contract, in percent.
    pub fn named_phase_pct(&self) -> f64 {
        if self.total_busy_ns == 0 {
            return 0.0;
        }
        let named: u64 = NAMED_PHASES.iter().map(|p| self.self_ns(p)).sum();
        100.0 * named as f64 / self.total_busy_ns as f64
    }
}

/// Computes the per-phase self-time breakdown.
pub fn phase_breakdown(spans: &[Span]) -> PhaseBreakdown {
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    for s in spans {
        if s.parent != 0 {
            *child_ns.entry(s.parent).or_insert(0) += s.dur_ns;
        }
    }
    let mut out = PhaseBreakdown::default();
    for s in spans {
        let self_ns = s
            .dur_ns
            .saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
        let entry = out
            .phases
            .entry(phase_of(&s.kind).to_string())
            .or_insert((0, 0));
        entry.0 += self_ns;
        entry.1 += 1;
        if s.parent == 0 {
            out.total_busy_ns += s.dur_ns;
        }
    }
    out
}

/// [`phase_breakdown`] corrected for span sampling. An elided span's
/// duration is invisible to the trace, so it inflates the *self* time of
/// its nearest recorded ancestor; each [`crate::SampledResidue`] carries
/// the exact (nanoseconds, count) to move back: the elided phase gains
/// it, the misattributed parent phase loses it. Because a sampled-out
/// span suppresses its whole subtree, the residue interval is opaque —
/// the correction is exact, not an estimate, so sampling changes trace
/// *volume* but never the phase totals this breakdown reports.
pub fn phase_breakdown_full(spans: &[Span], residues: &[crate::SampledResidue]) -> PhaseBreakdown {
    let mut bd = phase_breakdown(spans);
    for r in residues {
        let entry = bd.phases.entry(r.phase.clone()).or_insert((0, 0));
        entry.0 += r.ns;
        entry.1 += r.count;
        if r.parent_phase.is_empty() {
            // Elided roots: their time was never inside any recorded
            // span, so it extends busy time instead of moving within it.
            bd.total_busy_ns += r.ns;
        } else if let Some(parent) = bd.phases.get_mut(&r.parent_phase) {
            parent.0 = parent.0.saturating_sub(r.ns);
        }
    }
    bd
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Renders the full report: phase breakdown, slowest cells, per-tactic
/// latency/outcome table, and the oracle fault-recovery summary.
pub fn render_report(
    spans: &[Span],
    metrics: &MetricsSnapshot,
    dropped: u64,
    top_n: usize,
) -> String {
    render_report_full(spans, metrics, dropped, top_n, &[])
}

/// As [`render_report`], with sampling residues applied to the phase
/// breakdown (see [`phase_breakdown_full`]).
pub fn render_report_full(
    spans: &[Span],
    metrics: &MetricsSnapshot,
    dropped: u64,
    top_n: usize,
    residues: &[crate::SampledResidue],
) -> String {
    let mut out = String::new();
    let bd = phase_breakdown_full(spans, residues);
    let _ = writeln!(out, "== Phase breakdown (self time) ==");
    if dropped > 0 {
        let _ = writeln!(
            out,
            "WARNING: {dropped} trace records dropped at the collector cap — \
             phase attribution below is truncated (raise TRACE_CAP)."
        );
    }
    let sampled_count: u64 = residues.iter().map(|r| r.count).sum();
    let _ = writeln!(
        out,
        "total busy: {:.1} ms across {} spans{}{}",
        ms(bd.total_busy_ns),
        spans.len(),
        if sampled_count > 0 {
            format!(" (+{sampled_count} sampled-out, residue-corrected)")
        } else {
            String::new()
        },
        if dropped > 0 {
            format!(" ({dropped} records dropped at the collector cap)")
        } else {
            String::new()
        }
    );
    let mut phases: Vec<(&String, &(u64, u64))> = bd.phases.iter().collect();
    phases.sort_by_key(|p| std::cmp::Reverse(p.1 .0));
    for (phase, &(self_ns, count)) in &phases {
        let share = if bd.total_busy_ns > 0 {
            100.0 * self_ns as f64 / bd.total_busy_ns as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "  {phase:12} {:>10.1} ms  {share:>5.1}%  ({count} spans)",
            ms(self_ns)
        );
    }
    let _ = writeln!(
        out,
        "named-phase attribution ({}): {:.1}%",
        NAMED_PHASES.join(" / "),
        bd.named_phase_pct()
    );

    let mut cells: Vec<&Span> = spans.iter().filter(|s| s.kind == "cell").collect();
    cells.sort_by_key(|s| std::cmp::Reverse(s.dur_ns));
    if !cells.is_empty() {
        let _ = writeln!(out, "\n== Slowest cells (top {top_n}) ==");
        for s in cells.iter().take(top_n) {
            let _ = writeln!(out, "  {:>10.1} ms  {}", ms(s.dur_ns), s.name);
        }
    }

    let tactic_rows = tactic_table(metrics);
    if !tactic_rows.is_empty() {
        let _ = writeln!(out, "\n== Per-tactic latency and outcomes ==");
        let _ = writeln!(
            out,
            "  {:16} {:>8} {:>10} {:>9} {:>9} {:>8} {:>8} {:>8}",
            "tactic", "calls", "total ms", "mean µs", "p95 µs", "ok", "rejected", "timeout"
        );
        for r in tactic_rows {
            let _ = writeln!(
                out,
                "  {:16} {:>8} {:>10.1} {:>9.1} {:>9.1} {:>8} {:>8} {:>8}",
                r.head,
                r.calls,
                r.total_ns as f64 / 1e6,
                r.mean_ns / 1e3,
                r.p95_ns as f64 / 1e3,
                r.ok,
                r.rejected,
                r.timeout
            );
        }
    }

    let _ = writeln!(out, "\n== Oracle and cache counters ==");
    for key in [
        "search.oracle_faults",
        "search.oracle_retries",
        "oracle.fault.injected.error",
        "oracle.fault.injected.garbage",
        "oracle.prompt_cache.hit",
        "oracle.prompt_cache.miss",
    ] {
        let _ = writeln!(
            out,
            "  {key:32} {}",
            metrics.counters.get(key).copied().unwrap_or(0)
        );
    }
    if let Some(depth) = metrics.hists.get("search.frontier.depth") {
        let _ = writeln!(
            out,
            "  frontier depth: {} samples, mean {:.1}, p95 ≤ {}",
            depth.count,
            depth.mean(),
            depth.quantile_upper(0.95)
        );
    }
    let stm: Vec<(&String, &u64)> = metrics
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("stm.add."))
        .collect();
    if !stm.is_empty() {
        let _ = writeln!(out, "\n== STM add outcomes ==");
        for (k, v) in stm {
            let _ = writeln!(out, "  {:32} {v}", &k["stm.add.".len()..]);
        }
    }
    let analysis: Vec<(&String, &u64)> = metrics
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("analysis."))
        .collect();
    if !analysis.is_empty() {
        let _ = writeln!(out, "\n== Corpus analysis counters ==");
        for (k, v) in analysis {
            let _ = writeln!(out, "  {:32} {v}", &k["analysis.".len()..]);
        }
    }
    if let Some(section) = intern_section(metrics) {
        out.push_str(&section);
    }
    out
}

/// Renders the kernel interner / memo-table section, if the run published
/// any `intern.*` gauges (`minicoq::intern::publish_metrics`). Each memo
/// line is hits vs misses with the hit share; the apply-memo line comes
/// from the STM layer's always-on counters.
fn intern_section(metrics: &MetricsSnapshot) -> Option<String> {
    let gauge = |key: &str| -> u64 { metrics.gauges.get(key).copied().unwrap_or(0).max(0) as u64 };
    if !metrics.gauges.keys().any(|k| k.starts_with("intern.")) {
        return None;
    }
    let mut out = String::new();
    let _ = writeln!(out, "\n== Kernel interner and memo tables ==");
    let mut ratio_line = |label: &str, hits: u64, misses: u64| {
        let total = hits + misses;
        let pct = if total > 0 {
            100.0 * hits as f64 / total as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "  {label:18} {hits:>10} hit  {misses:>10} miss  ({pct:>5.1}% hit)"
        );
    };
    ratio_line(
        "term nodes",
        gauge("intern.term.hit"),
        gauge("intern.term.miss"),
    );
    ratio_line(
        "formula nodes",
        gauge("intern.formula.hit"),
        gauge("intern.formula.miss"),
    );
    ratio_line("goals", gauge("intern.goal.hit"), gauge("intern.goal.miss"));
    ratio_line(
        "subst memo",
        gauge("intern.subst.memo_hit"),
        gauge("intern.subst.memo_miss"),
    );
    ratio_line(
        "whnf memo",
        gauge("intern.whnf.hit"),
        gauge("intern.whnf.miss"),
    );
    ratio_line(
        "eval memo",
        gauge("intern.eval.hit"),
        gauge("intern.eval.miss"),
    );
    let apply = |key: &str| metrics.counters.get(key).copied().unwrap_or(0);
    ratio_line(
        "apply memo (stm)",
        apply("stm.apply_memo.hit"),
        apply("stm.apply_memo.miss"),
    );
    let _ = writeln!(
        out,
        "  {:18} {}",
        "subst early-exit",
        gauge("intern.subst.early_exit")
    );
    let _ = writeln!(
        out,
        "  {:18} {}",
        "arena bytes",
        gauge("intern.arena.bytes")
    );
    let _ = writeln!(
        out,
        "  {:18} {:.3}x",
        "dedup factor",
        gauge("intern.dedup.factor_x1000") as f64 / 1000.0
    );
    Some(out)
}

/// One row of the per-tactic table.
struct TacticRow {
    head: String,
    calls: u64,
    total_ns: u64,
    mean_ns: f64,
    p95_ns: u64,
    ok: u64,
    rejected: u64,
    timeout: u64,
}

fn tactic_table(metrics: &MetricsSnapshot) -> Vec<TacticRow> {
    const PREFIX: &str = "minicoq.tactic.";
    const SUFFIX: &str = ".ns";
    let mut rows: Vec<TacticRow> = metrics
        .hists
        .iter()
        .filter_map(|(name, h)| {
            let head = name.strip_prefix(PREFIX)?.strip_suffix(SUFFIX)?;
            let counter = |o: &str| -> u64 {
                metrics
                    .counters
                    .get(&format!("{PREFIX}{head}.{o}"))
                    .copied()
                    .unwrap_or(0)
            };
            Some(TacticRow {
                head: head.to_string(),
                calls: h.count,
                total_ns: h.sum,
                mean_ns: h.mean(),
                p95_ns: h.quantile_upper(0.95),
                ok: counter("ok"),
                rejected: counter("rejected") + counter("parse"),
                timeout: counter("timeout"),
            })
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: u64, kind: &str, dur: u64) -> Span {
        Span {
            id,
            parent,
            tid: 1,
            kind: kind.into(),
            name: format!("s{id}"),
            start_ns: id,
            dur_ns: dur,
        }
    }

    #[test]
    fn self_time_partitions_total() {
        // root(cell, 100) > theorem(90) > {oracle(40), stm(30) > preflight(10)}
        let spans = vec![
            span(1, 0, "cell", 100),
            span(2, 1, "theorem", 90),
            span(3, 2, "oracle", 40),
            span(4, 2, "stm", 30),
            span(5, 4, "preflight", 10),
        ];
        let bd = phase_breakdown(&spans);
        assert_eq!(bd.total_busy_ns, 100);
        assert_eq!(bd.self_ns("cell"), 10);
        assert_eq!(bd.self_ns("theorem"), 20);
        assert_eq!(bd.self_ns("oracle"), 40);
        assert_eq!(bd.self_ns("stm"), 20);
        assert_eq!(bd.self_ns("preflight"), 10);
        let total: u64 = bd.phases.values().map(|&(ns, _)| ns).sum();
        assert_eq!(total, 100, "self times partition the root duration");
        // Named phases: oracle 40 + stm 20 + preflight 10 = 70%.
        assert!((bd.named_phase_pct() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn residue_correction_moves_time_between_phases() {
        // search root 100, of which 30ns belongs to elided stm spans the
        // trace never saw: the raw breakdown misfiles them as search self
        // time, the corrected one moves them back.
        let spans = vec![span(1, 0, "search.expand", 100)];
        let residues = vec![crate::SampledResidue {
            phase: "stm".into(),
            parent_phase: "search".into(),
            ns: 30,
            count: 15,
        }];
        let raw = phase_breakdown(&spans);
        assert_eq!(raw.self_ns("search"), 100);
        assert_eq!(raw.self_ns("stm"), 0);
        let bd = phase_breakdown_full(&spans, &residues);
        assert_eq!(bd.self_ns("search"), 70);
        assert_eq!(bd.self_ns("stm"), 30);
        assert_eq!(bd.total_busy_ns, 100, "moving time never changes busy");
        let total: u64 = bd.phases.values().map(|&(ns, _)| ns).sum();
        assert_eq!(total, 100, "corrected self times still partition");
    }

    #[test]
    fn sub_kinds_report_under_their_phase() {
        let spans = vec![span(1, 0, "oracle.prompt", 50)];
        let bd = phase_breakdown(&spans);
        assert_eq!(bd.self_ns("oracle"), 50);
    }

    #[test]
    fn report_renders_sections() {
        let spans = vec![span(1, 0, "cell", 100), span(2, 1, "oracle", 60)];
        let mut m = MetricsSnapshot::default();
        m.counters.insert("search.oracle_faults".into(), 3);
        let text = render_report(&spans, &m, 0, 5);
        assert!(text.contains("Phase breakdown"));
        assert!(text.contains("Slowest cells"));
        assert!(text.contains("search.oracle_faults"));
        assert!(text.contains('3'));
    }

    #[test]
    fn report_renders_analysis_counters() {
        let spans = vec![span(1, 0, "cell", 100)];
        let mut m = MetricsSnapshot::default();
        m.counters.insert("analysis.pass.hint-loop".into(), 2);
        m.counters.insert("analysis.graph.symbols".into(), 418);
        let text = render_report(&spans, &m, 0, 5);
        assert!(text.contains("Corpus analysis counters"));
        assert!(text.contains("pass.hint-loop"));
        assert!(text.contains("418"));
        // The section is omitted entirely when no analysis ran.
        let empty = render_report(&spans, &MetricsSnapshot::default(), 0, 5);
        assert!(!empty.contains("Corpus analysis counters"));
    }
}
