//! The live metrics endpoint: a `std::net::TcpListener` mini-server
//! exposing the registry in Prometheus text exposition format v0.0.4.
//!
//! This is the scrape surface a resident proof server will inherit
//! (ROADMAP open item 1): while a grid is running, `GET /metrics` returns
//! every counter, gauge, and log₂ histogram (mapped to cumulative `le`
//! buckets), plus collector health (`trace_collector_dropped_total` — the
//! satellite contract that truncated traces are never silent) and the
//! sampling residues. `GET /healthz` answers liveness probes and
//! `GET /tracez` dumps the recent-span ring for a quick "what is it doing
//! right now" look without draining the collector.
//!
//! The server is **off by default** (`--metrics-addr` / `METRICS_ADDR`
//! arm it), runs on one detached thread, and only ever *reads*
//! experiment state — the determinism contract in the crate docs applies:
//! scraping a run must not perturb its primary output.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::metrics::{bucket_bounds, MetricsSnapshot, HIST_BUCKETS};
use crate::SampledResidue;

/// Content type of `/metrics`, per the exposition format spec.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Maps an internal metric name (dotted, dashed) onto the Prometheus name
/// charset `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value (backslash, quote, newline — per the spec).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a [`MetricsSnapshot`] plus collector stats as Prometheus text
/// exposition v0.0.4. Pure — golden and property tests call this
/// directly; the server calls it with the live registry.
///
/// Histograms: bucket `i` of the registry covers `[2^(i-1), 2^i - 1]`, so
/// its cumulative `le` bound is `2^i - 1`; the final bucket (values up to
/// `u64::MAX`) renders as `le="+Inf"`, and `_count`/`_sum` come from the
/// exact registry totals. Trailing all-zero buckets are elided (the
/// cumulative count is already carried by `+Inf`).
pub fn render_prometheus(
    snap: &MetricsSnapshot,
    dropped: u64,
    stored: u64,
    residues: &[SampledResidue],
) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = sanitize_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        let n = sanitize_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in &snap.hists {
        let n = sanitize_name(name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let buckets = &h.buckets;
        let last_nonzero = buckets.iter().rposition(|&b| b != 0);
        let mut cum = 0u64;
        if let Some(last) = last_nonzero {
            for (i, &b) in buckets.iter().enumerate().take(last + 1) {
                if i == HIST_BUCKETS - 1 {
                    break; // the final bucket is the +Inf line below
                }
                cum += b;
                let le = bucket_bounds(i).1;
                out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cum}\n"));
            }
        }
        out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{n}_sum {}\n", h.sum));
        out.push_str(&format!("{n}_count {}\n", h.count));
    }
    out.push_str("# HELP trace_collector_dropped_total Trace records discarded at the collector cap; >0 means phase attribution is truncated.\n");
    out.push_str("# TYPE trace_collector_dropped_total counter\n");
    out.push_str(&format!("trace_collector_dropped_total {dropped}\n"));
    out.push_str("# TYPE trace_collector_stored gauge\n");
    out.push_str(&format!("trace_collector_stored {stored}\n"));
    if !residues.is_empty() {
        out.push_str("# TYPE trace_sampled_span_ns counter\n");
        for r in residues {
            out.push_str(&format!(
                "trace_sampled_span_ns{{phase=\"{}\",parent=\"{}\"}} {}\n",
                escape_label(&r.phase),
                escape_label(&r.parent_phase),
                r.ns
            ));
        }
        out.push_str("# TYPE trace_sampled_spans_total counter\n");
        for r in residues {
            out.push_str(&format!(
                "trace_sampled_spans_total{{phase=\"{}\",parent=\"{}\"}} {}\n",
                escape_label(&r.phase),
                escape_label(&r.parent_phase),
                r.count
            ));
        }
    }
    out
}

/// Renders the live registry + collector state (what `GET /metrics`
/// returns).
pub fn scrape_body() -> String {
    render_prometheus(
        &crate::metrics::snapshot(),
        crate::collect::dropped_so_far(),
        crate::collect::stored_so_far(),
        &crate::peek_residues(),
    )
}

/// Validates Prometheus text exposition v0.0.4: line grammar, name
/// charset, every sample preceded by a `# TYPE` for its family, histogram
/// buckets cumulative/monotone ending in `+Inf` and agreeing with
/// `_count`. The exposition conformance suite and the CI scrape smoke
/// test both run scrapes through this.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    use std::collections::BTreeMap;
    fn name_ok(n: &str) -> bool {
        let mut chars = n.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    fn value_ok(v: &str) -> bool {
        matches!(v, "+Inf" | "-Inf" | "NaN") || v.parse::<f64>().is_ok()
    }
    // family name -> declared type
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    // histogram family -> (ordered (le, cumulative count), sum seen, count value)
    let mut hist_buckets: BTreeMap<String, Vec<(String, u64)>> = BTreeMap::new();
    let mut hist_count: BTreeMap<String, u64> = BTreeMap::new();
    let mut hist_sum: BTreeMap<String, bool> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let at = |msg: &str| format!("line {}: {msg}: {line}", lineno + 1);
        if line.is_empty() {
            return Err(at("empty line"));
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            match keyword {
                "TYPE" => {
                    let name = parts.next().ok_or_else(|| at("TYPE without name"))?;
                    let ty = parts.next().ok_or_else(|| at("TYPE without type"))?;
                    if !name_ok(name) {
                        return Err(at("bad metric name in TYPE"));
                    }
                    if !matches!(
                        ty,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(at("unknown metric type"));
                    }
                    if types.insert(name.to_string(), ty.to_string()).is_some() {
                        return Err(at("duplicate TYPE declaration"));
                    }
                }
                "HELP" => {}
                _ => return Err(at("unknown comment keyword")),
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(at("comment without space"));
        }
        // Sample line: name[{labels}] value
        let (name_part, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| at("sample missing value"))?;
        if !value_ok(value) {
            return Err(at("unparseable sample value"));
        }
        let (name, labels) = match name_part.split_once('{') {
            Some((n, rest)) => {
                let rest = rest
                    .strip_suffix('}')
                    .ok_or_else(|| at("unclosed label set"))?;
                (n, Some(rest))
            }
            None => (name_part, None),
        };
        if !name_ok(name) {
            return Err(at("bad sample metric name"));
        }
        // The family a sample belongs to: strip histogram suffixes.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                name.strip_suffix(suf)
                    .filter(|f| types.get(*f).map(String::as_str) == Some("histogram"))
            })
            .unwrap_or(name);
        if !types.contains_key(family) {
            return Err(at("sample with no preceding TYPE"));
        }
        if types.get(family).map(String::as_str) == Some("histogram") {
            if let Some(bare) = name.strip_suffix("_bucket") {
                if bare == family {
                    let labels = labels.ok_or_else(|| at("bucket without le label"))?;
                    let le = labels
                        .split(',')
                        .find_map(|l| l.strip_prefix("le=\""))
                        .and_then(|l| l.strip_suffix('"'))
                        .ok_or_else(|| at("bucket without le label"))?;
                    let v: u64 = value
                        .parse()
                        .map_err(|_| at("bucket count not an integer"))?;
                    hist_buckets
                        .entry(family.to_string())
                        .or_default()
                        .push((le.to_string(), v));
                }
            } else if name.strip_suffix("_count") == Some(family) {
                let v: u64 = value.parse().map_err(|_| at("count not an integer"))?;
                hist_count.insert(family.to_string(), v);
            } else if name.strip_suffix("_sum") == Some(family) {
                hist_sum.insert(family.to_string(), true);
            }
        }
    }
    for (family, buckets) in &hist_buckets {
        let mut prev = 0u64;
        let mut prev_le = -1.0f64;
        for (le, cum) in buckets {
            if *cum < prev {
                return Err(format!("{family}: bucket counts not cumulative"));
            }
            prev = *cum;
            let le_v = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse::<f64>()
                    .map_err(|_| format!("{family}: unparseable le bound {le}"))?
            };
            if le_v <= prev_le {
                return Err(format!("{family}: le bounds not increasing"));
            }
            prev_le = le_v;
        }
        match buckets.last() {
            Some((le, cum)) if le == "+Inf" => {
                if hist_count.get(family) != Some(cum) {
                    return Err(format!("{family}: +Inf bucket disagrees with _count"));
                }
            }
            _ => return Err(format!("{family}: buckets do not end in +Inf")),
        }
        if !hist_sum.contains_key(family) {
            return Err(format!("{family}: missing _sum"));
        }
        if !hist_count.contains_key(family) {
            return Err(format!("{family}: missing _count"));
        }
    }
    Ok(())
}

/// A running exposition server. Keep the handle alive for the lifetime of
/// the scrape surface; [`stop`](ServerHandle::stop) shuts it down.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        crate::collect::set_ring_enabled(false);
    }
}

fn http_response(status: &str, content_type: &str, body: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn tracez_body() -> String {
    let spans = crate::collect::recent_spans();
    let mut out = format!(
        "recent spans: {} (ring) | stored: {} | dropped: {}\n",
        spans.len(),
        crate::collect::stored_so_far(),
        crate::collect::dropped_so_far()
    );
    for s in &spans {
        out.push_str(&format!(
            "{:>14}ns +{:>12}ns tid={} id={} parent={} {}",
            s.start_ns, s.dur_ns, s.tid, s.id, s.parent, s.kind
        ));
        if !s.name.is_empty() {
            out.push_str(&format!(" {}", s.name));
        }
        out.push('\n');
    }
    out
}

fn handle_conn(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    // Read until end of headers (or 8 KiB, whichever first).
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request_line = buf
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .map(|l| String::from_utf8_lossy(l).to_string())
        .unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let response = if method != "GET" {
        http_response("405 Method Not Allowed", "text/plain", "GET only\n")
    } else {
        match path {
            "/metrics" => http_response("200 OK", CONTENT_TYPE, &scrape_body()),
            "/healthz" => http_response("200 OK", "text/plain", "ok\n"),
            "/tracez" => http_response("200 OK", "text/plain", &tracez_body()),
            _ => http_response("404 Not Found", "text/plain", "not found\n"),
        }
    };
    let _ = stream.write_all(&response);
    let _ = stream.flush();
}

/// Binds `addr` (e.g. `127.0.0.1:9464`; port 0 picks a free port) and
/// serves `/metrics`, `/healthz`, and `/tracez` on a detached thread.
/// Also arms the recent-span ring so `/tracez` has content.
pub fn serve(addr: impl ToSocketAddrs) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    crate::collect::set_ring_enabled(true);
    let thread = std::thread::Builder::new()
        .name("trace-expose".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    handle_conn(stream);
                }
            }
        })
        .expect("spawn exposition server thread");
    Ok(ServerHandle {
        addr,
        stop,
        thread: Some(thread),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_maps_to_charset() {
        assert_eq!(sanitize_name("stm.add.ok"), "stm_add_ok");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn empty_snapshot_renders_collector_stats_only() {
        let text = render_prometheus(&MetricsSnapshot::default(), 3, 7, &[]);
        assert!(text.contains("trace_collector_dropped_total 3\n"));
        assert!(text.contains("trace_collector_stored 7\n"));
        validate_exposition(&text).unwrap();
    }
}
