//! Integration tests for the span collector and the two exporters: parent
//! links, nesting, cross-thread attribution, drain semantics, and that
//! both artifact formats are well-formed JSON with correct escaping.
//!
//! The collector and the enabled flag are process-global, so every test
//! serializes on one mutex and leaves tracing disabled on exit.

use std::sync::Mutex;

use proof_trace as trace;

static LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with tracing armed and a freshly drained collector, then
/// disarms. All tests in this binary go through here.
fn with_tracing<T>(f: impl FnOnce() -> T) -> T {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    trace::set_enabled(true);
    let _ = trace::drain();
    let out = f();
    trace::set_enabled(false);
    let _ = trace::drain();
    out
}

#[test]
fn parent_links_and_nesting() {
    with_tracing(|| {
        {
            let mut outer = trace::span("cell", "outer");
            outer.field_u64("n", 7);
            {
                let _inner = trace::span("oracle", "inner");
                trace::event("cache", "hit");
            }
        }
        let data = trace::drain();
        assert_eq!(data.spans.len(), 2, "both spans recorded");
        assert_eq!(data.dropped, 0);
        // drain() sorts by start time, so the enclosing span comes first.
        let (outer, inner) = (&data.spans[0], &data.spans[1]);
        assert_eq!(outer.kind, "cell");
        assert_eq!(inner.kind, "oracle");
        assert_eq!(outer.parent, 0, "root span has no parent");
        assert_eq!(inner.parent, outer.id, "child links to enclosing span");
        assert_eq!(inner.tid, outer.tid);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(
            inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns,
            "child interval nests inside parent"
        );
        assert_eq!(outer.fields, vec![("n", trace::Field::U64(7))]);
        // The instant event was recorded under the then-open inner span.
        assert_eq!(data.events.len(), 1);
        assert_eq!(data.events[0].parent, inner.id);
        assert_eq!(data.events[0].kind, "cache");
    });
}

#[test]
fn spans_on_other_threads_are_roots_with_their_own_tid() {
    with_tracing(|| {
        {
            let _outer = trace::span("cell", "main");
            std::thread::spawn(|| {
                let _s = trace::span("stm", "worker");
            })
            .join()
            .unwrap();
        }
        let data = trace::drain();
        assert_eq!(data.spans.len(), 2);
        let main = data.spans.iter().find(|s| s.kind == "cell").unwrap();
        let worker = data.spans.iter().find(|s| s.kind == "stm").unwrap();
        // The parent stack is thread-local: a span opened on another
        // thread is a root there, not a child of the spawner's span.
        assert_eq!(worker.parent, 0);
        assert_ne!(worker.tid, main.tid, "each thread gets its own tid");
    });
}

#[test]
fn drain_empties_the_collector() {
    with_tracing(|| {
        {
            let _s = trace::span("cell", "once");
        }
        assert_eq!(trace::drain().spans.len(), 1);
        let again = trace::drain();
        assert!(again.spans.is_empty() && again.events.is_empty());
    });
}

#[test]
fn disabled_tracing_records_nothing() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    trace::set_enabled(false);
    let _ = trace::drain();
    {
        let mut s = trace::span("cell", "ghost");
        assert!(!s.is_armed());
        s.field_str("k", "v");
        trace::event("cache", "miss");
    }
    let data = trace::drain();
    assert!(data.spans.is_empty());
    assert!(data.events.is_empty());
}

#[test]
fn exporters_write_wellformed_json() {
    let (data, snap) = with_tracing(|| {
        trace::metrics::reset();
        trace::metrics::counter_inc("test.counter");
        trace::metrics::gauge_set("test.gauge", -3);
        trace::metrics::observe("test.hist.ns", 5);
        {
            // Names with JSON-hostile characters exercise the escaper.
            let mut s = trace::span("oracle", "q\"uo\\te\n");
            s.field_str("k", "v\"w");
            trace::event("journal", "hit");
        }
        (trace::drain(), trace::metrics::snapshot())
    });

    let dir = std::env::temp_dir();
    let jsonl = dir.join(format!("trace_units_{}.jsonl", std::process::id()));
    let chrome = dir.join(format!("trace_units_{}.json", std::process::id()));
    trace::export::write_jsonl(&jsonl, &data, &snap).unwrap();
    trace::export::write_chrome(&chrome, &data).unwrap();

    // Every JSONL line parses, and all record types appear.
    let text = std::fs::read_to_string(&jsonl).unwrap();
    let mut kinds = std::collections::BTreeSet::new();
    for line in text.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("JSONL line parses");
        kinds.insert(
            v.get("t")
                .and_then(|t| t.as_str())
                .expect("record tag")
                .to_string(),
        );
        if v.get("t").and_then(|t| t.as_str()) == Some("span") {
            assert_eq!(
                v.get("name").and_then(|n| n.as_str()),
                Some("q\"uo\\te\n"),
                "escaping round-trips"
            );
        }
    }
    for expected in ["meta", "span", "event", "counter", "gauge", "hist"] {
        assert!(kinds.contains(expected), "JSONL has a {expected} record");
    }

    // The Chrome artifact parses and has the Perfetto essentials: a
    // traceEvents array, thread_name metadata, and one X event per span.
    let v: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&chrome).unwrap()).unwrap();
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    let phase = |e: &serde_json::Value| {
        e.get("ph")
            .and_then(|p| p.as_str())
            .unwrap_or("")
            .to_string()
    };
    let complete = events.iter().filter(|e| phase(e) == "X").count();
    assert_eq!(complete, data.spans.len());
    assert!(events
        .iter()
        .any(|e| phase(e) == "M" && e.get("name").and_then(|n| n.as_str()) == Some("thread_name")));
    assert!(events.iter().any(|e| phase(e) == "i"), "instant event");

    let _ = std::fs::remove_file(&jsonl);
    let _ = std::fs::remove_file(&chrome);
}

#[test]
fn stopwatch_emits_span_only_when_enabled() {
    with_tracing(|| {
        {
            let mut sw = trace::Stopwatch::span("cell", "timed");
            assert!(sw.span_mut().is_armed());
            assert!(sw.elapsed_ms() >= 0.0);
        }
        assert_eq!(trace::drain().spans.len(), 1);
    });
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    trace::set_enabled(false);
    let mut sw = trace::Stopwatch::span("cell", "untimed");
    assert!(!sw.span_mut().is_armed());
    assert!(sw.elapsed_ms() >= 0.0, "stopwatch runs regardless");
}
