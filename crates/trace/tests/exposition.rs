//! Prometheus text-exposition conformance: a golden rendering, property
//! tests over arbitrary histograms (cumulative/monotone `le` buckets that
//! partition the `u64` range), and a live round-trip against the real
//! HTTP endpoint on an ephemeral port.

use proof_trace::expose::{render_prometheus, sanitize_name, validate_exposition};
use proof_trace::metrics::{bucket_bounds, HistData, MetricsSnapshot, HIST_BUCKETS};
use proof_trace::SampledResidue;
use proptest::prelude::*;

fn hist_from_buckets(buckets: Vec<u64>) -> HistData {
    let count = buckets.iter().sum();
    // The exposition only reads buckets/count/sum; a synthetic sum is
    // fine for grammar checks.
    HistData {
        buckets,
        count,
        sum: count * 3,
    }
}

#[test]
fn golden_exposition() {
    let mut snap = MetricsSnapshot::default();
    snap.counters.insert("search.oracle_faults".into(), 4);
    snap.gauges.insert("intern.arena_bytes".into(), 1024);
    let mut buckets = vec![0u64; HIST_BUCKETS];
    buckets[0] = 2; // bucket 0 covers exactly the value 0 (le="0")
    buckets[3] = 5; // bucket 3 covers [4, 7] (le="7")
    snap.hists
        .insert("oracle.latency_ns".into(), hist_from_buckets(buckets));
    let residues = vec![SampledResidue {
        phase: "stm".into(),
        parent_phase: "cell".into(),
        ns: 123456,
        count: 42,
    }];
    let text = render_prometheus(&snap, 7, 99, &residues);
    let expected = "\
# TYPE search_oracle_faults counter
search_oracle_faults 4
# TYPE intern_arena_bytes gauge
intern_arena_bytes 1024
# TYPE oracle_latency_ns histogram
oracle_latency_ns_bucket{le=\"0\"} 2
oracle_latency_ns_bucket{le=\"1\"} 2
oracle_latency_ns_bucket{le=\"3\"} 2
oracle_latency_ns_bucket{le=\"7\"} 7
oracle_latency_ns_bucket{le=\"+Inf\"} 7
oracle_latency_ns_sum 21
oracle_latency_ns_count 7
# HELP trace_collector_dropped_total Trace records discarded at the collector cap; >0 means phase attribution is truncated.
# TYPE trace_collector_dropped_total counter
trace_collector_dropped_total 7
# TYPE trace_collector_stored gauge
trace_collector_stored 99
# TYPE trace_sampled_span_ns counter
trace_sampled_span_ns{phase=\"stm\",parent=\"cell\"} 123456
# TYPE trace_sampled_spans_total counter
trace_sampled_spans_total{phase=\"stm\",parent=\"cell\"} 42
";
    assert_eq!(text, expected);
    validate_exposition(&text).unwrap();
}

#[test]
fn bucket_bounds_partition_u64() {
    // The log2 buckets must tile [0, u64::MAX] with no gap or overlap:
    // bucket i+1 starts exactly one past bucket i's upper bound.
    let (lo0, _) = bucket_bounds(0);
    assert_eq!(lo0, 0);
    for i in 0..HIST_BUCKETS - 1 {
        let (_, hi) = bucket_bounds(i);
        let (lo_next, _) = bucket_bounds(i + 1);
        assert_eq!(
            lo_next,
            hi + 1,
            "gap/overlap between bucket {i} and {}",
            i + 1
        );
    }
    let (_, hi_last) = bucket_bounds(HIST_BUCKETS - 1);
    assert_eq!(hi_last, u64::MAX);
}

#[test]
fn sanitize_rejects_nothing_valid() {
    assert_eq!(sanitize_name("oracle.latency_ns"), "oracle_latency_ns");
    assert_eq!(sanitize_name("9lives"), "_9lives");
    let s = sanitize_name("weird name-with:stuff");
    assert!(s
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));
}

/// Extracts the `le → cumulative` pairs of one histogram family from an
/// exposition, in document order.
fn bucket_lines(text: &str, family: &str) -> Vec<(String, u64)> {
    text.lines()
        .filter_map(|l| {
            let rest = l.strip_prefix(&format!("{family}_bucket{{le=\""))?;
            let (le, tail) = rest.split_once("\"}")?;
            Some((le.to_string(), tail.trim().parse().ok()?))
        })
        .collect()
}

proptest! {
    /// Any histogram renders to a conformant exposition whose buckets are
    /// cumulative, monotone, and end at `+Inf` = `_count`.
    #[test]
    fn histograms_render_cumulative_and_monotone(
        raw in proptest::collection::vec(0u64..1000, 1..HIST_BUCKETS),
        dropped in 0u64..100,
        stored in 0u64..10_000,
    ) {
        let mut buckets = vec![0u64; HIST_BUCKETS];
        for (i, v) in raw.iter().enumerate() {
            buckets[i] = *v;
        }
        let total: u64 = buckets.iter().sum();
        let mut snap = MetricsSnapshot::default();
        snap.hists.insert("t.h".into(), hist_from_buckets(buckets.clone()));
        let text = render_prometheus(&snap, dropped, stored, &[]);
        prop_assert!(validate_exposition(&text).is_ok(), "invalid: {:?}\n{text}", validate_exposition(&text));

        let lines = bucket_lines(&text, "t_h");
        prop_assert!(!lines.is_empty());
        // Monotone non-decreasing, +Inf last and equal to the count.
        for w in lines.windows(2) {
            prop_assert!(w[1].1 >= w[0].1, "non-monotone: {w:?}");
        }
        let (last_le, last_cum) = lines.last().unwrap();
        prop_assert_eq!(last_le.as_str(), "+Inf");
        prop_assert_eq!(*last_cum, total);
        // Each finite le matches the true cumulative sum at its bucket
        // boundary — the rendering really is cumulative, not per-bucket.
        for (le, cum) in &lines {
            if le == "+Inf" { continue; }
            let bound: u64 = le.parse().unwrap();
            let idx = (0..HIST_BUCKETS).find(|&i| bucket_bounds(i).1 == bound).unwrap();
            let want: u64 = buckets[..=idx].iter().sum();
            prop_assert_eq!(*cum, want, "le={le}");
        }
    }

    /// Residue labels never break the exposition grammar, whatever the
    /// phase strings contain.
    #[test]
    fn residue_labels_always_escape(
        phase in ".*",
        parent in ".*",
        ns in 0u64..u64::MAX,
        count in 1u64..u64::MAX,
    ) {
        let residues = vec![SampledResidue { phase, parent_phase: parent, ns, count }];
        let text = render_prometheus(&MetricsSnapshot::default(), 0, 0, &residues);
        prop_assert!(validate_exposition(&text).is_ok(), "{:?}", validate_exposition(&text));
    }
}

#[test]
fn live_endpoint_round_trip() {
    // Bind an ephemeral port, drive real traffic through a TcpStream, and
    // hold the whole response to the conformance validator.
    use std::io::{Read, Write};
    let handle = proof_trace::expose::serve("127.0.0.1:0").expect("bind");
    let addr = handle.addr();

    let get = |path: &str| -> (String, String) {
        let mut s = std::net::TcpStream::connect(addr).expect("connect");
        write!(
            s,
            "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).expect("read");
        let (head, body) = buf.split_once("\r\n\r\n").expect("http split");
        (head.to_string(), body.to_string())
    };

    let (head, body) = get("/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");
    validate_exposition(&body).unwrap_or_else(|e| panic!("invalid scrape: {e}\n{body}"));
    assert!(body.contains("trace_collector_dropped_total"));

    let (head, body) = get("/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body, "ok\n");

    let (head, _) = get("/tracez");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");

    let (head, _) = get("/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    handle.stop();
}
