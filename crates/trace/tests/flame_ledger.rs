//! Flamegraph collapsed-stack export golden and run-ledger durability
//! properties (torn tails, checksum tampering, arbitrary record content).

use proof_trace::export::collapsed_stacks;
use proof_trace::ledger::{Ledger, RunRecord};
use proof_trace::SpanRec;
use proptest::prelude::*;

fn span(id: u64, parent: u64, kind: &'static str, name: &str, dur_us: u64) -> SpanRec {
    SpanRec {
        id,
        parent,
        tid: 1,
        kind,
        name: name.to_string(),
        start_ns: id * 10,
        dur_ns: dur_us * 1_000,
        fields: Vec::new(),
    }
}

#[test]
fn collapsed_stacks_golden() {
    // cell
    // └─ thm (two children: oracle, stm) — self time = 100-40-25 = 35 µs
    //    ├─ oracle (leaf, 40 µs)
    //    └─ stm    (leaf, 25 µs)
    // cell self = 200-100 = 100 µs; a second identical oracle path merges.
    let spans = vec![
        span(1, 0, "cell", "mini/vanilla", 200),
        span(2, 1, "thm", "append_ok", 100),
        span(3, 2, "oracle", "propose", 40),
        span(4, 2, "stm", "add", 25),
    ];
    let got = collapsed_stacks(&spans);
    let expected = "\
cell:mini/vanilla 100
cell:mini/vanilla;thm:append_ok 35
cell:mini/vanilla;thm:append_ok;oracle:propose 40
cell:mini/vanilla;thm:append_ok;stm:add 25
";
    assert_eq!(got, expected);
}

#[test]
fn collapsed_stacks_sanitizes_separators() {
    let spans = vec![span(1, 0, "cell", "a;b c", 10)];
    let got = collapsed_stacks(&spans);
    assert_eq!(got, "cell:a_b_c 10\n");
}

#[test]
fn collapsed_stacks_orphan_becomes_root() {
    // Parent id 99 was dropped at the cap: the child renders as a root
    // rather than vanishing.
    let spans = vec![span(5, 99, "stm", "add", 12)];
    assert_eq!(collapsed_stacks(&spans), "stm:add 12\n");
}

fn sample_record(i: u64) -> RunRecord {
    RunRecord {
        ts_unix: 1_700_000_000 + i,
        bin: "table2".into(),
        label: "main-grid".into(),
        variant: String::new(),
        git_sha: "abc123def456".into(),
        corpus_hash: format!("{i:016x}"),
        jobs: 2,
        theorems: 147,
        proved: 53 + i,
        wall_ms: 1234.5 + i as f64,
        thm_per_sec: 60.0,
        ..RunRecord::default()
    }
}

#[test]
fn ledger_survives_torn_tail_then_appends() {
    let dir = std::env::temp_dir().join(format!("ledger-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("RUNS.jsonl");
    let ledger = Ledger::at(&path);
    assert!(ledger.append(&sample_record(1)));
    assert!(ledger.append(&sample_record(2)));

    // Tear the tail mid-record, the way a crash mid-write would.
    let mut text = std::fs::read_to_string(&path).unwrap();
    let keep = text.len() - 17;
    text.truncate(keep);
    std::fs::write(&path, &text).unwrap();

    // The next append must terminate the torn line and the loader must
    // keep every intact record, skip the torn one.
    assert!(ledger.append(&sample_record(3)));
    let loaded = ledger.load();
    assert_eq!(loaded.len(), 2, "record 1 intact + record 3 appended");
    assert_eq!(loaded[0].proved, 54);
    assert_eq!(loaded[1].proved, 56);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round-trip: any record content survives serialize → append →
    /// load, including hostile strings in the free-text fields.
    #[test]
    fn ledger_round_trips_arbitrary_records(
        bin in ".{0,20}",
        label in ".{0,20}",
        variant in ".{0,20}",
        jobs in 0u64..512,
        theorems in 0u64..100_000,
        proved in 0u64..100_000,
        wall_us in 0u64..1_000_000_000,
        faults in 0u64..1_000,
    ) {
        let wall_ms = wall_us as f64 / 1e3;
        let dir = std::env::temp_dir().join(format!(
            "ledger-rt-{}-{}", std::process::id(), fastrand_seed(&bin, &label)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let ledger = Ledger::at(dir.join("RUNS.jsonl"));
        let rec = RunRecord {
            ts_unix: 1_700_000_000,
            bin, label, variant,
            git_sha: "deadbeef".into(),
            corpus_hash: "0".repeat(16),
            jobs, theorems, proved, wall_ms,
            thm_per_sec: 1.5,
            oracle_faults: faults,
            ..RunRecord::default()
        };
        prop_assert!(ledger.append(&rec));
        let loaded = ledger.load();
        prop_assert_eq!(loaded.len(), 1);
        let got = &loaded[0];
        prop_assert_eq!(&got.bin, &rec.bin);
        prop_assert_eq!(&got.label, &rec.label);
        prop_assert_eq!(&got.variant, &rec.variant);
        prop_assert_eq!(got.theorems, rec.theorems);
        prop_assert_eq!(got.proved, rec.proved);
        prop_assert_eq!(got.oracle_faults, rec.oracle_faults);
        prop_assert!((got.wall_ms - rec.wall_ms).abs() < 1e-9 * rec.wall_ms.max(1.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Truncating the file at any byte offset never breaks future
    /// appends, and every record whose line survived intact still loads.
    #[test]
    fn ledger_tolerates_any_truncation(cut_back in 1usize..200) {
        let dir = std::env::temp_dir().join(format!(
            "ledger-cut-{}-{cut_back}", std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("RUNS.jsonl");
        let ledger = Ledger::at(&path);
        for i in 0..3 {
            prop_assert!(ledger.append(&sample_record(i)));
        }
        let bytes = std::fs::read(&path).unwrap();
        let cut = bytes.len().saturating_sub(cut_back);
        std::fs::write(&path, &bytes[..cut]).unwrap();

        prop_assert!(ledger.append(&sample_record(99)));
        let loaded = ledger.load();
        // The appended record always loads; earlier fully-intact lines do
        // too. Never more than the 3 originals + 1.
        prop_assert!(!loaded.is_empty());
        prop_assert!(loaded.len() <= 4);
        prop_assert!(loaded.iter().any(|r| r.proved == 99 + 53));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flipping any byte inside a stored line either leaves the record
    /// loadable (the flip missed the payload semantics) or drops exactly
    /// that record — never a bogus record, never a load failure.
    #[test]
    fn ledger_checksum_catches_corruption(pos_seed in 0u64..10_000, delta in 1u8..255) {
        let dir = std::env::temp_dir().join(format!(
            "ledger-flip-{}-{delta}", std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("RUNS.jsonl");
        let ledger = Ledger::at(&path);
        prop_assert!(ledger.append(&sample_record(7)));
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = (pos_seed as usize) % (bytes.len() - 1);
        let flipped = bytes[pos].wrapping_add(delta);
        // Skip flips that create or destroy the line terminator — those
        // change line structure, not content, and the truncation property
        // already covers them.
        if bytes[pos] != b'\n' && flipped != b'\n' {
            bytes[pos] = flipped;
            std::fs::write(&path, &bytes).unwrap();
            let loaded = ledger.load();
            prop_assert!(loaded.len() <= 1);
            if let Some(r) = loaded.first() {
                // If it loaded at all, the numeric payload must be the
                // original one (the flip hit redundant text) — a checksum
                // pass with altered semantics would be a real failure.
                prop_assert_eq!(r.theorems, 147);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Tiny deterministic hash for temp-dir naming inside proptest cases
/// (`Date::now`-free, collision-tolerant — the dirs are removed anyway).
fn fastrand_seed(a: &str, b: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for byte in a.bytes().chain(b.bytes()) {
        h ^= byte as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}
