//! Property tests for the log₂ histogram: the exact-merge contract (the
//! reason per-shard histograms can be combined without losing anything)
//! and the bucket-indexing invariants the report's quantiles depend on.

use proof_trace::metrics::{bucket_bounds, bucket_of, HistData, Histogram, HIST_BUCKETS};
use proptest::prelude::*;

proptest! {
    /// Merging shard-local histograms element-wise is *equal* to recording
    /// every value into one histogram serially — the property that makes
    /// the sharded collector's metrics trustworthy.
    #[test]
    fn sharded_merge_equals_serial(
        // Bounded values keep the exact sum well inside u64 no matter the
        // count; u64::MAX itself is covered by `bounds_partition_u64`.
        values in prop::collection::vec(0u64..(1 << 56), 0..256),
        shards in 1usize..8,
    ) {
        let serial = Histogram::default();
        for &v in &values {
            serial.record(v);
        }

        let shard_hists: Vec<Histogram> =
            (0..shards).map(|_| Histogram::default()).collect();
        for (i, &v) in values.iter().enumerate() {
            shard_hists[i % shards].record(v);
        }
        let mut merged = HistData::default();
        for h in &shard_hists {
            merged.merge(&h.snapshot());
        }

        prop_assert_eq!(merged, serial.snapshot());
    }

    /// Merge is order-independent: any permutation of the shards gives the
    /// same aggregate.
    #[test]
    fn merge_is_commutative(
        a in prop::collection::vec(0u64..(1 << 56), 0..64),
        b in prop::collection::vec(0u64..(1 << 56), 0..64),
    ) {
        let (ha, hb) = (Histogram::default(), Histogram::default());
        for &v in &a { ha.record(v); }
        for &v in &b { hb.record(v); }
        let mut ab = ha.snapshot();
        ab.merge(&hb.snapshot());
        let mut ba = hb.snapshot();
        ba.merge(&ha.snapshot());
        prop_assert_eq!(ab, ba);
    }

    /// Every value lands in the bucket whose bounds contain it, and the
    /// count is the bucket total. Right-shifting a full-width draw by a
    /// random amount covers every bucket, small and large.
    #[test]
    fn values_land_in_their_bucket(raw in 0u64..u64::MAX, shift in 0u64..64) {
        let v = raw >> shift;
        let i = bucket_of(v);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "{v} outside bucket {i} = [{lo}, {hi}]");

        let h = Histogram::default();
        h.record(v);
        let d = h.snapshot();
        prop_assert_eq!(d.count, 1);
        prop_assert_eq!(d.sum, v);
        prop_assert_eq!(d.buckets[i], 1);
        prop_assert_eq!(d.buckets.iter().sum::<u64>(), d.count);
    }

    /// The quantile estimate is monotone in q and never exceeds the top
    /// occupied bucket's upper bound.
    #[test]
    fn quantiles_are_monotone(
        values in prop::collection::vec(0u64..(1 << 56), 1..64),
        q1 in 0u64..101,
        q2 in 0u64..101,
    ) {
        let h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        let d = h.snapshot();
        let (q1, q2) = (q1 as f64 / 100.0, q2 as f64 / 100.0);
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(d.quantile_upper(lo_q) <= d.quantile_upper(hi_q));
        let max = values.iter().max().copied().unwrap_or(0);
        prop_assert_eq!(d.quantile_upper(1.0), bucket_bounds(bucket_of(max)).1);
    }
}

/// The 65 bucket ranges tile `u64` exactly: contiguous, non-overlapping,
/// starting at 0 and ending at `u64::MAX`.
#[test]
fn bounds_partition_u64() {
    let mut expected_lo = 0u64;
    for i in 0..HIST_BUCKETS {
        let (lo, hi) = bucket_bounds(i);
        assert_eq!(
            lo,
            expected_lo,
            "bucket {i} starts where {} ended",
            i.max(1) - 1
        );
        assert!(hi >= lo);
        if i + 1 < HIST_BUCKETS {
            expected_lo = hi + 1;
        } else {
            assert_eq!(hi, u64::MAX);
        }
    }
    assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
}
