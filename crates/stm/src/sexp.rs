//! A minimal s-expression representation for the wire protocol.

use std::fmt;

/// An s-expression: an atom or a list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sexp {
    /// An atom; rendered quoted when it contains spaces or parentheses.
    Atom(String),
    /// A list of s-expressions.
    List(Vec<Sexp>),
}

impl Sexp {
    /// Convenience atom constructor.
    pub fn atom(s: impl Into<String>) -> Sexp {
        Sexp::Atom(s.into())
    }

    /// Convenience list constructor.
    pub fn list(items: Vec<Sexp>) -> Sexp {
        Sexp::List(items)
    }

    /// The atom's text, if this is an atom.
    pub fn as_atom(&self) -> Option<&str> {
        match self {
            Sexp::Atom(s) => Some(s),
            Sexp::List(_) => None,
        }
    }

    /// The list's items, if this is a list.
    pub fn as_list(&self) -> Option<&[Sexp]> {
        match self {
            Sexp::Atom(_) => None,
            Sexp::List(v) => Some(v),
        }
    }
}

fn needs_quoting(s: &str) -> bool {
    s.is_empty()
        || s.chars()
            .any(|c| c.is_whitespace() || matches!(c, '(' | ')' | '"' | '\\'))
}

impl fmt::Display for Sexp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sexp::Atom(s) => {
                if needs_quoting(s) {
                    write!(f, "\"")?;
                    for c in s.chars() {
                        match c {
                            '"' => write!(f, "\\\"")?,
                            '\\' => write!(f, "\\\\")?,
                            '\n' => write!(f, "\\n")?,
                            c => write!(f, "{c}")?,
                        }
                    }
                    write!(f, "\"")
                } else {
                    write!(f, "{s}")
                }
            }
            Sexp::List(items) => {
                write!(f, "(")?;
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{it}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A parse error with a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SexpError(pub String);

/// Parses one s-expression from the input.
pub fn parse(src: &str) -> Result<Sexp, SexpError> {
    let mut chars: Vec<char> = src.chars().collect();
    chars.push(' ');
    let mut pos = 0usize;
    let out = parse_at(&chars, &mut pos)?;
    while pos < chars.len() {
        if !chars[pos].is_whitespace() {
            return Err(SexpError(format!("trailing input at {pos}")));
        }
        pos += 1;
    }
    Ok(out)
}

fn parse_at(chars: &[char], pos: &mut usize) -> Result<Sexp, SexpError> {
    while *pos < chars.len() && chars[*pos].is_whitespace() {
        *pos += 1;
    }
    if *pos >= chars.len() {
        return Err(SexpError("unexpected end of input".into()));
    }
    match chars[*pos] {
        '(' => {
            *pos += 1;
            let mut items = Vec::new();
            loop {
                while *pos < chars.len() && chars[*pos].is_whitespace() {
                    *pos += 1;
                }
                if *pos >= chars.len() {
                    return Err(SexpError("unterminated list".into()));
                }
                if chars[*pos] == ')' {
                    *pos += 1;
                    return Ok(Sexp::List(items));
                }
                items.push(parse_at(chars, pos)?);
            }
        }
        ')' => Err(SexpError("unexpected )".into())),
        '"' => {
            *pos += 1;
            let mut s = String::new();
            while *pos < chars.len() {
                match chars[*pos] {
                    '"' => {
                        *pos += 1;
                        return Ok(Sexp::Atom(s));
                    }
                    '\\' => {
                        *pos += 1;
                        if *pos >= chars.len() {
                            return Err(SexpError("bad escape".into()));
                        }
                        match chars[*pos] {
                            'n' => s.push('\n'),
                            c => s.push(c),
                        }
                        *pos += 1;
                    }
                    c => {
                        s.push(c);
                        *pos += 1;
                    }
                }
            }
            Err(SexpError("unterminated string".into()))
        }
        _ => {
            let start = *pos;
            while *pos < chars.len()
                && !chars[*pos].is_whitespace()
                && !matches!(chars[*pos], '(' | ')' | '"')
            {
                *pos += 1;
            }
            Ok(Sexp::Atom(chars[start..*pos].iter().collect()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let cases = [
            "(Add (at 3) (tactic \"intros n.\"))",
            "(Goals 4)",
            "atom",
            "(a (b c) \"with space\")",
        ];
        for c in cases {
            let s = parse(c).unwrap();
            let printed = s.to_string();
            assert_eq!(parse(&printed).unwrap(), s);
        }
    }

    #[test]
    fn quoting_and_escapes() {
        let s = Sexp::atom("has \"quotes\" and\nnewline");
        let printed = s.to_string();
        assert_eq!(parse(&printed).unwrap(), s);
    }

    #[test]
    fn errors() {
        assert!(parse("(unclosed").is_err());
        assert!(parse("a b").is_err());
        assert!(parse(")").is_err());
    }
}
