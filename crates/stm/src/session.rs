//! Proof sessions: the state-transition machine proper.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use minicoq::analysis::{preflight_state, PreflightRejection, PreflightVerdict};
use minicoq::env::Env;
use minicoq::error::TacticError;
use minicoq::formula::Formula;
use minicoq::fuel::Fuel;
use minicoq::goal::{Goal, ProofState};
use minicoq::intern::{state_stamp, state_stamp_from_parent, StateStamp};
use minicoq::parse::parse_tactic;
use minicoq::tactic::apply_tactic_timed;
use proof_chaos::{FaultKind, FaultPlan};

/// Identifier of a proof state within a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u64);

/// Configuration of a session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Fuel budget per tactic — the deterministic analogue of the paper's
    /// 5-second timeout.
    pub tactic_fuel: u64,
    /// Reject tactics that lead to a proof state already present in the
    /// session (the paper's duplicate-state rule). Disable for linear
    /// replay of known-good scripts.
    pub dedupe_states: bool,
    /// Statically pre-screen tactics with [`minicoq::analysis`] before
    /// executing them; guaranteed failures surface as
    /// [`AddError::Preflight`] without spending any tactic fuel. Off by
    /// default so a bare session reports the evaluator's own taxonomy;
    /// the search layer turns it on.
    pub preflight: bool,
    /// Chaos-testing hook: a seeded fault plan injecting spurious
    /// [`AddError::Timeout`]s for plan-selected tactics, simulating a
    /// wall-clock prover stall. `None` (the default) runs clean.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Names this session in fault-site identifiers (conventionally the
    /// theorem name), so injected timeouts are deterministic per theorem
    /// rather than per process.
    pub fault_scope: String,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            tactic_fuel: minicoq::fuel::DEFAULT_TACTIC_FUEL,
            dedupe_states: true,
            preflight: false,
            fault_plan: None,
            fault_scope: String::new(),
        }
    }
}

/// Why an `add` failed, mirroring the paper's invalid-tactic taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddError {
    /// The proof assistant rejected the tactic.
    Rejected(String),
    /// The tactic could not be parsed (also a rejection, kept separate for
    /// diagnostics).
    Parse(String),
    /// The tactic exceeded its execution budget.
    Timeout,
    /// The pre-flight analyzer proved the tactic cannot succeed; it was
    /// never executed. A refinement of `Rejected` with a machine-readable
    /// reason code.
    Preflight(PreflightRejection),
    /// The resulting proof state was already in the session; the id of the
    /// earlier equal state is attached.
    DuplicateState(StateId),
    /// The referenced state id does not exist (or was cancelled).
    NoSuchState,
}

impl std::fmt::Display for AddError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AddError::Rejected(m) => write!(f, "rejected: {m}"),
            AddError::Parse(m) => write!(f, "parse error: {m}"),
            AddError::Timeout => write!(f, "timeout"),
            AddError::Preflight(r) => write!(f, "preflight: {r}"),
            AddError::DuplicateState(id) => write!(f, "duplicate of state {}", id.0),
            AddError::NoSuchState => write!(f, "no such state"),
        }
    }
}

impl AddError {
    /// A stable label for the `stm.add.<label>` outcome counters — the
    /// `AddError` taxonomy as metric names.
    pub fn metric_label(&self) -> &'static str {
        match self {
            AddError::Rejected(_) => "rejected",
            AddError::Parse(_) => "parse",
            AddError::Timeout => "timeout",
            AddError::Preflight(_) => "preflight",
            AddError::DuplicateState(_) => "duplicate",
            AddError::NoSuchState => "no_such_state",
        }
    }
}

impl std::error::Error for AddError {}

/// The cached `stm.add.<outcome>` counter handle for a known outcome
/// label (the two success labels plus every [`AddError::metric_label`]).
/// The label set is closed, so each gets a static
/// [`HotCounter`](proof_trace::metrics::HotCounter) and the hot path
/// never formats a name or walks the registry.
fn add_outcome_counter(outcome: &str) -> &'static proof_trace::metrics::HotCounter {
    use proof_trace::metrics::HotCounter;
    static PROVED: HotCounter = HotCounter::new("stm.add.proved");
    static OK: HotCounter = HotCounter::new("stm.add.ok");
    static REJECTED: HotCounter = HotCounter::new("stm.add.rejected");
    static PARSE: HotCounter = HotCounter::new("stm.add.parse");
    static TIMEOUT: HotCounter = HotCounter::new("stm.add.timeout");
    static PREFLIGHT: HotCounter = HotCounter::new("stm.add.preflight");
    static DUPLICATE: HotCounter = HotCounter::new("stm.add.duplicate");
    static NO_SUCH_STATE: HotCounter = HotCounter::new("stm.add.no_such_state");
    match outcome {
        "proved" => &PROVED,
        "ok" => &OK,
        "rejected" => &REJECTED,
        "parse" => &PARSE,
        "timeout" => &TIMEOUT,
        "preflight" => &PREFLIGHT,
        "duplicate" => &DUPLICATE,
        _ => {
            debug_assert_eq!(outcome, "no_such_state", "unknown add outcome");
            &NO_SUCH_STATE
        }
    }
}

/// The replayable outcome of running one tactic sentence against one
/// focused goal. Tactic evaluation is a pure function of `(environment,
/// focused goal, tactic source, fuel budget)` — the unfocused tail rides
/// along untouched — so the whole `parse → preflight → apply` pipeline can
/// be memoized process-wide and replayed byte-for-byte, including the
/// exact fuel charge.
#[derive(Debug, Clone)]
struct CachedAdd {
    /// True when the outcome precedes the fault-injection point (a parse
    /// error): replayed before consulting the fault plan, like the
    /// original evaluation order.
    pre_fault: bool,
    /// The replacement goals for the focused goal on success, or the
    /// error the pipeline produced.
    result: Result<Vec<Arc<Goal>>, AddError>,
    /// Fuel the original evaluation charged.
    fuel: u64,
}

/// Memo key fields that select an evaluation pipeline: environment
/// snapshot uid, fuel budget, and whether preflight screening is on.
type MemoConfig = (u64, u64, bool);

/// `config → tactic source → focused goal → outcome`. `Arc<Goal>` keys
/// borrow-compare as `Goal` and are pointer-shared with session states, so
/// inserts never deep-copy. Entries for stale environment uids are dropped
/// wholesale when the cap is reached.
type ApplyMemo = HashMap<MemoConfig, HashMap<String, HashMap<Arc<Goal>, CachedAdd>>>;

/// Process-global cap on memoized outcomes; the table is cleared when it
/// fills (the working set of one theorem is far smaller).
const APPLY_MEMO_CAP: usize = 1 << 18;

fn apply_memo() -> &'static Mutex<(usize, ApplyMemo)> {
    static MEMO: OnceLock<Mutex<(usize, ApplyMemo)>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new((0, HashMap::new())))
}

/// Recovers the table from a poisoned lock: entries are only ever inserted
/// whole, so the map is valid after a panicking holder.
fn memo_lock() -> std::sync::MutexGuard<'static, (usize, ApplyMemo)> {
    apply_memo()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn memo_get(cfg: MemoConfig, tactic: &str, goal: &Goal) -> Option<CachedAdd> {
    let guard = memo_lock();
    let hit = guard
        .1
        .get(&cfg)
        .and_then(|m| m.get(tactic))
        .and_then(|m| m.get(goal))
        .cloned();
    if proof_trace::enabled() {
        use proof_trace::metrics::HotCounter;
        static HIT: HotCounter = HotCounter::new("stm.apply_memo.hit");
        static MISS: HotCounter = HotCounter::new("stm.apply_memo.miss");
        if hit.is_some() { &HIT } else { &MISS }.inc();
    }
    hit
}

fn memo_put(cfg: MemoConfig, tactic: &str, goal: Arc<Goal>, cached: CachedAdd) {
    let mut guard = memo_lock();
    if guard.0 >= APPLY_MEMO_CAP {
        guard.0 = 0;
        guard.1.clear();
    }
    let by_goal = guard
        .1
        .entry(cfg)
        .or_default()
        .entry(tactic.to_string())
        .or_default();
    if by_goal.insert(goal, cached).is_none() {
        guard.0 += 1;
    }
}

/// The successful result of an `add`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddOutcome {
    /// The new state's id.
    pub id: StateId,
    /// True when the new state has no goals left (proof complete).
    pub proved: bool,
}

#[derive(Debug, Clone)]
struct StateEntry {
    parent: Option<StateId>,
    tactic: String,
    state: ProofState,
    /// Interned identity of `state`: canonical hash plus per-goal
    /// alpha-class ids, computed incrementally from the parent's stamp.
    stamp: StateStamp,
    alive: bool,
}

/// A proof session for a single theorem: a tree of proof states rooted at
/// the initial goal.
#[derive(Debug, Clone)]
pub struct ProofSession {
    env: Arc<Env>,
    config: SessionConfig,
    entries: Vec<StateEntry>,
    hashes: HashMap<u64, StateId>,
    fuel_spent: u64,
}

impl ProofSession {
    /// Opens a session on `stmt`; the root state has id 0. The environment
    /// is shared, not copied — many sessions (e.g. parallel search workers)
    /// can hold the same snapshot.
    pub fn new(env: impl Into<Arc<Env>>, stmt: Formula, config: SessionConfig) -> ProofSession {
        let env = env.into();
        let root = ProofState::new(stmt);
        let stamp = state_stamp(&root);
        let mut hashes = HashMap::new();
        hashes.insert(stamp.hash, StateId(0));
        ProofSession {
            env,
            config,
            entries: vec![StateEntry {
                parent: None,
                tactic: String::new(),
                state: root,
                stamp,
                alive: true,
            }],
            hashes,
            fuel_spent: 0,
        }
    }

    /// The root state id.
    pub fn root(&self) -> StateId {
        StateId(0)
    }

    /// The environment the session checks against.
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// Total fuel charged across all tactics so far.
    pub fn fuel_spent(&self) -> u64 {
        self.fuel_spent
    }

    fn entry(&self, id: StateId) -> Option<&StateEntry> {
        self.entries.get(id.0 as usize).filter(|e| e.alive)
    }

    /// The proof state at `id`.
    pub fn state(&self, id: StateId) -> Option<&ProofState> {
        self.entry(id).map(|e| &e.state)
    }

    /// True when the state at `id` has no open goals.
    pub fn is_proved(&self, id: StateId) -> bool {
        self.entry(id)
            .map(|e| e.state.is_complete())
            .unwrap_or(false)
    }

    /// The tactic sentence that produced `id` (empty for the root).
    pub fn tactic_of(&self, id: StateId) -> Option<&str> {
        self.entry(id).map(|e| e.tactic.as_str())
    }

    /// The parent of `id`.
    pub fn parent_of(&self, id: StateId) -> Option<StateId> {
        self.entry(id).and_then(|e| e.parent)
    }

    /// The chain of tactic sentences from the root to `id`, in order.
    pub fn script_to(&self, id: StateId) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            let Some(e) = self.entry(c) else { break };
            if e.parent.is_some() {
                out.push(e.tactic.clone());
            }
            cur = e.parent;
        }
        out.reverse();
        out
    }

    /// Runs a tactic sentence against the state `at`.
    ///
    /// When tracing is armed, the per-outcome counter is a cached
    /// [`HotCounter`](proof_trace::metrics::HotCounter) handle — this
    /// runs once per tactic sentence, and the registry lookup (global
    /// lock, map walk, key allocation) would otherwise dominate the
    /// armed-tracing overhead budget.
    pub fn add(&mut self, at: StateId, tactic_src: &str) -> Result<AddOutcome, AddError> {
        if !proof_trace::enabled() {
            return self.add_inner(at, tactic_src);
        }
        // Hot path: one span per tactic sentence. Sampled (TRACE_SAMPLE)
        // so an armed trace costs a fraction of full recording; the
        // outcome counters below stay exact either way.
        static SITE: proof_trace::SampleSite = proof_trace::SampleSite::new();
        let mut sp = proof_trace::span_sampled(&SITE, "stm", "add");
        let result = self.add_inner(at, tactic_src);
        let outcome = match &result {
            Ok(o) if o.proved => "proved",
            Ok(_) => "ok",
            Err(e) => e.metric_label(),
        };
        sp.field_str("outcome", outcome);
        add_outcome_counter(outcome).inc();
        result
    }

    fn add_inner(&mut self, at: StateId, tactic_src: &str) -> Result<AddOutcome, AddError> {
        let Some(entry) = self.entry(at) else {
            return Err(AddError::NoSuchState);
        };
        let base = entry.state.clone();
        let base_stamp = entry.stamp.clone();
        let memo_cfg: MemoConfig = (
            self.env.uid.get(),
            self.config.tactic_fuel,
            self.config.preflight,
        );
        // Replay a memoized evaluation of this (goal, tactic) pair, if any:
        // everything from parsing through tactic execution is a pure
        // function of the focused goal under this memo configuration. The
        // fault-injection check still runs per call (its site includes the
        // state id), at the same point in the order as a live evaluation.
        if let Some(focused) = base.goals.first() {
            if let Some(cached) = memo_get(memo_cfg, tactic_src, focused) {
                if cached.pre_fault {
                    return Err(cached.result.expect_err("pre-fault outcomes are errors"));
                }
                if self.injected_stall(at, tactic_src) {
                    return Err(AddError::Timeout);
                }
                self.fuel_spent += cached.fuel;
                let replacement = cached.result?;
                let mut goals = replacement;
                goals.extend(base.goals.iter().skip(1).cloned());
                return self.commit(at, &base, &base_stamp, tactic_src, ProofState { goals });
            }
        }
        let tac = match parse_tactic(&self.env, base.focused(), tactic_src) {
            Ok(t) => t,
            Err(e) => {
                let err = match e {
                    TacticError::Parse(m) => AddError::Parse(m),
                    other => AddError::Rejected(other.to_string()),
                };
                self.memoize(memo_cfg, tactic_src, &base, true, Err(err.clone()), 0);
                return Err(err);
            }
        };
        // Injected prover stall: the tactic parsed but "ran out the clock".
        // Reported exactly like a genuine timeout (the search cannot tell
        // them apart, which is the point), with no fuel charged — a stalled
        // prover burns wall-clock, not our deterministic budget.
        if self.injected_stall(at, tactic_src) {
            return Err(AddError::Timeout);
        }
        if self.config.preflight {
            let _sp = proof_trace::span("preflight", "");
            if let PreflightVerdict::Reject(r) =
                preflight_state(&self.env, &base, &tac, self.config.tactic_fuel)
            {
                let err = AddError::Preflight(r);
                self.memoize(memo_cfg, tactic_src, &base, false, Err(err.clone()), 0);
                return Err(err);
            }
        }
        let mut fuel = Fuel::new(self.config.tactic_fuel);
        let result = apply_tactic_timed(&self.env, &base, &tac, &mut fuel);
        self.fuel_spent += fuel.spent();
        let new_state = match result {
            Ok(s) => s,
            Err(e) => {
                let err = match e {
                    TacticError::Timeout => AddError::Timeout,
                    TacticError::Parse(m) => AddError::Parse(m),
                    other => AddError::Rejected(other.to_string()),
                };
                self.memoize(
                    memo_cfg,
                    tactic_src,
                    &base,
                    false,
                    Err(err.clone()),
                    fuel.spent(),
                );
                return Err(err);
            }
        };
        // Only the focused goal's replacement is memoized; the unfocused
        // tail must have ridden along untouched (pointer-identical), which
        // every tactic guarantees via `replace_focused`. Checked anyway —
        // a tactic that broke the invariant would silently be exempted
        // from memoization rather than corrupt replays.
        if !base.goals.is_empty() {
            let tail_len = base.goals.len() - 1;
            if new_state.goals.len() >= tail_len {
                let split = new_state.goals.len() - tail_len;
                let tail_shared = new_state.goals[split..]
                    .iter()
                    .zip(base.goals[1..].iter())
                    .all(|(a, b)| Arc::ptr_eq(a, b));
                if tail_shared {
                    self.memoize(
                        memo_cfg,
                        tactic_src,
                        &base,
                        false,
                        Ok(new_state.goals[..split].to_vec()),
                        fuel.spent(),
                    );
                }
            }
        }
        self.commit(at, &base, &base_stamp, tactic_src, new_state)
    }

    /// True when the armed fault plan injects a prover stall for this call.
    fn injected_stall(&self, at: StateId, tactic_src: &str) -> bool {
        match &self.config.fault_plan {
            Some(plan) => {
                let site = format!("{}::{}@{}", self.config.fault_scope, tactic_src, at.0);
                plan.should_fault(FaultKind::StmTimeout, &site)
            }
            None => false,
        }
    }

    /// Stores one evaluated outcome in the process-global apply memo.
    fn memoize(
        &self,
        cfg: MemoConfig,
        tactic_src: &str,
        base: &ProofState,
        pre_fault: bool,
        result: Result<Vec<Arc<Goal>>, AddError>,
        fuel: u64,
    ) {
        if let Some(focused) = base.goals.first() {
            memo_put(
                cfg,
                tactic_src,
                Arc::clone(focused),
                CachedAdd {
                    pre_fault,
                    result,
                    fuel,
                },
            );
        }
    }

    /// Stamps, deduplicates, and records an evaluated successor state.
    fn commit(
        &mut self,
        at: StateId,
        base: &ProofState,
        base_stamp: &StateStamp,
        tactic_src: &str,
        new_state: ProofState,
    ) -> Result<AddOutcome, AddError> {
        // Incremental stamping: goals shared (by pointer) with the parent
        // reuse its cached alpha-class ids; only fresh goals are
        // re-canonicalized. The hash is byte-compatible with the previous
        // `statehash::state_hash`.
        let stamp = state_stamp_from_parent(&new_state, base, base_stamp);
        if self.config.dedupe_states {
            if let Some(&prev) = self.hashes.get(&stamp.hash) {
                // Hash collision check: per-goal class ids are equal iff
                // the canonical state keys are equal.
                if let Some(prev_entry) = self.entry(prev) {
                    if prev_entry.stamp.classes == stamp.classes {
                        return Err(AddError::DuplicateState(prev));
                    }
                }
            }
        }
        let id = StateId(self.entries.len() as u64);
        let proved = new_state.is_complete();
        self.hashes.entry(stamp.hash).or_insert(id);
        self.entries.push(StateEntry {
            parent: Some(at),
            tactic: tactic_src.to_string(),
            state: new_state,
            stamp,
            alive: true,
        });
        Ok(AddOutcome { id, proved })
    }

    /// Cancels a state and its descendants (SerAPI `Cancel`).
    pub fn cancel(&mut self, id: StateId) {
        if id.0 == 0 {
            return; // The root cannot be cancelled.
        }
        static SITE: proof_trace::SampleSite = proof_trace::SampleSite::new();
        let _sp = proof_trace::span_sampled(&SITE, "stm", "cancel");
        let mut dead = vec![id];
        while let Some(d) = dead.pop() {
            if let Some(e) = self.entries.get_mut(d.0 as usize) {
                e.alive = false;
            }
            for (i, e) in self.entries.iter().enumerate() {
                if e.alive && e.parent == Some(d) {
                    dead.push(StateId(i as u64));
                }
            }
        }
        self.hashes.retain(|_, v| {
            self.entries
                .get(v.0 as usize)
                .map(|e| e.alive)
                .unwrap_or(false)
        });
    }

    /// Renders the goals at `id` as the proof assistant would display them.
    pub fn display(&self, id: StateId) -> Option<String> {
        self.state(id).map(|s| s.display())
    }

    /// Number of live states.
    pub fn live_states(&self) -> usize {
        self.entries.iter().filter(|e| e.alive).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minicoq::parse::parse_formula;

    fn session(stmt: &str, dedupe: bool) -> ProofSession {
        let env = Env::with_prelude();
        let f = parse_formula(&env, stmt).unwrap();
        ProofSession::new(
            env,
            f,
            SessionConfig {
                dedupe_states: dedupe,
                ..Default::default()
            },
        )
    }

    #[test]
    fn linear_proof_through_session() {
        let mut s = session("forall n : nat, add 0 n = n", true);
        let a = s.add(s.root(), "intros n").unwrap();
        assert!(!a.proved);
        let b = s.add(a.id, "simpl").unwrap();
        let c = s.add(b.id, "reflexivity").unwrap();
        assert!(c.proved);
        assert!(s.is_proved(c.id));
        assert_eq!(s.script_to(c.id), vec!["intros n", "simpl", "reflexivity"]);
    }

    #[test]
    fn duplicate_states_are_rejected() {
        let mut s = session("forall n : nat, n = n", true);
        let a = s.add(s.root(), "intros x").unwrap();
        // An alpha-variant introduction reaches the same canonical state.
        let err = s.add(s.root(), "intros y").unwrap_err();
        assert_eq!(err, AddError::DuplicateState(a.id));
        // A no-op tactic duplicates its own source state.
        let err = s.add(a.id, "idtac").unwrap_err();
        assert_eq!(err, AddError::DuplicateState(a.id));
    }

    #[test]
    fn dedupe_can_be_disabled_for_replay() {
        let mut s = session("forall n : nat, n = n", false);
        let a = s.add(s.root(), "intros x").unwrap();
        assert!(s.add(a.id, "idtac").is_ok());
    }

    #[test]
    fn rejection_and_timeout_taxonomy() {
        let env = Env::with_prelude();
        let f = parse_formula(&env, "forall n : nat, n = n").unwrap();
        let mut s = ProofSession::new(
            env,
            f,
            SessionConfig {
                tactic_fuel: 5,
                ..Default::default()
            },
        );
        assert!(matches!(
            s.add(s.root(), "garbage___"),
            Err(AddError::Parse(_))
        ));
        assert!(matches!(
            s.add(s.root(), "assumption"),
            Err(AddError::Rejected(_))
        ));
        assert!(matches!(s.add(s.root(), "auto"), Err(AddError::Timeout)));
        assert!(s.fuel_spent() > 0);
    }

    #[test]
    fn preflight_rejects_without_spending_fuel() {
        let env = Env::with_prelude();
        let f = parse_formula(&env, "forall n : nat, n = n").unwrap();
        let mut s = ProofSession::new(
            env,
            f,
            SessionConfig {
                preflight: true,
                ..Default::default()
            },
        );
        // `assumption` on a hypothesis-free goal is statically doomed.
        let err = s.add(s.root(), "assumption").unwrap_err();
        assert!(matches!(err, AddError::Preflight(_)));
        assert_eq!(s.fuel_spent(), 0);
        // Accepted tactics run as usual.
        let a = s.add(s.root(), "intros n").unwrap();
        assert!(s.add(a.id, "reflexivity").unwrap().proved);
    }

    #[test]
    fn cancel_removes_subtree() {
        let mut s = session("forall n : nat, n = n", true);
        let a = s.add(s.root(), "intros n").unwrap();
        let b = s.add(a.id, "reflexivity").unwrap();
        assert_eq!(s.live_states(), 3);
        s.cancel(a.id);
        assert_eq!(s.live_states(), 1);
        assert!(s.state(b.id).is_none());
        assert!(matches!(s.add(a.id, "simpl"), Err(AddError::NoSuchState)));
        // After cancel, the state can be re-derived (hash was purged).
        assert!(s.add(s.root(), "intros n").is_ok());
    }
}
