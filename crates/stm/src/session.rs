//! Proof sessions: the state-transition machine proper.

use std::collections::HashMap;
use std::sync::Arc;

use minicoq::analysis::{preflight_state, PreflightRejection, PreflightVerdict};
use minicoq::env::Env;
use minicoq::error::TacticError;
use minicoq::formula::Formula;
use minicoq::fuel::Fuel;
use minicoq::goal::ProofState;
use minicoq::parse::parse_tactic;
use minicoq::statehash::state_hash;
use minicoq::tactic::apply_tactic_timed;
use proof_chaos::{FaultKind, FaultPlan};

/// Identifier of a proof state within a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u64);

/// Configuration of a session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Fuel budget per tactic — the deterministic analogue of the paper's
    /// 5-second timeout.
    pub tactic_fuel: u64,
    /// Reject tactics that lead to a proof state already present in the
    /// session (the paper's duplicate-state rule). Disable for linear
    /// replay of known-good scripts.
    pub dedupe_states: bool,
    /// Statically pre-screen tactics with [`minicoq::analysis`] before
    /// executing them; guaranteed failures surface as
    /// [`AddError::Preflight`] without spending any tactic fuel. Off by
    /// default so a bare session reports the evaluator's own taxonomy;
    /// the search layer turns it on.
    pub preflight: bool,
    /// Chaos-testing hook: a seeded fault plan injecting spurious
    /// [`AddError::Timeout`]s for plan-selected tactics, simulating a
    /// wall-clock prover stall. `None` (the default) runs clean.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Names this session in fault-site identifiers (conventionally the
    /// theorem name), so injected timeouts are deterministic per theorem
    /// rather than per process.
    pub fault_scope: String,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            tactic_fuel: minicoq::fuel::DEFAULT_TACTIC_FUEL,
            dedupe_states: true,
            preflight: false,
            fault_plan: None,
            fault_scope: String::new(),
        }
    }
}

/// Why an `add` failed, mirroring the paper's invalid-tactic taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddError {
    /// The proof assistant rejected the tactic.
    Rejected(String),
    /// The tactic could not be parsed (also a rejection, kept separate for
    /// diagnostics).
    Parse(String),
    /// The tactic exceeded its execution budget.
    Timeout,
    /// The pre-flight analyzer proved the tactic cannot succeed; it was
    /// never executed. A refinement of `Rejected` with a machine-readable
    /// reason code.
    Preflight(PreflightRejection),
    /// The resulting proof state was already in the session; the id of the
    /// earlier equal state is attached.
    DuplicateState(StateId),
    /// The referenced state id does not exist (or was cancelled).
    NoSuchState,
}

impl std::fmt::Display for AddError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AddError::Rejected(m) => write!(f, "rejected: {m}"),
            AddError::Parse(m) => write!(f, "parse error: {m}"),
            AddError::Timeout => write!(f, "timeout"),
            AddError::Preflight(r) => write!(f, "preflight: {r}"),
            AddError::DuplicateState(id) => write!(f, "duplicate of state {}", id.0),
            AddError::NoSuchState => write!(f, "no such state"),
        }
    }
}

impl AddError {
    /// A stable label for the `stm.add.<label>` outcome counters — the
    /// `AddError` taxonomy as metric names.
    pub fn metric_label(&self) -> &'static str {
        match self {
            AddError::Rejected(_) => "rejected",
            AddError::Parse(_) => "parse",
            AddError::Timeout => "timeout",
            AddError::Preflight(_) => "preflight",
            AddError::DuplicateState(_) => "duplicate",
            AddError::NoSuchState => "no_such_state",
        }
    }
}

impl std::error::Error for AddError {}

/// The successful result of an `add`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddOutcome {
    /// The new state's id.
    pub id: StateId,
    /// True when the new state has no goals left (proof complete).
    pub proved: bool,
}

#[derive(Debug, Clone)]
struct StateEntry {
    parent: Option<StateId>,
    tactic: String,
    state: ProofState,
    alive: bool,
}

/// A proof session for a single theorem: a tree of proof states rooted at
/// the initial goal.
#[derive(Debug, Clone)]
pub struct ProofSession {
    env: Arc<Env>,
    config: SessionConfig,
    entries: Vec<StateEntry>,
    hashes: HashMap<u64, StateId>,
    fuel_spent: u64,
}

impl ProofSession {
    /// Opens a session on `stmt`; the root state has id 0. The environment
    /// is shared, not copied — many sessions (e.g. parallel search workers)
    /// can hold the same snapshot.
    pub fn new(env: impl Into<Arc<Env>>, stmt: Formula, config: SessionConfig) -> ProofSession {
        let env = env.into();
        let root = ProofState::new(stmt);
        let mut hashes = HashMap::new();
        hashes.insert(state_hash(&root), StateId(0));
        ProofSession {
            env,
            config,
            entries: vec![StateEntry {
                parent: None,
                tactic: String::new(),
                state: root,
                alive: true,
            }],
            hashes,
            fuel_spent: 0,
        }
    }

    /// The root state id.
    pub fn root(&self) -> StateId {
        StateId(0)
    }

    /// The environment the session checks against.
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// Total fuel charged across all tactics so far.
    pub fn fuel_spent(&self) -> u64 {
        self.fuel_spent
    }

    fn entry(&self, id: StateId) -> Option<&StateEntry> {
        self.entries.get(id.0 as usize).filter(|e| e.alive)
    }

    /// The proof state at `id`.
    pub fn state(&self, id: StateId) -> Option<&ProofState> {
        self.entry(id).map(|e| &e.state)
    }

    /// True when the state at `id` has no open goals.
    pub fn is_proved(&self, id: StateId) -> bool {
        self.entry(id)
            .map(|e| e.state.is_complete())
            .unwrap_or(false)
    }

    /// The tactic sentence that produced `id` (empty for the root).
    pub fn tactic_of(&self, id: StateId) -> Option<&str> {
        self.entry(id).map(|e| e.tactic.as_str())
    }

    /// The parent of `id`.
    pub fn parent_of(&self, id: StateId) -> Option<StateId> {
        self.entry(id).and_then(|e| e.parent)
    }

    /// The chain of tactic sentences from the root to `id`, in order.
    pub fn script_to(&self, id: StateId) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            let Some(e) = self.entry(c) else { break };
            if e.parent.is_some() {
                out.push(e.tactic.clone());
            }
            cur = e.parent;
        }
        out.reverse();
        out
    }

    /// Runs a tactic sentence against the state `at`.
    pub fn add(&mut self, at: StateId, tactic_src: &str) -> Result<AddOutcome, AddError> {
        if !proof_trace::enabled() {
            return self.add_inner(at, tactic_src);
        }
        let mut sp = proof_trace::span("stm", "add");
        let result = self.add_inner(at, tactic_src);
        let outcome = match &result {
            Ok(o) if o.proved => "proved",
            Ok(_) => "ok",
            Err(e) => e.metric_label(),
        };
        sp.field_str("outcome", outcome);
        proof_trace::metrics::counter_inc(&format!("stm.add.{outcome}"));
        result
    }

    fn add_inner(&mut self, at: StateId, tactic_src: &str) -> Result<AddOutcome, AddError> {
        let Some(entry) = self.entry(at) else {
            return Err(AddError::NoSuchState);
        };
        let base = entry.state.clone();
        let tac = parse_tactic(&self.env, base.goals.first(), tactic_src).map_err(|e| match e {
            TacticError::Parse(m) => AddError::Parse(m),
            other => AddError::Rejected(other.to_string()),
        })?;
        // Injected prover stall: the tactic parsed but "ran out the clock".
        // Reported exactly like a genuine timeout (the search cannot tell
        // them apart, which is the point), with no fuel charged — a stalled
        // prover burns wall-clock, not our deterministic budget.
        if let Some(plan) = &self.config.fault_plan {
            let site = format!("{}::{}@{}", self.config.fault_scope, tactic_src, at.0);
            if plan.should_fault(FaultKind::StmTimeout, &site) {
                return Err(AddError::Timeout);
            }
        }
        if self.config.preflight {
            let _sp = proof_trace::span("preflight", "");
            if let PreflightVerdict::Reject(r) =
                preflight_state(&self.env, &base, &tac, self.config.tactic_fuel)
            {
                return Err(AddError::Preflight(r));
            }
        }
        let mut fuel = Fuel::new(self.config.tactic_fuel);
        let result = apply_tactic_timed(&self.env, &base, &tac, &mut fuel);
        self.fuel_spent += fuel.spent();
        let new_state = match result {
            Ok(s) => s,
            Err(TacticError::Timeout) => return Err(AddError::Timeout),
            Err(TacticError::Parse(m)) => return Err(AddError::Parse(m)),
            Err(other) => return Err(AddError::Rejected(other.to_string())),
        };
        let h = state_hash(&new_state);
        if self.config.dedupe_states {
            if let Some(&prev) = self.hashes.get(&h) {
                // Hash collision check: compare canonical keys via equality
                // of the stored state.
                if let Some(prev_entry) = self.entry(prev) {
                    if minicoq::statehash::state_key(&prev_entry.state)
                        == minicoq::statehash::state_key(&new_state)
                    {
                        return Err(AddError::DuplicateState(prev));
                    }
                }
            }
        }
        let id = StateId(self.entries.len() as u64);
        let proved = new_state.is_complete();
        self.hashes.entry(h).or_insert(id);
        self.entries.push(StateEntry {
            parent: Some(at),
            tactic: tactic_src.to_string(),
            state: new_state,
            alive: true,
        });
        Ok(AddOutcome { id, proved })
    }

    /// Cancels a state and its descendants (SerAPI `Cancel`).
    pub fn cancel(&mut self, id: StateId) {
        if id.0 == 0 {
            return; // The root cannot be cancelled.
        }
        let _sp = proof_trace::span("stm", "cancel");
        let mut dead = vec![id];
        while let Some(d) = dead.pop() {
            if let Some(e) = self.entries.get_mut(d.0 as usize) {
                e.alive = false;
            }
            for (i, e) in self.entries.iter().enumerate() {
                if e.alive && e.parent == Some(d) {
                    dead.push(StateId(i as u64));
                }
            }
        }
        self.hashes.retain(|_, v| {
            self.entries
                .get(v.0 as usize)
                .map(|e| e.alive)
                .unwrap_or(false)
        });
    }

    /// Renders the goals at `id` as the proof assistant would display them.
    pub fn display(&self, id: StateId) -> Option<String> {
        self.state(id).map(|s| s.display())
    }

    /// Number of live states.
    pub fn live_states(&self) -> usize {
        self.entries.iter().filter(|e| e.alive).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minicoq::parse::parse_formula;

    fn session(stmt: &str, dedupe: bool) -> ProofSession {
        let env = Env::with_prelude();
        let f = parse_formula(&env, stmt).unwrap();
        ProofSession::new(
            env,
            f,
            SessionConfig {
                dedupe_states: dedupe,
                ..Default::default()
            },
        )
    }

    #[test]
    fn linear_proof_through_session() {
        let mut s = session("forall n : nat, add 0 n = n", true);
        let a = s.add(s.root(), "intros n").unwrap();
        assert!(!a.proved);
        let b = s.add(a.id, "simpl").unwrap();
        let c = s.add(b.id, "reflexivity").unwrap();
        assert!(c.proved);
        assert!(s.is_proved(c.id));
        assert_eq!(s.script_to(c.id), vec!["intros n", "simpl", "reflexivity"]);
    }

    #[test]
    fn duplicate_states_are_rejected() {
        let mut s = session("forall n : nat, n = n", true);
        let a = s.add(s.root(), "intros x").unwrap();
        // An alpha-variant introduction reaches the same canonical state.
        let err = s.add(s.root(), "intros y").unwrap_err();
        assert_eq!(err, AddError::DuplicateState(a.id));
        // A no-op tactic duplicates its own source state.
        let err = s.add(a.id, "idtac").unwrap_err();
        assert_eq!(err, AddError::DuplicateState(a.id));
    }

    #[test]
    fn dedupe_can_be_disabled_for_replay() {
        let mut s = session("forall n : nat, n = n", false);
        let a = s.add(s.root(), "intros x").unwrap();
        assert!(s.add(a.id, "idtac").is_ok());
    }

    #[test]
    fn rejection_and_timeout_taxonomy() {
        let env = Env::with_prelude();
        let f = parse_formula(&env, "forall n : nat, n = n").unwrap();
        let mut s = ProofSession::new(
            env,
            f,
            SessionConfig {
                tactic_fuel: 5,
                ..Default::default()
            },
        );
        assert!(matches!(
            s.add(s.root(), "garbage___"),
            Err(AddError::Parse(_))
        ));
        assert!(matches!(
            s.add(s.root(), "assumption"),
            Err(AddError::Rejected(_))
        ));
        assert!(matches!(s.add(s.root(), "auto"), Err(AddError::Timeout)));
        assert!(s.fuel_spent() > 0);
    }

    #[test]
    fn preflight_rejects_without_spending_fuel() {
        let env = Env::with_prelude();
        let f = parse_formula(&env, "forall n : nat, n = n").unwrap();
        let mut s = ProofSession::new(
            env,
            f,
            SessionConfig {
                preflight: true,
                ..Default::default()
            },
        );
        // `assumption` on a hypothesis-free goal is statically doomed.
        let err = s.add(s.root(), "assumption").unwrap_err();
        assert!(matches!(err, AddError::Preflight(_)));
        assert_eq!(s.fuel_spent(), 0);
        // Accepted tactics run as usual.
        let a = s.add(s.root(), "intros n").unwrap();
        assert!(s.add(a.id, "reflexivity").unwrap().proved);
    }

    #[test]
    fn cancel_removes_subtree() {
        let mut s = session("forall n : nat, n = n", true);
        let a = s.add(s.root(), "intros n").unwrap();
        let b = s.add(a.id, "reflexivity").unwrap();
        assert_eq!(s.live_states(), 3);
        s.cancel(a.id);
        assert_eq!(s.live_states(), 1);
        assert!(s.state(b.id).is_none());
        assert!(matches!(s.add(a.id, "simpl"), Err(AddError::NoSuchState)));
        // After cancel, the state can be re-derived (hash was purged).
        assert!(s.add(s.root(), "intros n").is_ok());
    }
}
