//! A SerAPI-like state-transition machine over the minicoq proof assistant.
//!
//! The paper builds its proof checker on Coq's low-level state transition
//! machine interface and SerAPI (§3). This crate reproduces that shape:
//!
//! * a [`session::ProofSession`] holds the tree of proof states for one
//!   theorem; `add` runs a tactic sentence against a state and returns a new
//!   state id, an error (rejected / timeout), or a duplicate-state notice;
//! * [`protocol`] provides the s-expression wire protocol
//!   (`Add`/`Cancel`/`Goals`/`Script`) for out-of-process clients;
//! * timeouts are deterministic fuel budgets, mirroring the paper's
//!   5-second wall-clock limit per tactic.

pub mod protocol;
pub mod session;
pub mod sexp;

pub use session::{AddError, AddOutcome, ProofSession, SessionConfig, StateId};
