//! The s-expression wire protocol over a [`ProofSession`].
//!
//! Requests (SerAPI-flavoured):
//!
//! ```text
//! (Add (at <id>) (tactic "<sentence>"))
//! (Cancel <id>)
//! (Goals <id>)
//! (Script <id>)
//! ```
//!
//! Responses:
//!
//! ```text
//! (Added <id> <Proved|Open>)
//! (Error <Rejected|Parse|Timeout|NoSuchState> "<msg>")
//! (Duplicate <id>)
//! (Canceled)
//! (Goals "<rendered goals>")
//! (Script "<t1>" "<t2>" ...)
//! ```

use crate::session::{AddError, ProofSession, StateId};
use crate::sexp::{parse, Sexp, SexpError};

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run a tactic at a state.
    Add {
        /// State to extend.
        at: StateId,
        /// Tactic sentence.
        tactic: String,
    },
    /// Cancel a state and its descendants.
    Cancel(StateId),
    /// Render the goals at a state.
    Goals(StateId),
    /// Return the tactic chain from the root to a state.
    Script(StateId),
}

/// Parses a request s-expression.
pub fn parse_request(src: &str) -> Result<Request, SexpError> {
    let s = parse(src)?;
    let items = s
        .as_list()
        .ok_or_else(|| SexpError("request must be a list".into()))?;
    let head = items
        .first()
        .and_then(Sexp::as_atom)
        .ok_or_else(|| SexpError("request head must be an atom".into()))?;
    let state_id = |s: &Sexp| -> Result<StateId, SexpError> {
        s.as_atom()
            .and_then(|a| a.parse::<u64>().ok())
            .map(StateId)
            .ok_or_else(|| SexpError("expected a state id".into()))
    };
    match head {
        "Add" => {
            let mut at = None;
            let mut tactic = None;
            for field in &items[1..] {
                let f = field
                    .as_list()
                    .ok_or_else(|| SexpError("Add fields must be lists".into()))?;
                match (f.first().and_then(Sexp::as_atom), f.get(1)) {
                    (Some("at"), Some(v)) => at = Some(state_id(v)?),
                    (Some("tactic"), Some(v)) => {
                        tactic = Some(
                            v.as_atom()
                                .ok_or_else(|| SexpError("tactic must be an atom".into()))?
                                .to_string(),
                        )
                    }
                    _ => return Err(SexpError("bad Add field".into())),
                }
            }
            Ok(Request::Add {
                at: at.ok_or_else(|| SexpError("Add missing (at ..)".into()))?,
                tactic: tactic.ok_or_else(|| SexpError("Add missing (tactic ..)".into()))?,
            })
        }
        "Cancel" => Ok(Request::Cancel(state_id(
            items.get(1).ok_or_else(|| SexpError("Cancel id".into()))?,
        )?)),
        "Goals" => Ok(Request::Goals(state_id(
            items.get(1).ok_or_else(|| SexpError("Goals id".into()))?,
        )?)),
        "Script" => Ok(Request::Script(state_id(
            items.get(1).ok_or_else(|| SexpError("Script id".into()))?,
        )?)),
        other => Err(SexpError(format!("unknown request {other}"))),
    }
}

/// Executes a request against a session, returning the response
/// s-expression.
pub fn handle(session: &mut ProofSession, req: &Request) -> Sexp {
    match req {
        Request::Add { at, tactic } => match session.add(*at, tactic) {
            Ok(out) => Sexp::list(vec![
                Sexp::atom("Added"),
                Sexp::atom(out.id.0.to_string()),
                Sexp::atom(if out.proved { "Proved" } else { "Open" }),
            ]),
            Err(AddError::DuplicateState(id)) => {
                Sexp::list(vec![Sexp::atom("Duplicate"), Sexp::atom(id.0.to_string())])
            }
            Err(e) => {
                let (kind, msg) = match e {
                    AddError::Rejected(m) => ("Rejected", m),
                    AddError::Parse(m) => ("Parse", m),
                    AddError::Timeout => ("Timeout", String::new()),
                    AddError::Preflight(r) => ("Preflight", r.to_string()),
                    AddError::NoSuchState => ("NoSuchState", String::new()),
                    AddError::DuplicateState(_) => unreachable!("handled above"),
                };
                Sexp::list(vec![Sexp::atom("Error"), Sexp::atom(kind), Sexp::atom(msg)])
            }
        },
        Request::Cancel(id) => {
            session.cancel(*id);
            Sexp::list(vec![Sexp::atom("Canceled")])
        }
        Request::Goals(id) => match session.display(*id) {
            Some(g) => Sexp::list(vec![Sexp::atom("Goals"), Sexp::atom(g)]),
            None => Sexp::list(vec![
                Sexp::atom("Error"),
                Sexp::atom("NoSuchState"),
                Sexp::atom(""),
            ]),
        },
        Request::Script(id) => {
            let mut items = vec![Sexp::atom("Script")];
            for t in session.script_to(*id) {
                items.push(Sexp::atom(t));
            }
            Sexp::list(items)
        }
    }
}

/// Parses and executes one request line.
pub fn handle_line(session: &mut ProofSession, line: &str) -> String {
    match parse_request(line) {
        Ok(req) => handle(session, &req).to_string(),
        Err(e) => Sexp::list(vec![
            Sexp::atom("Error"),
            Sexp::atom("Protocol"),
            Sexp::atom(e.0),
        ])
        .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionConfig;
    use minicoq::env::Env;
    use minicoq::parse::parse_formula;

    fn session() -> ProofSession {
        let env = Env::with_prelude();
        let f = parse_formula(&env, "forall n : nat, n = n").unwrap();
        ProofSession::new(env, f, SessionConfig::default())
    }

    #[test]
    fn protocol_round_trip() {
        let mut s = session();
        let r = handle_line(&mut s, "(Add (at 0) (tactic \"intros n\"))");
        assert_eq!(r, "(Added 1 Open)");
        let r = handle_line(&mut s, "(Add (at 1) (tactic \"reflexivity\"))");
        assert_eq!(r, "(Added 2 Proved)");
        let r = handle_line(&mut s, "(Script 2)");
        assert_eq!(r, "(Script \"intros n\" reflexivity)");
        let r = handle_line(&mut s, "(Goals 1)");
        assert!(r.contains("n = n"));
    }

    #[test]
    fn protocol_errors() {
        let mut s = session();
        let r = handle_line(&mut s, "(Add (at 0) (tactic \"assumption\"))");
        assert!(r.starts_with("(Error Rejected"));
        let r = handle_line(&mut s, "(Add (at 9) (tactic \"intros\"))");
        assert!(r.contains("NoSuchState"));
        let r = handle_line(&mut s, "(Bogus)");
        assert!(r.contains("Protocol"));
        handle_line(&mut s, "(Add (at 0) (tactic \"intros a\"))");
        let r = handle_line(&mut s, "(Add (at 0) (tactic \"intros b\"))");
        assert_eq!(r, "(Duplicate 1)");
    }

    #[test]
    fn cancel_via_protocol() {
        let mut s = session();
        handle_line(&mut s, "(Add (at 0) (tactic \"intros n\"))");
        let r = handle_line(&mut s, "(Cancel 1)");
        assert_eq!(r, "(Canceled)");
        let r = handle_line(&mut s, "(Goals 1)");
        assert!(r.contains("NoSuchState"));
    }
}
