//! Property tests for the s-expression wire format.

use minicoq_stm::sexp::{parse, Sexp};
use proptest::prelude::*;

fn arb_sexp() -> impl Strategy<Value = Sexp> {
    let atom = prop_oneof![
        "[a-zA-Z0-9_]{1,12}".prop_map(Sexp::Atom),
        // Atoms requiring quoting.
        ".{0,20}".prop_map(Sexp::Atom),
    ];
    atom.prop_recursive(3, 32, 4, |inner| {
        prop::collection::vec(inner, 0..4).prop_map(Sexp::List)
    })
}

proptest! {
    #[test]
    fn print_parse_round_trip(s in arb_sexp()) {
        let printed = s.to_string();
        let back = parse(&printed).unwrap();
        prop_assert_eq!(back, s);
    }

    #[test]
    fn parse_never_panics(input in ".{0,64}") {
        let _ = parse(&input);
    }
}
