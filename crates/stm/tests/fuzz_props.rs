//! Fuzz-style properties: the session layer must be total — arbitrary
//! tactic text and arbitrary interleavings of add/cancel can never panic,
//! corrupt the tree, or forge a proof.

use minicoq::env::Env;
use minicoq::parse::parse_formula;
use minicoq_stm::{ProofSession, SessionConfig, StateId};
use proptest::prelude::*;

fn session(stmt: &str) -> ProofSession {
    let env = Env::with_prelude();
    let f = parse_formula(&env, stmt).unwrap();
    ProofSession::new(
        env,
        f,
        SessionConfig {
            tactic_fuel: 50_000,
            dedupe_states: true,
            ..Default::default()
        },
    )
}

/// Plausible-looking but mostly broken tactic text.
fn tactic_soup() -> impl Strategy<Value = String> {
    prop_oneof![
        // Real tactics (some apply, most need context).
        Just("intros".to_string()),
        Just("reflexivity".to_string()),
        Just("split".to_string()),
        Just("constructor".to_string()),
        Just("assumption".to_string()),
        Just("simpl".to_string()),
        Just("lia".to_string()),
        // Near-miss garbage.
        "[a-z]{1,10} [a-zA-Z0-9_]{1,10}",
        "(apply|rewrite|destruct|exact) [A-Za-z_]{1,12}",
        // Outright noise.
        "\\PC{0,40}",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random walks over add/cancel never panic and never mark an
    /// unproved state as proved.
    #[test]
    fn random_session_walks_are_safe(
        ops in proptest::collection::vec((tactic_soup(), 0u64..12, proptest::bool::ANY), 0..40),
    ) {
        let mut s = session("forall n : nat, le 0 n /\\ n = n");
        let mut known: Vec<StateId> = vec![s.root()];
        for (tactic, pick, do_cancel) in ops {
            let at = known[(pick as usize) % known.len()];
            if do_cancel && at != s.root() {
                s.cancel(at);
                known.retain(|id| s.state(*id).is_some());
                if known.is_empty() {
                    known.push(s.root());
                }
                continue;
            }
            if let Ok(out) = s.add(at, &tactic) {
                // A state reported proved must really have zero goals.
                if out.proved {
                    prop_assert!(s.state(out.id).unwrap().is_complete());
                }
                known.push(out.id);
            }
        }
        // The root always survives, and every live id resolves.
        prop_assert!(s.state(s.root()).is_some());
        for id in &known {
            if s.state(*id).is_some() {
                let script = s.script_to(*id);
                prop_assert!(script.len() <= 64);
            }
        }
    }

    /// Scripts reported by the session replay to the same state: walking
    /// `script_to` from the root reaches an equal state key.
    #[test]
    fn reported_scripts_replay(
        ops in proptest::collection::vec(tactic_soup(), 1..12),
    ) {
        let mut s = session("forall n m : nat, n = m -> m = n");
        let mut at = s.root();
        for t in ops {
            if let Ok(out) = s.add(at, &t) {
                at = out.id;
            }
        }
        let script = s.script_to(at);
        let mut r = session("forall n m : nat, n = m -> m = n");
        let mut rat = r.root();
        for t in &script {
            rat = r.add(rat, t).expect("recorded script must replay").id;
        }
        prop_assert_eq!(
            minicoq::statehash::state_key(r.state(rat).unwrap()),
            minicoq::statehash::state_key(s.state(at).unwrap())
        );
    }
}
