//! Unit tests for the state-transition machine: session tree bookkeeping
//! (ids, parents, cancellation, duplicate detection, fuel accounting) and
//! the s-expression protocol layer that mirrors the SerAPI interface the
//! paper drove.

use minicoq::env::Env;
use minicoq::parse::parse_formula;
use minicoq_stm::protocol::{handle_line, parse_request, Request};
use minicoq_stm::{AddError, ProofSession, SessionConfig, StateId};

fn session(stmt: &str, dedupe: bool) -> ProofSession {
    let env = Env::with_prelude();
    let f = parse_formula(&env, stmt).unwrap();
    ProofSession::new(
        env,
        f,
        SessionConfig {
            tactic_fuel: 200_000,
            dedupe_states: dedupe,
            ..Default::default()
        },
    )
}

// ------------------------------------------------------------------ session

#[test]
fn add_builds_a_tree_with_scripts() {
    let mut s = session("forall n : nat, n = n", true);
    let root = s.root();
    let a = s.add(root, "intros n").unwrap();
    assert!(!a.proved);
    let b = s.add(a.id, "reflexivity").unwrap();
    assert!(b.proved);
    assert!(s.is_proved(b.id));
    assert_eq!(s.parent_of(b.id), Some(a.id));
    assert_eq!(s.tactic_of(b.id), Some("reflexivity"));
    assert_eq!(s.script_to(b.id), vec!["intros n", "reflexivity"]);
    assert_eq!(s.script_to(root), Vec::<String>::new());
}

#[test]
fn sibling_branches_are_independent() {
    let mut s = session("forall n m : nat, n = n", true);
    let root = s.root();
    // Two continuations from the same node reaching different states.
    let one = s.add(root, "intros n").unwrap();
    let two = s.add(root, "intros n m").unwrap();
    assert_ne!(one.id, two.id);
    assert_eq!(s.parent_of(one.id), Some(root));
    assert_eq!(s.parent_of(two.id), Some(root));
}

#[test]
fn rejection_reports_the_engine_error() {
    let mut s = session("0 = 0", true);
    let root = s.root();
    match s.add(root, "apply no_such_lemma") {
        Err(AddError::Rejected(m)) => assert!(!m.is_empty()),
        other => panic!("expected rejection, got {other:?}"),
    }
    match s.add(root, "((((") {
        Err(AddError::Parse(_)) => {}
        other => panic!("expected parse error, got {other:?}"),
    }
}

#[test]
fn unknown_state_ids_are_rejected() {
    let mut s = session("0 = 0", true);
    assert!(matches!(
        s.add(StateId(9999), "reflexivity"),
        Err(AddError::NoSuchState)
    ));
    assert!(s.state(StateId(9999)).is_none());
    assert!(!s.is_proved(StateId(9999)));
}

#[test]
fn duplicate_states_point_at_the_original() {
    let mut s = session("0 = 0 -> 0 = 0", true);
    let root = s.root();
    let first = s.add(root, "intros H").unwrap();
    // A differently-spelled intro reaches an alpha-equivalent state.
    match s.add(root, "intros G") {
        Err(AddError::DuplicateState(id)) => assert_eq!(id, first.id),
        other => panic!("expected duplicate, got {other:?}"),
    }
}

#[test]
fn dedupe_off_accepts_equal_states() {
    let mut s = session("0 = 0 -> 0 = 0", false);
    let root = s.root();
    let a = s.add(root, "intros H").unwrap();
    let b = s.add(root, "intros G").unwrap();
    assert_ne!(a.id, b.id);
}

#[test]
fn cancel_removes_the_subtree() {
    let mut s = session("forall n : nat, n = n", true);
    let root = s.root();
    let a = s.add(root, "intros n").unwrap();
    let b = s.add(a.id, "reflexivity").unwrap();
    let before = s.live_states();
    s.cancel(a.id);
    assert!(s.state(a.id).is_none());
    assert!(
        s.state(b.id).is_none(),
        "descendants must die with the parent"
    );
    assert!(s.state(root).is_some());
    assert!(s.live_states() < before);
    // The cancelled branch can be re-explored.
    let again = s.add(root, "intros n").unwrap();
    assert!(s.add(again.id, "reflexivity").unwrap().proved);
}

#[test]
fn cancelling_the_root_is_ignored() {
    let mut s = session("0 = 0", true);
    let root = s.root();
    s.cancel(root);
    assert!(s.state(root).is_some());
    assert!(s.add(root, "reflexivity").unwrap().proved);
}

#[test]
fn fuel_is_accounted_across_adds() {
    let mut s = session("add 3 4 = 7", true);
    let root = s.root();
    assert_eq!(s.fuel_spent(), 0);
    s.add(root, "reflexivity").unwrap();
    let after_one = s.fuel_spent();
    assert!(after_one > 0);
    // Even failing tactics consume fuel.
    let _ = s.add(root, "apply nope");
    assert!(s.fuel_spent() >= after_one);
}

#[test]
fn timeouts_surface_as_timeout_errors() {
    let env = Env::with_prelude();
    let f = parse_formula(&env, "add 9 9 = 18").unwrap();
    let mut s = ProofSession::new(
        env,
        f,
        SessionConfig {
            tactic_fuel: 2,
            dedupe_states: true,
            ..Default::default()
        },
    );
    let root = s.root();
    assert!(matches!(s.add(root, "reflexivity"), Err(AddError::Timeout)));
}

#[test]
fn display_renders_the_goals() {
    let mut s = session("forall n : nat, n = n", true);
    let root = s.root();
    let shown = s.display(root).unwrap();
    assert!(shown.contains("forall"));
    let a = s.add(root, "intros n").unwrap();
    assert!(s.display(a.id).unwrap().contains("n : nat"));
    assert!(s.display(StateId(777)).is_none());
}

// ----------------------------------------------------------------- protocol

#[test]
fn requests_parse_from_sexps() {
    assert_eq!(
        parse_request(r#"(Add (at 0) (tactic "intros n"))"#).unwrap(),
        Request::Add {
            at: StateId(0),
            tactic: "intros n".into()
        }
    );
    assert_eq!(
        parse_request("(Cancel 3)").unwrap(),
        Request::Cancel(StateId(3))
    );
    assert_eq!(
        parse_request("(Goals 0)").unwrap(),
        Request::Goals(StateId(0))
    );
    assert_eq!(
        parse_request("(Script 2)").unwrap(),
        Request::Script(StateId(2))
    );
}

#[test]
fn malformed_requests_are_errors() {
    for bad in [
        "",
        "Add",
        "(Frobnicate 1)",
        "(Add (tactic \"x\"))",
        "(Add (at notanumber) (tactic \"x\"))",
        "(Cancel)",
        "(Goals (nested list))",
    ] {
        assert!(parse_request(bad).is_err(), "`{bad}` should not parse");
    }
}

#[test]
fn protocol_drives_a_proof_end_to_end() {
    let mut s = session("forall n : nat, n = n", true);
    let r1 = handle_line(&mut s, r#"(Add (at 0) (tactic "intros n"))"#);
    assert!(r1.contains("Added"), "{r1}");
    let r2 = handle_line(&mut s, r#"(Add (at 1) (tactic "reflexivity"))"#);
    assert!(r2.contains("Proved") || r2.contains("proved"), "{r2}");
    let script = handle_line(&mut s, "(Script 2)");
    assert!(
        script.contains("intros n") && script.contains("reflexivity"),
        "{script}"
    );
    let goals = handle_line(&mut s, "(Goals 1)");
    assert!(goals.contains("n : nat"), "{goals}");
}

#[test]
fn protocol_errors_are_responses_not_panics() {
    let mut s = session("0 = 0", true);
    let bad_tactic = handle_line(&mut s, r#"(Add (at 0) (tactic "explode"))"#);
    assert!(
        bad_tactic.contains("Error") || bad_tactic.contains("Rejected"),
        "{bad_tactic}"
    );
    let bad_state = handle_line(&mut s, r#"(Add (at 42) (tactic "reflexivity"))"#);
    assert!(
        bad_state.contains("Error") || bad_state.contains("NoSuchState"),
        "{bad_state}"
    );
    let unparseable = handle_line(&mut s, "((");
    assert!(unparseable.contains("Error"), "{unparseable}");
}

// ------------------------------------------------------- AddError taxonomy

#[test]
fn no_such_state_for_bogus_and_cancelled_ids() {
    let mut s = session("forall n : nat, n = n", true);
    let root = s.root();
    // A state id the session never issued.
    assert_eq!(s.add(StateId(9999), "intros n"), Err(AddError::NoSuchState));
    // A state that existed but was cancelled, and its descendants.
    let a = s.add(root, "intros n").unwrap();
    let b = s.add(a.id, "reflexivity").unwrap();
    s.cancel(a.id);
    assert_eq!(s.add(a.id, "reflexivity"), Err(AddError::NoSuchState));
    assert_eq!(s.add(b.id, "intros n"), Err(AddError::NoSuchState));
    // The root is untouched.
    assert!(s.add(root, "intros n").is_ok());
}

#[test]
fn parse_errors_are_distinguished_from_rejections() {
    let mut s = session("0 = 0", true);
    let root = s.root();
    for src in ["((", "intros )", ""] {
        match s.add(root, src) {
            Err(AddError::Parse(m)) => assert!(!m.is_empty(), "{src:?}: empty message"),
            other => panic!("{src:?}: expected Parse, got {other:?}"),
        }
    }
    // A well-formed tactic that the engine refuses is Rejected, not Parse.
    match s.add(root, "apply no_such_lemma") {
        Err(AddError::Rejected(_)) => {}
        other => panic!("expected Rejected, got {other:?}"),
    }
}

#[test]
fn add_error_display_covers_every_variant() {
    assert_eq!(
        AddError::Rejected("boom".into()).to_string(),
        "rejected: boom"
    );
    assert_eq!(
        AddError::Parse("bad token".into()).to_string(),
        "parse error: bad token"
    );
    assert_eq!(AddError::Timeout.to_string(), "timeout");
    assert_eq!(
        AddError::DuplicateState(StateId(7)).to_string(),
        "duplicate of state 7"
    );
    assert_eq!(AddError::NoSuchState.to_string(), "no such state");
}

#[test]
fn injected_stm_timeout_is_transient_and_charges_no_fuel() {
    use proof_chaos::{FaultConfig, FaultPlan};
    use std::sync::Arc;

    let env = Env::with_prelude();
    let f = parse_formula(&env, "forall n : nat, n = n").unwrap();
    let plan = Arc::new(FaultPlan::new(FaultConfig {
        seed: 3,
        stm_timeout: 1.0,
        ..FaultConfig::default()
    }));
    let mut s = ProofSession::new(
        env,
        f,
        SessionConfig {
            tactic_fuel: 200_000,
            fault_plan: Some(Arc::clone(&plan)),
            fault_scope: "taxonomy_test".into(),
            ..Default::default()
        },
    );
    let root = s.root();
    // First attempt at this site: the injected timeout fires, and the
    // tactic is never executed, so no fuel is charged (a stalled call
    // burns wall-clock, not deterministic budget).
    assert_eq!(s.add(root, "intros n"), Err(AddError::Timeout));
    assert_eq!(s.fuel_spent(), 0);
    // The fault is transient (max_trips = 1): the same add now succeeds.
    assert!(s.add(root, "intros n").is_ok());
    assert!(s.fuel_spent() > 0);
}

#[test]
fn zero_rate_fault_plan_never_times_out() {
    use proof_chaos::{FaultConfig, FaultPlan};
    use std::sync::Arc;

    let env = Env::with_prelude();
    let f = parse_formula(&env, "forall n : nat, n = n").unwrap();
    let mut s = ProofSession::new(
        env,
        f,
        SessionConfig {
            tactic_fuel: 200_000,
            fault_plan: Some(Arc::new(FaultPlan::new(FaultConfig::default()))),
            fault_scope: "zero_rate".into(),
            ..Default::default()
        },
    );
    let root = s.root();
    let a = s.add(root, "intros n").unwrap();
    assert!(s.add(a.id, "reflexivity").unwrap().proved);
}
