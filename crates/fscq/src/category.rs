//! Theorem categories, mirroring Table 1 of the paper.

use std::fmt;

/// The three categories used by the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Helper lemmas generally useful in any development (`ListUtils`,
    /// `NatUtils`).
    Utilities = 0,
    /// Crash Hoare Logic: the memory model, predicate algebra, program
    /// semantics and Hoare rules (`Mem`, `Pred`, `Prog`, `Hoare`).
    Chl = 1,
    /// File-system components (`Log`, `Inode`, `DirTree`, `FS`).
    FileSystem = 2,
}

impl Category {
    /// Derives a category from a module name. Procedurally generated
    /// modules (`corpus-gen` emits `Gen*` names) hold arithmetic utility
    /// lemmas, so they land in [`Category::Utilities`].
    pub fn of_module(module: &str) -> Category {
        match module {
            "NatUtils" | "ListUtils" => Category::Utilities,
            "Mem" | "Pred" | "Prog" | "Hoare" => Category::Chl,
            m if m.starts_with("Gen") => Category::Utilities,
            _ => Category::FileSystem,
        }
    }

    /// All categories, in Table 1 order.
    pub fn all() -> [Category; 3] {
        [Category::Utilities, Category::Chl, Category::FileSystem]
    }

    /// The label used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            Category::Utilities => "Utilities",
            Category::Chl => "CHL",
            Category::FileSystem => "File System",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_mapping() {
        assert_eq!(Category::of_module("ListUtils"), Category::Utilities);
        assert_eq!(Category::of_module("Hoare"), Category::Chl);
        assert_eq!(Category::of_module("DirTree"), Category::FileSystem);
    }
}

#[cfg(test)]
mod full_mapping_tests {
    use super::*;

    #[test]
    fn every_corpus_module_has_a_category() {
        let expect = [
            ("NatUtils", Category::Utilities),
            ("ListUtils", Category::Utilities),
            ("Mem", Category::Chl),
            ("Pred", Category::Chl),
            ("Prog", Category::Chl),
            ("Hoare", Category::Chl),
            ("Log", Category::FileSystem),
            ("Inode", Category::FileSystem),
            ("DirTree", Category::FileSystem),
            ("FS", Category::FileSystem),
        ];
        for (m, c) in expect {
            assert_eq!(Category::of_module(m), c, "{m}");
        }
    }

    #[test]
    fn labels_match_the_papers_table1_headers() {
        assert_eq!(Category::Utilities.label(), "Utilities");
        assert_eq!(Category::Chl.label(), "CHL");
        assert_eq!(Category::FileSystem.label(), "File System");
    }
}
