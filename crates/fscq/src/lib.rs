//! FSCQ-lite: the benchmark corpus.
//!
//! A crash-safe file system development written in Gallina-lite, mirroring
//! the structure of FSCQ: arithmetic and list utility layers, a Crash Hoare
//! Logic (disk model, separation-style predicate algebra, programs with
//! deferred writes, Hoare triples), and file-system layers (write-ahead
//! log, inodes, directory trees). Every theorem carries its human proof,
//! and every human proof is replayed through the kernel when the corpus is
//! loaded with checking enabled.
//!
//! The paper's evaluation (§4) samples theorems from FSCQ, groups them into
//! the categories Utilities / CHL / File System, and bins them by the token
//! length of their human proofs; [`Corpus`] exposes exactly that metadata.

use minicoq_vernac::{Development, LoadError, Loader};

pub mod category;

pub use category::Category;

/// The corpus source files, in dependency order: `(module name, source)`.
pub fn corpus_sources() -> Vec<(&'static str, &'static str)> {
    vec![
        ("NatUtils", include_str!("../corpus/NatUtils.v")),
        ("ListUtils", include_str!("../corpus/ListUtils.v")),
        ("Mem", include_str!("../corpus/Mem.v")),
        ("Pred", include_str!("../corpus/Pred.v")),
        ("Prog", include_str!("../corpus/Prog.v")),
        ("Hoare", include_str!("../corpus/Hoare.v")),
        ("Log", include_str!("../corpus/Log.v")),
        ("Inode", include_str!("../corpus/Inode.v")),
        ("DirTree", include_str!("../corpus/DirTree.v")),
        ("FS", include_str!("../corpus/FS.v")),
    ]
}

/// Loads the corpus, optionally replaying (and thus checking) every human
/// proof. Checking is what the corpus test suite does; experiment harnesses
/// can skip it for speed, trusting the checked-in proofs.
pub fn load_corpus(check_proofs: bool) -> Result<Development, LoadError> {
    let mut loader = Loader::new().check_proofs(check_proofs);
    for (name, text) in corpus_sources() {
        loader.add_source(name, text);
    }
    loader.load()
}

/// A loaded corpus with category metadata.
pub struct Corpus {
    /// The underlying development.
    pub dev: Development,
}

impl Corpus {
    /// Loads the corpus without re-checking proofs (fast path), panicking
    /// on a malformed embedded corpus. Experiment harnesses use this;
    /// diagnostic tools that want to report the failure instead of
    /// aborting should call [`Corpus::try_load`].
    pub fn load() -> Corpus {
        match Corpus::try_load() {
            Ok(c) => c,
            Err(e) => panic!("embedded corpus failed to load: {e}"),
        }
    }

    /// Loads the corpus without re-checking proofs, propagating the typed
    /// [`LoadError`] (file, item, message) on failure.
    pub fn try_load() -> Result<Corpus, LoadError> {
        Ok(Corpus {
            dev: load_corpus(false)?,
        })
    }

    /// Loads the corpus, replaying every human proof through the kernel.
    pub fn load_checked() -> Result<Corpus, LoadError> {
        Ok(Corpus {
            dev: load_corpus(true)?,
        })
    }

    /// The category of a theorem, derived from its module.
    pub fn category_of(&self, theorem: &minicoq_vernac::TheoremInfo) -> Category {
        Category::of_module(&theorem.file)
    }

    /// Total number of theorems.
    pub fn len(&self) -> usize {
        self.dev.theorems.len()
    }

    /// True when the corpus has no theorems (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.dev.theorems.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_loads_and_all_proofs_check() {
        let corpus = Corpus::load_checked().unwrap_or_else(|e| panic!("corpus: {e}"));
        assert!(
            corpus.len() >= 150,
            "corpus has only {} theorems",
            corpus.len()
        );
    }

    #[test]
    fn try_load_propagates_instead_of_panicking() {
        let corpus = Corpus::try_load().expect("embedded corpus is well-formed");
        assert_eq!(corpus.len(), Corpus::load().len());
    }

    #[test]
    fn categories_cover_all_modules() {
        let corpus = Corpus::load();
        let mut seen = [false; 3];
        for t in &corpus.dev.theorems {
            seen[corpus.category_of(t) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "some category is empty: {seen:?}");
    }
}
