(* FS: the top-level file system, composing the log, inode and directory
   layers over the Crash Hoare Logic. *)

Require Import NatUtils.
Require Import ListUtils.
Require Import Mem.
Require Import Pred.
Require Import Prog.
Require Import Hoare.
Require Import Log.
Require Import Inode.
Require Import DirTree.

(* A file system state: an inode table and a directory tree. *)
Inductive fsstate := MkFS (itable : list inode) (root : tree).

Definition fs_itable (fs : fsstate) : list inode :=
  match fs with | MkFS it r => it end.

Definition fs_root (fs : fsstate) : tree :=
  match fs with | MkFS it r => r end.

Definition fs_ok (fs : fsstate) : Prop :=
  igood_all (fs_itable fs) /\ tree_names_distinct (fs_root fs).

Definition fs_init : fsstate := MkFS [] (TreeDir 0 TNil).

Definition fs_update_tree (fs : fsstate) (n : nat) (sub : tree) : fsstate :=
  match fs with
  | MkFS it r => match r with
      | TreeFile inum data => MkFS it r
      | TreeDir inum ents => MkFS it (TreeDir inum (tl_update n sub ents))
      end
  end.

Definition fs_put_inode (fs : fsstate) (n : nat) (i : inode) : fsstate :=
  match fs with | MkFS it r => MkFS (iput it n i) r end.

Lemma fs_init_ok : fs_ok fs_init.
Proof.
  unfold fs_ok. split.
  - unfold fs_init. simpl. split.
  - unfold fs_init. simpl. apply TND_dir.
    + apply TLD_nil.
    + simpl. apply NoDup_nil.
Qed.

Lemma fs_root_update : forall (it : list inode) (inum n : nat) (ents : treelist) (sub : tree),
  fs_root (fs_update_tree (MkFS it (TreeDir inum ents)) n sub)
    = TreeDir inum (tl_update n sub ents).
Proof. intros. reflexivity. Qed.

Lemma fs_itable_update : forall (fs : fsstate) (n : nat) (i : inode),
  fs_itable (fs_put_inode fs n i) = iput (fs_itable fs) n i.
Proof.
  intros. destruct fs as [it r]. reflexivity.
Qed.

Lemma fs_put_inode_root : forall (fs : fsstate) (n : nat) (i : inode),
  fs_root (fs_put_inode fs n i) = fs_root fs.
Proof.
  intros. destruct fs as [it r]. reflexivity.
Qed.

Lemma fs_ok_put_inode : forall (fs : fsstate) (n : nat) (i : inode),
  fs_ok fs -> igood i -> fs_ok (fs_put_inode fs n i).
Proof.
  unfold fs_ok. intros fs n i H Hi. destruct H as [H1 H2]. split.
  - rewrite fs_itable_update. apply igood_all_iput.
    + assumption.
    + assumption.
  - rewrite fs_put_inode_root. assumption.
Qed.

Lemma fs_ok_update_tree : forall (it : list inode) (inum n : nat) (ents : treelist) (sub : tree),
  fs_ok (MkFS it (TreeDir inum ents)) -> tree_names_distinct sub ->
  fs_ok (fs_update_tree (MkFS it (TreeDir inum ents)) n sub).
Proof.
  unfold fs_ok. intros it inum n ents sub H Hs. destruct H as [H1 H2]. split.
  - simpl. simpl in H1. assumption.
  - simpl. simpl in H2. apply tnd_update.
    + assumption.
    + assumption.
Qed.

Lemma fs_lookup_ok : forall (fs : fsstate) (n : nat) (sub : tree),
  fs_ok fs -> dir_lookup n (fs_root fs) = Some sub -> tree_names_distinct sub.
Proof.
  unfold fs_ok. intros fs n sub H Hl. destruct H as [H1 H2].
  eapply dir_lookup_distinct.
Qed.

(* Writes shadow earlier writes to the same address. *)
Lemma mupd_shadow : forall (d : list (prod nat valu)) (a : nat) (v w : valu),
  meq (mupd (mupd d a v) a w) (mupd d a w).
Proof.
  unfold meq. intros d a v w x. destruct (eqb a x) eqn:E.
  - apply eqb_eq in E. subst.
    pose proof (mfind_mupd_eq (mupd d x v) x w) as H1. rewrite H1.
    pose proof (mfind_mupd_eq d x w) as H2. rewrite H2. reflexivity.
  - apply eqb_neq in E.
    pose proof (mfind_mupd_ne (mupd d a v) a x w E) as H1. rewrite H1.
    pose proof (mfind_mupd_ne d a x v E) as H2. rewrite H2.
    pose proof (mfind_mupd_ne d a x w E) as H3. rewrite H3. reflexivity.
Qed.

(* Committing a block through the log equals writing it directly. *)
Lemma log_commit_direct : forall (a : nat) (v : valu) (d : list (prod nat valu)),
  replay_log (a :: []) (v :: []) d = mupd d a v.
Proof. intros. apply replay_log_single. Qed.

(* The canonical commit sequence: buffer the write, then sync. Both the
   final state and any crash state expose the new value. *)
Lemma fs_commit_spec : forall (a : nat) (v v0 : valu),
  hoare (Star (Ptsto a v0) Any) (Write a v :: Sync :: [])
        (Star (Ptsto a v) Any) (Star (Ptsto a v) Any).
Proof. intros. apply hoare_write_sync. Qed.

(* Without a sync, the durable disk is only weakly specified: the crash
   condition degrades to Any. *)
Lemma fs_buffered_write_spec : forall (a : nat) (v v0 : valu) (F : pred),
  hoare (Star (Ptsto a v0) F) (Write a v :: []) (Star (Ptsto a v) F) Any.
Proof. intros. apply hoare_write. Qed.

Lemma fs_recover_noop : forall (d d2 : list (prod nat valu)),
  crash_disk [] d d2 -> meq d2 d.
Proof. intros. apply crash_disk_nil. assumption. Qed.

Lemma fs_update_tree_itable : forall (fs : fsstate) (n : nat) (sub : tree),
  fs_itable (fs_update_tree fs n sub) = fs_itable fs.
Proof.
  intros. destruct fs as [it r]. destruct r as [inum data|inum ents].
  - reflexivity.
  - reflexivity.
Qed.

Lemma fs_double_put : forall (fs : fsstate) (n : nat) (i j : inode),
  lt n (length (fs_itable fs)) ->
  fs_itable (fs_put_inode (fs_put_inode fs n i) n j) = fs_itable (fs_put_inode fs n j).
Proof.
  intros fs n i j H.
  rewrite fs_itable_update.
  rewrite fs_itable_update.
  rewrite fs_itable_update.
  unfold iput.
  apply updN_twice.
Qed.

(* The end-to-end two-block commit: buffering two writes and syncing makes
   both durable and crash-safe; reading either address from any post-crash
   disk returns the committed value. *)
Lemma fs_commit_two_crash_read : forall (a1 a2 : nat) (v1 v2 w1 w2 : valu)
    (d b d2 : list (prod nat valu)),
  psat (Star (Ptsto a1 v1) (Star (Ptsto a2 v2) Any)) (ldisk d b) ->
  crash_disk (rsnd (run (Write a1 w1 :: Write a2 w2 :: Sync :: []) d b))
             (rfst (run (Write a1 w1 :: Write a2 w2 :: Sync :: []) d b)) d2 ->
  mfind d2 a1 = Some w1.
Proof.
  intros a1 a2 v1 v2 w1 w2 d b d2 Hpre Hc.
  pose proof (hoare_write_two_sync a1 a2 v1 v2 w1 w2) as Hw.
  specialize (Hw d b Hpre). destruct Hw as [Hpost Hcrash].
  specialize (Hcrash d2 Hc).
  eapply ptsto_valid.
Qed.

Lemma fs_ok_init_lookup : forall (n : nat),
  dir_lookup n (fs_root fs_init) = None.
Proof.
  intros n. unfold fs_init. simpl. reflexivity.
Qed.

(* Updating a subtree then looking it up returns the new subtree, and the
   file-system invariant is preserved. *)
Lemma fs_update_lookup_roundtrip : forall (it : list inode) (inum n : nat)
    (ents : treelist) (t sub : tree),
  fs_ok (MkFS it (TreeDir inum ents)) ->
  tree_names_distinct sub ->
  tl_find n ents = Some t ->
  dir_lookup n (fs_root (fs_update_tree (MkFS it (TreeDir inum ents)) n sub)) = Some sub
  /\ fs_ok (fs_update_tree (MkFS it (TreeDir inum ents)) n sub).
Proof.
  intros it inum n ents t sub Hok Hs Hf.
  split.
  - rewrite fs_root_update. eapply dir_lookup_update_hit.
  - unfold fs_ok. split.
    + simpl. unfold fs_ok in Hok.
      destruct Hok as [H1 H2]. simpl in H1. assumption.
    + rewrite fs_root_update. unfold fs_ok in Hok. destruct Hok as [H1 H2].
      simpl in H2. apply tnd_update.
      * assumption.
      * assumption.
Qed.
