(* Inode: the inode layer. An inode records a length and a block list;
   the inode table is a list indexed with selN/updN. *)

Require Import NatUtils.
Require Import ListUtils.

Inductive inode := MkInode (len : nat) (blocks : list nat).

Definition inode0 : inode := MkInode 0 [].

Definition ilen (i : inode) : nat :=
  match i with | MkInode l bs => l end.

Definition iblocks (i : inode) : list nat :=
  match i with | MkInode l bs => bs end.

Definition igood (i : inode) : Prop := ilen i = length (iblocks i).

Definition iget (ilist : list inode) (n : nat) : inode := selN ilist n inode0.

Definition iput (ilist : list inode) (n : nat) (i : inode) : list inode := updN ilist n i.

Fixpoint igood_all (ilist : list inode) : Prop :=
  match ilist with
  | [] => True
  | i :: rest => igood i /\ igood_all rest
  end.

Lemma ilen_mk : forall (l : nat) (bs : list nat), ilen (MkInode l bs) = l.
Proof. intros. reflexivity. Qed.

Lemma iblocks_mk : forall (l : nat) (bs : list nat), iblocks (MkInode l bs) = bs.
Proof. intros. reflexivity. Qed.

Lemma igood_inode0 : igood inode0.
Proof. reflexivity. Qed.

Hint Resolve igood_inode0.

Lemma igood_mk : forall (bs : list nat), igood (MkInode (length bs) bs).
Proof. intros. reflexivity. Qed.

Lemma iget_iput_eq : forall (ilist : list inode) (n : nat) (i : inode),
  lt n (length ilist) -> iget (iput ilist n i) n = i.
Proof.
  intros. unfold iget. unfold iput. apply selN_updN_eq. assumption.
Qed.

Lemma iget_iput_ne : forall (ilist : list inode) (n m : nat) (i : inode),
  n <> m -> iget (iput ilist n i) m = iget ilist m.
Proof.
  intros. unfold iget. unfold iput. apply selN_updN_ne. assumption.
Qed.

Lemma iput_length : forall (ilist : list inode) (n : nat) (i : inode),
  length (iput ilist n i) = length ilist.
Proof.
  intros. unfold iput. apply length_updN.
Qed.

Lemma iget_oob : forall (ilist : list inode) (n : nat),
  le (length ilist) n -> iget ilist n = inode0.
Proof.
  intros. unfold iget. apply selN_oob. assumption.
Qed.

Lemma iget_in : forall (ilist : list inode) (n : nat),
  lt n (length ilist) -> In (iget ilist n) ilist.
Proof.
  intros. unfold iget. apply selN_in. assumption.
Qed.

Lemma igood_all_in : forall (ilist : list inode) (i : inode),
  igood_all ilist -> In i ilist -> igood i.
Proof.
  induction ilist; intros; simpl in H0.
  - contradiction.
  - simpl in H. destruct H as [H1 H2]. destruct H0 as [H0|H0].
    + subst. assumption.
    + apply IHilist.
      * assumption.
      * assumption.
Qed.

Lemma igood_all_iput : forall (ilist : list inode) (n : nat) (i : inode),
  igood_all ilist -> igood i -> igood_all (iput ilist n i).
Proof.
  unfold iput. induction ilist; intros; simpl.
  - split.
  - simpl in H. destruct H as [H1 H2]. destruct n; simpl.
    + split.
      * assumption.
      * assumption.
    + split.
      * assumption.
      * apply IHilist.
        -- assumption.
        -- assumption.
Qed.

Lemma igood_all_iget : forall (ilist : list inode) (n : nat),
  igood_all ilist -> lt n (length ilist) -> igood (iget ilist n).
Proof.
  intros. eapply igood_all_in.
  apply iget_in. assumption.
Qed.

Lemma iget_iput_same : forall (ilist : list inode) (n : nat),
  lt n (length ilist) -> iput ilist n (iget ilist n) = ilist.
Proof.
  unfold iget. unfold iput. induction ilist; intros; simpl in H.
  - exfalso. lia.
  - destruct n; simpl.
    + reflexivity.
    + rewrite IHilist.
      * reflexivity.
      * lia.
Qed.

Lemma iput_iput_ne : forall (ilist : list inode) (n m : nat) (i j : inode),
  n <> m -> iput (iput ilist n i) m j = iput (iput ilist m j) n i.
Proof.
  intros. unfold iput. apply updN_comm. assumption.
Qed.

Lemma iget_grow : forall (ilist : list inode) (i : inode) (n : nat),
  lt n (length ilist) -> iget (app ilist (i :: [])) n = iget ilist n.
Proof.
  intros. unfold iget. apply selN_app1. assumption.
Qed.

Lemma igood_all_app : forall (l1 l2 : list inode),
  igood_all l1 -> igood_all l2 -> igood_all (app l1 l2).
Proof.
  induction l1; intros; simpl.
  - assumption.
  - simpl in H. destruct H as [H1 H2]. split.
    + assumption.
    + apply IHl1.
      * assumption.
      * assumption.
Qed.
