(* Mem: the memory model of the Crash Hoare Logic.
   Disks are association lists from addresses (nat) to block values (valu),
   compared up to lookup equivalence (meq). Mirrors FSCQ's Mem.v. *)

Require Import NatUtils.
Require Import ListUtils.

Sort valu.

Fixpoint mfind (m : list (prod nat valu)) (a : nat) : option valu :=
  match m with
  | [] => None
  | c :: rest => match c with
      | pair a2 v => match eqb a2 a with
          | true => Some v
          | false => mfind rest a
          end
      end
  end.

Definition mupd (m : list (prod nat valu)) (a : nat) (v : valu) : list (prod nat valu) :=
  pair a v :: m.

Fixpoint mkeys (m : list (prod nat valu)) : list nat :=
  match m with
  | [] => []
  | c :: rest => match c with | pair a2 v => a2 :: mkeys rest end
  end.

Definition meq (m1 m2 : list (prod nat valu)) : Prop :=
  forall a : nat, mfind m1 a = mfind m2 a.

Definition mdisj (m1 m2 : list (prod nat valu)) : Prop :=
  forall a : nat, In a (mkeys m1) -> ~ In a (mkeys m2).

Definition munion (m1 m2 : list (prod nat valu)) : list (prod nat valu) :=
  app m1 m2.

Lemma eqb_neq_false : forall (a b : nat), a <> b -> eqb a b = false.
Proof.
  intros a b H. destruct (eqb a b) eqn:E.
  - exfalso. apply H. apply eqb_eq. assumption.
  - reflexivity.
Qed.

Lemma meq_refl : forall (m : list (prod nat valu)), meq m m.
Proof. unfold meq. intros. reflexivity. Qed.

Hint Resolve meq_refl.

Lemma meq_sym : forall (m1 m2 : list (prod nat valu)), meq m1 m2 -> meq m2 m1.
Proof. unfold meq. intros. symmetry. apply H. Qed.

Lemma meq_trans : forall (m1 m2 m3 : list (prod nat valu)),
  meq m1 m2 -> meq m2 m3 -> meq m1 m3.
Proof.
  unfold meq. intros. rewrite H. apply H0.
Qed.

Lemma mfind_mupd_eq : forall (m : list (prod nat valu)) (a : nat) (v : valu),
  mfind (mupd m a v) a = Some v.
Proof.
  intros. unfold mupd. simpl. rewrite eqb_refl. reflexivity.
Qed.

Lemma mfind_mupd_ne : forall (m : list (prod nat valu)) (a b : nat) (v : valu),
  a <> b -> mfind (mupd m a v) b = mfind m b.
Proof.
  intros. unfold mupd. simpl. rewrite eqb_neq_false.
  - reflexivity.
  - assumption.
Qed.

Lemma mfind_nil : forall (a : nat), mfind [] a = None.
Proof. intros. reflexivity. Qed.

Lemma mkeys_mupd : forall (m : list (prod nat valu)) (a : nat) (v : valu),
  mkeys (mupd m a v) = a :: mkeys m.
Proof. intros. unfold mupd. reflexivity. Qed.

Lemma mkeys_app : forall (m1 m2 : list (prod nat valu)),
  mkeys (app m1 m2) = app (mkeys m1) (mkeys m2).
Proof.
  induction m1; intros; simpl.
  - reflexivity.
  - destruct p as [k w]. simpl. rewrite IHm1. reflexivity.
Qed.

Lemma mfind_some_in : forall (m : list (prod nat valu)) (a : nat) (v : valu),
  mfind m a = Some v -> In a (mkeys m).
Proof.
  induction m; intros; simpl in H.
  - discriminate H.
  - destruct p as [k w]. simpl in H. simpl. destruct (eqb k a) eqn:E.
    + left. apply eqb_eq. assumption.
    + rewrite E in H. simpl in H. right. eapply IHm.
Qed.

Lemma not_in_mfind_none : forall (m : list (prod nat valu)) (a : nat),
  ~ In a (mkeys m) -> mfind m a = None.
Proof.
  induction m; intros; simpl.
  - reflexivity.
  - destruct p as [k w]. simpl. destruct (eqb k a) eqn:E.
    + exfalso. apply H. simpl. left. apply eqb_eq. assumption.
    + simpl. apply IHm. intro Hc. apply H. simpl. right. assumption.
Qed.

Lemma mfind_none_not_in : forall (m : list (prod nat valu)) (a : nat),
  mfind m a = None -> ~ In a (mkeys m).
Proof.
  induction m; intros; simpl in H.
  - simpl in H0. contradiction.
  - destruct p as [k w]. simpl in H. simpl in H0. destruct H0 as [Hc|Hc].
    + subst. rewrite eqb_refl in H. discriminate H.
    + destruct (eqb k a) eqn:E.
      * rewrite E in H. simpl in H. discriminate H.
      * rewrite E in H. simpl in H. apply IHm in H. contradiction.
Qed.

Lemma mfind_app_some : forall (m1 m2 : list (prod nat valu)) (a : nat) (v : valu),
  mfind m1 a = Some v -> mfind (app m1 m2) a = Some v.
Proof.
  induction m1; intros; simpl in H.
  - discriminate H.
  - destruct p as [k w]. simpl in H. simpl. destruct (eqb k a) eqn:E.
    + rewrite E in H. simpl in H. simpl. assumption.
    + rewrite E in H. simpl in H. simpl. apply IHm1. assumption.
Qed.

Lemma mfind_app_none : forall (m1 m2 : list (prod nat valu)) (a : nat),
  mfind m1 a = None -> mfind (app m1 m2) a = mfind m2 a.
Proof.
  induction m1; intros; simpl.
  - reflexivity.
  - destruct p as [k w]. simpl in H. simpl. destruct (eqb k a) eqn:E.
    + rewrite E in H. simpl in H. discriminate H.
    + rewrite E in H. simpl in H. simpl. apply IHm1. assumption.
Qed.

Lemma mdisj_nil_l : forall (m : list (prod nat valu)), mdisj [] m.
Proof.
  unfold mdisj. intros m a H. simpl in H. contradiction.
Qed.

Hint Resolve mdisj_nil_l.

Lemma mdisj_comm : forall (m1 m2 : list (prod nat valu)), mdisj m1 m2 -> mdisj m2 m1.
Proof.
  unfold mdisj. intros m1 m2 H a H2 Hc.
  apply H in Hc. contradiction.
Qed.

Lemma mdisj_nil_r : forall (m : list (prod nat valu)), mdisj m [].
Proof.
  intros. apply mdisj_comm. apply mdisj_nil_l.
Qed.

Hint Resolve mdisj_nil_r.

Lemma munion_nil_l : forall (m : list (prod nat valu)), munion [] m = m.
Proof. intros. unfold munion. reflexivity. Qed.

Lemma munion_nil_r : forall (m : list (prod nat valu)), munion m [] = m.
Proof. intros. unfold munion. apply app_nil_r. Qed.

Lemma munion_comm : forall (m1 m2 : list (prod nat valu)),
  mdisj m1 m2 -> meq (munion m1 m2) (munion m2 m1).
Proof.
  unfold meq. intros m1 m2 Hd a. unfold munion.
  destruct (mfind m1 a) eqn:E1.
  - pose proof (mfind_app_some m1 m2 a v E1) as H1. rewrite H1.
    pose proof (mfind_some_in m1 a v E1) as Hin.
    apply Hd in Hin. apply not_in_mfind_none in Hin.
    pose proof (mfind_app_none m2 m1 a Hin) as H2. rewrite H2.
    rewrite E1. reflexivity.
  - pose proof (mfind_app_none m1 m2 a E1) as H1. rewrite H1.
    destruct (mfind m2 a) eqn:E2.
    + pose proof (mfind_app_some m2 m1 a v E2) as H2. rewrite H2. reflexivity.
    + pose proof (mfind_app_none m2 m1 a E2) as H2. rewrite H2.
      rewrite E1. reflexivity.
Qed.

Lemma munion_assoc : forall (m1 m2 m3 : list (prod nat valu)),
  munion m1 (munion m2 m3) = munion (munion m1 m2) m3.
Proof.
  intros. unfold munion. apply app_assoc.
Qed.

Lemma mdisj_munion_l : forall (m1 m2 m3 : list (prod nat valu)),
  mdisj (munion m1 m2) m3 -> mdisj m1 m3.
Proof.
  unfold mdisj. intros m1 m2 m3 H a Ha.
  apply H. unfold munion. rewrite mkeys_app. apply in_app_l. assumption.
Qed.

Lemma mdisj_munion_r : forall (m1 m2 m3 : list (prod nat valu)),
  mdisj (munion m1 m2) m3 -> mdisj m2 m3.
Proof.
  unfold mdisj. intros m1 m2 m3 H a Ha.
  apply H. unfold munion. rewrite mkeys_app. apply in_app_r. assumption.
Qed.

Lemma mdisj_munion_intro : forall (m1 m2 m3 : list (prod nat valu)),
  mdisj m1 m3 -> mdisj m2 m3 -> mdisj (munion m1 m2) m3.
Proof.
  unfold mdisj. intros m1 m2 m3 H1 H2 a Ha.
  unfold munion in Ha. rewrite mkeys_app in Ha.
  apply in_app_or in Ha. destruct Ha as [Ha|Ha].
  - apply H1. assumption.
  - apply H2. assumption.
Qed.

Lemma meq_munion_l : forall (m1 m2 m3 : list (prod nat valu)),
  meq m1 m2 -> meq (munion m1 m3) (munion m2 m3).
Proof.
  unfold meq. intros m1 m2 m3 H a. unfold munion.
  destruct (mfind m1 a) eqn:E1.
  - pose proof (mfind_app_some m1 m3 a v E1) as H1. rewrite H1.
    rewrite H in E1.
    pose proof (mfind_app_some m2 m3 a v E1) as H2. rewrite H2. reflexivity.
  - pose proof (mfind_app_none m1 m3 a E1) as H1. rewrite H1.
    rewrite H in E1.
    pose proof (mfind_app_none m2 m3 a E1) as H2. rewrite H2. reflexivity.
Qed.

Lemma mupd_munion_l : forall (m1 m2 : list (prod nat valu)) (a : nat) (v : valu),
  mupd (munion m1 m2) a v = munion (mupd m1 a v) m2.
Proof.
  intros. unfold mupd. unfold munion. reflexivity.
Qed.

Lemma meq_munion_r : forall (m1 m2 m3 : list (prod nat valu)),
  meq m2 m3 -> meq (munion m1 m2) (munion m1 m3).
Proof.
  unfold meq. intros m1 m2 m3 H a. unfold munion.
  destruct (mfind m1 a) eqn:E1.
  - pose proof (mfind_app_some m1 m2 a v E1) as H1. rewrite H1.
    pose proof (mfind_app_some m1 m3 a v E1) as H2. rewrite H2. reflexivity.
  - pose proof (mfind_app_none m1 m2 a E1) as H1. rewrite H1.
    pose proof (mfind_app_none m1 m3 a E1) as H2. rewrite H2.
    apply H.
Qed.

Lemma meq_munion_both : forall (m1 m2 m3 m4 : list (prod nat valu)),
  meq m1 m3 -> meq m2 m4 -> meq (munion m1 m2) (munion m3 m4).
Proof.
  intros m1 m2 m3 m4 H1 H2.
  pose proof (meq_munion_l m1 m3 m2 H1) as Ha.
  pose proof (meq_munion_r m3 m2 m4 H2) as Hb.
  pose proof (meq_trans (munion m1 m2) (munion m3 m2) (munion m3 m4) Ha Hb) as Hc.
  exact Hc.
Qed.

(* Later writes to the same address shadow earlier ones. *)
Lemma mupd_shadow_mem : forall (d : list (prod nat valu)) (a : nat) (v w : valu),
  meq (mupd (mupd d a v) a w) (mupd d a w).
Proof.
  unfold meq. intros d a v w x. destruct (eqb a x) eqn:E.
  - apply eqb_eq in E. subst.
    pose proof (mfind_mupd_eq (mupd d x v) x w) as H1. rewrite H1.
    pose proof (mfind_mupd_eq d x w) as H2. rewrite H2. reflexivity.
  - apply eqb_neq in E.
    pose proof (mfind_mupd_ne (mupd d a v) a x w E) as H1. rewrite H1.
    pose proof (mfind_mupd_ne d a x v E) as H2. rewrite H2.
    pose proof (mfind_mupd_ne d a x w E) as H3. rewrite H3. reflexivity.
Qed.

(* Writes to distinct addresses commute up to lookup equivalence. *)
Lemma mupd_comm_meq : forall (d : list (prod nat valu)) (a1 a2 : nat) (v1 v2 : valu),
  a1 <> a2 ->
  meq (mupd (mupd d a1 v1) a2 v2) (mupd (mupd d a2 v2) a1 v1).
Proof.
  unfold meq. intros d a1 a2 v1 v2 Hne x.
  destruct (eqb a2 x) eqn:E2.
  - apply eqb_eq in E2. subst.
    pose proof (mfind_mupd_eq (mupd d a1 v1) x v2) as H1. rewrite H1.
    pose proof (mfind_mupd_ne (mupd d x v2) a1 x v1 Hne) as H2. rewrite H2.
    pose proof (mfind_mupd_eq d x v2) as H3. rewrite H3. reflexivity.
  - apply eqb_neq in E2.
    pose proof (mfind_mupd_ne (mupd d a1 v1) a2 x v2 E2) as H1. rewrite H1.
    destruct (eqb a1 x) eqn:E1.
    + apply eqb_eq in E1. subst.
      pose proof (mfind_mupd_eq d x v1) as H2. rewrite H2.
      pose proof (mfind_mupd_eq (mupd d a2 v2) x v1) as H3. rewrite H3. reflexivity.
    + apply eqb_neq in E1.
      pose proof (mfind_mupd_ne d a1 x v1 E1) as H2. rewrite H2.
      pose proof (mfind_mupd_ne (mupd d a2 v2) a1 x v1 E1) as H3. rewrite H3.
      pose proof (mfind_mupd_ne d a2 x v2 E2) as H4. rewrite H4. reflexivity.
Qed.
