(* DirTree: directory trees. A tree is a file or a directory of named
   entries; names within a directory must be distinct. Mirrors FSCQ's
   DirTree lemmas, including Figure 2's Case C. *)

Require Import NatUtils.
Require Import ListUtils.
Require Import Mem.

Inductive tree := TreeFile (inum : nat) (data : list valu) | TreeDir (inum : nat) (ents : treelist)
with treelist := TNil | TCons (name : nat) (t : tree) (rest : treelist).

Fixpoint tl_names (ents : treelist) : list nat :=
  match ents with
  | TNil => []
  | TCons nm t rest => nm :: tl_names rest
  end.

Fixpoint tl_length (ents : treelist) : nat :=
  match ents with
  | TNil => 0
  | TCons nm t rest => S (tl_length rest)
  end.

Fixpoint tl_find (n : nat) (ents : treelist) : option tree :=
  match ents with
  | TNil => None
  | TCons nm t rest => match eqb nm n with
      | true => Some t
      | false => tl_find n rest
      end
  end.

Fixpoint tl_update (n : nat) (sub : tree) (ents : treelist) : treelist :=
  match ents with
  | TNil => TNil
  | TCons nm t rest => match eqb nm n with
      | true => TCons nm sub rest
      | false => TCons nm t (tl_update n sub rest)
      end
  end.

Definition dir_lookup (n : nat) (t : tree) : option tree :=
  match t with
  | TreeFile inum data => None
  | TreeDir inum ents => tl_find n ents
  end.

Inductive tree_names_distinct : tree -> Prop :=
| TND_file : forall (inum : nat) (data : list valu), tree_names_distinct (TreeFile inum data)
| TND_dir : forall (inum : nat) (ents : treelist),
    tree_list_distinct ents -> NoDup (tl_names ents) -> tree_names_distinct (TreeDir inum ents)
with tree_list_distinct : treelist -> Prop :=
| TLD_nil : tree_list_distinct TNil
| TLD_cons : forall (name : nat) (t : tree) (rest : treelist),
    tree_names_distinct t -> tree_list_distinct rest -> tree_list_distinct (TCons name t rest).

Hint Constructors tree_names_distinct.
Hint Constructors tree_list_distinct.

Lemma tl_names_length : forall (ents : treelist),
  length (tl_names ents) = tl_length ents.
Proof.
  induction ents as [|nm t rest IH]; simpl.
  - reflexivity.
  - rewrite IH. reflexivity.
Qed.

Lemma tl_find_nil : forall (n : nat), tl_find n TNil = None.
Proof. intros. reflexivity. Qed.

Lemma tl_find_hit : forall (n : nat) (t : tree) (rest : treelist),
  tl_find n (TCons n t rest) = Some t.
Proof.
  intros. simpl. rewrite eqb_refl. reflexivity.
Qed.

Lemma tl_find_miss : forall (n m : nat) (t : tree) (rest : treelist),
  n <> m -> tl_find m (TCons n t rest) = tl_find m rest.
Proof.
  intros. simpl. rewrite eqb_neq_false.
  - reflexivity.
  - assumption.
Qed.

Lemma tl_find_in : forall (ents : treelist) (n : nat) (t : tree),
  tl_find n ents = Some t -> In n (tl_names ents).
Proof.
  induction ents as [|nm tt rest IH]; intros; simpl in H.
  - discriminate H.
  - simpl. destruct (eqb nm n) eqn:E.
    + left. apply eqb_eq. assumption.
    + rewrite E in H. simpl in H. right. eapply IH.
Qed.

Lemma tl_find_not_in : forall (ents : treelist) (n : nat),
  ~ In n (tl_names ents) -> tl_find n ents = None.
Proof.
  induction ents as [|nm tt rest IH]; intros; simpl.
  - reflexivity.
  - destruct (eqb nm n) eqn:E.
    + exfalso. apply H. simpl. left. apply eqb_eq. assumption.
    + apply IH. intro Hc. apply H. simpl. right. assumption.
Qed.

Lemma tl_update_names : forall (ents : treelist) (n : nat) (sub : tree),
  tl_names (tl_update n sub ents) = tl_names ents.
Proof.
  induction ents as [|nm tt rest IH]; intros; simpl.
  - reflexivity.
  - destruct (eqb nm n) eqn:E; simpl.
    + reflexivity.
    + rewrite IH. reflexivity.
Qed.

Lemma tl_update_length : forall (ents : treelist) (n : nat) (sub : tree),
  tl_length (tl_update n sub ents) = tl_length ents.
Proof.
  induction ents as [|nm tt rest IH]; intros; simpl.
  - reflexivity.
  - destruct (eqb nm n) eqn:E; simpl.
    + reflexivity.
    + rewrite IH. reflexivity.
Qed.

Lemma tl_update_find_hit : forall (n : nat) (sub t : tree) (ents : treelist),
  tl_find n ents = Some t -> tl_find n (tl_update n sub ents) = Some sub.
Proof.
  induction ents as [|nm tt rest IH]; intros; simpl in H.
  - discriminate H.
  - simpl. destruct (eqb nm n) eqn:E.
    + simpl. rewrite E. reflexivity.
    + rewrite E in H. simpl in H. simpl. rewrite E. apply IH. assumption.
Qed.

Lemma tl_update_find_miss : forall (n m : nat) (sub : tree) (ents : treelist),
  n <> m -> tl_find m (tl_update n sub ents) = tl_find m ents.
Proof.
  induction ents as [|nm tt rest IH]; intros; simpl.
  - reflexivity.
  - destruct (eqb nm n) eqn:E.
    + simpl. destruct (eqb nm m) eqn:E2.
      * apply eqb_eq in E. apply eqb_eq in E2. subst. exfalso. apply H. reflexivity.
      * reflexivity.
    + simpl. destruct (eqb nm m) eqn:E2.
      * reflexivity.
      * apply IH. assumption.
Qed.

(* Figure 2, Case C: uniqueness of names in a directory implies uniqueness
   of names in its first sub-directory. *)
Lemma tree_name_distinct_head : forall (inum name : nat) (t : tree) (rest : treelist),
  tree_names_distinct (TreeDir inum (TCons name t rest)) -> tree_names_distinct t.
Proof.
  intros. inversion H. inversion H0. assumption.
Qed.

Lemma tree_name_distinct_rest : forall (inum name : nat) (t : tree) (rest : treelist),
  tree_names_distinct (TreeDir inum (TCons name t rest)) ->
  tree_names_distinct (TreeDir inum rest).
Proof.
  intros. inversion H. inversion H0.
  apply TND_dir.
  - assumption.
  - simpl in H1. apply NoDup_cons_inv in H1. assumption.
Qed.

Lemma tld_find_distinct : forall (ents : treelist) (n : nat) (t : tree),
  tree_list_distinct ents -> tl_find n ents = Some t -> tree_names_distinct t.
Proof.
  induction ents as [|nm tt rest IH]; intros; simpl in H0.
  - discriminate H0.
  - inversion H. destruct (eqb nm n) eqn:E.
    + rewrite E in H0. simpl in H0. injection H0. subst. assumption.
    + rewrite E in H0. simpl in H0. eapply IH.
      assumption.
Qed.

Lemma dir_lookup_distinct : forall (t sub : tree) (n : nat),
  tree_names_distinct t -> dir_lookup n t = Some sub -> tree_names_distinct sub.
Proof.
  intros t sub n H Hl. destruct t as [inum data|inum ents].
  - simpl in Hl. discriminate Hl.
  - simpl in Hl. inversion H. eapply tld_find_distinct.
Qed.

Lemma tld_update : forall (ents : treelist) (n : nat) (sub : tree),
  tree_list_distinct ents -> tree_names_distinct sub ->
  tree_list_distinct (tl_update n sub ents).
Proof.
  induction ents as [|nm tt rest IH]; intros; simpl.
  - apply TLD_nil.
  - inversion H. destruct (eqb nm n) eqn:E.
    + apply TLD_cons.
      * assumption.
      * assumption.
    + apply TLD_cons.
      * assumption.
      * apply IH.
        -- assumption.
        -- assumption.
Qed.

Lemma tnd_update : forall (inum n : nat) (ents : treelist) (sub : tree),
  tree_names_distinct (TreeDir inum ents) -> tree_names_distinct sub ->
  tree_names_distinct (TreeDir inum (tl_update n sub ents)).
Proof.
  intros. inversion H.
  apply TND_dir.
  - apply tld_update.
    + assumption.
    + assumption.
  - rewrite tl_update_names. assumption.
Qed.

Lemma tl_update_same : forall (ents : treelist) (n : nat) (t : tree),
  tl_find n ents = Some t -> tl_update n t ents = ents.
Proof.
  induction ents as [|nm tt rest IH]; intros; simpl in H.
  - reflexivity.
  - simpl. destruct (eqb nm n) eqn:E.
    + rewrite E in H. simpl in H. injection H. subst. reflexivity.
    + rewrite E in H. simpl in H. simpl. rewrite IH.
      * reflexivity.
      * assumption.
Qed.

Lemma tl_update_update : forall (ents : treelist) (n : nat) (t1 t2 : tree),
  tl_update n t2 (tl_update n t1 ents) = tl_update n t2 ents.
Proof.
  induction ents as [|nm tt rest IH]; intros; simpl.
  - reflexivity.
  - destruct (eqb nm n) eqn:E.
    + simpl. rewrite E. reflexivity.
    + simpl. rewrite E. simpl. rewrite IH. reflexivity.
Qed.

Lemma dir_lookup_file : forall (inum : nat) (data : list valu) (n : nat),
  dir_lookup n (TreeFile inum data) = None.
Proof. intros. reflexivity. Qed.

Lemma dir_lookup_update_hit : forall (inum n : nat) (ents : treelist) (t sub : tree),
  tl_find n ents = Some t ->
  dir_lookup n (TreeDir inum (tl_update n sub ents)) = Some sub.
Proof.
  intros inum n ents t sub H. simpl.
  eapply tl_update_find_hit.
Qed.

Lemma dir_lookup_update_miss : forall (inum n m : nat) (ents : treelist) (sub : tree),
  n <> m ->
  dir_lookup m (TreeDir inum (tl_update n sub ents)) = dir_lookup m (TreeDir inum ents).
Proof.
  intros inum n m ents sub H. simpl.
  apply tl_update_find_miss. assumption.
Qed.

Lemma tnd_update_lookup : forall (inum n : nat) (ents : treelist) (t sub : tree),
  tree_names_distinct (TreeDir inum ents) ->
  tree_names_distinct sub ->
  tl_find n ents = Some t ->
  dir_lookup n (TreeDir inum (tl_update n sub ents)) = Some sub
  /\ tree_names_distinct (TreeDir inum (tl_update n sub ents)).
Proof.
  intros inum n ents t sub Hd Hs Hf.
  split.
  - eapply dir_lookup_update_hit.
  - apply tnd_update.
    + assumption.
    + assumption.
Qed.

Lemma tl_names_in_find : forall (ents : treelist) (n : nat),
  In n (tl_names ents) -> tl_find n ents <> None.
Proof.
  induction ents as [|nm tt rest IH]; intros; simpl in H.
  - contradiction.
  - destruct H as [H|H].
    + subst. simpl in H0. rewrite eqb_refl in H0. simpl in H0. discriminate H0.
    + simpl in H0. destruct (eqb nm n) eqn:E.
      * rewrite E in H0. simpl in H0. discriminate H0.
      * rewrite E in H0. simpl in H0. apply IH in H. contradiction.
Qed.
