(* ListUtils: list utility lemmas.
   Mirrors FSCQ's ListUtils.v: app/rev/selN/updN/firstn/skipn/repeat and the
   In/incl/NoDup predicate toolbox the file system layers build on. *)

Require Import NatUtils.

Fixpoint length (A : Sort) (l : list A) : nat :=
  match l with
  | [] => 0
  | x :: xs => S (length xs)
  end.

Fixpoint app (A : Sort) (l1 l2 : list A) : list A :=
  match l1 with
  | [] => l2
  | x :: xs => x :: app xs l2
  end.

Fixpoint rev (A : Sort) (l : list A) : list A :=
  match l with
  | [] => []
  | x :: xs => app (rev xs) (x :: [])
  end.

Fixpoint selN (A : Sort) (l : list A) (n : nat) (def : A) : A :=
  match l with
  | [] => def
  | x :: xs => match n with | 0 => x | S p => selN xs p def end
  end.

Fixpoint updN (A : Sort) (l : list A) (n : nat) (v : A) : list A :=
  match l with
  | [] => []
  | x :: xs => match n with | 0 => v :: xs | S p => x :: updN xs p v end
  end.

Fixpoint firstn (A : Sort) (n : nat) (l : list A) : list A :=
  match n with
  | 0 => []
  | S p => match l with | [] => [] | x :: xs => x :: firstn p xs end
  end.

Fixpoint skipn (A : Sort) (n : nat) (l : list A) : list A :=
  match n with
  | 0 => l
  | S p => match l with | [] => [] | x :: xs => skipn p xs end
  end.

Fixpoint repeat (A : Sort) (x : A) (n : nat) : list A :=
  match n with
  | 0 => []
  | S p => x :: repeat x p
  end.

Fixpoint concat (A : Sort) (ls : list (list A)) : list A :=
  match ls with
  | [] => []
  | l :: rest => app l (concat rest)
  end.

Fixpoint In (A : Sort) (x : A) (l : list A) : Prop :=
  match l with
  | [] => False
  | y :: ys => y = x \/ In x ys
  end.

Definition incl (A : Sort) (l1 l2 : list A) : Prop :=
  forall x : A, In x l1 -> In x l2.

Inductive NoDup (A : Sort) : list A -> Prop :=
| NoDup_nil : NoDup []
| NoDup_cons : forall (x : A) (l : list A), ~ In x l -> NoDup l -> NoDup (x :: l).

(* ----- app ----- *)

Lemma app_nil_l : forall (A : Sort) (l : list A), app [] l = l.
Proof. intros. reflexivity. Qed.

Lemma app_nil_r : forall (A : Sort) (l : list A), app l [] = l.
Proof.
  induction l.
  - reflexivity.
  - simpl. rewrite IHl. reflexivity.
Qed.

Lemma app_assoc : forall (A : Sort) (l m n : list A), app l (app m n) = app (app l m) n.
Proof.
  induction l; intros; simpl.
  - reflexivity.
  - rewrite IHl. reflexivity.
Qed.

Lemma app_length : forall (A : Sort) (l m : list A), length (app l m) = add (length l) (length m).
Proof.
  induction l; intros; simpl.
  - reflexivity.
  - rewrite IHl. reflexivity.
Qed.

Lemma app_eq_nil_l : forall (A : Sort) (l m : list A), app l m = [] -> l = [].
Proof.
  intros A l m H. destruct l.
  - reflexivity.
  - simpl in H. discriminate H.
Qed.

Lemma app_eq_nil_r : forall (A : Sort) (l m : list A), app l m = [] -> m = [].
Proof.
  intros A l m H. destruct l.
  - simpl in H. assumption.
  - simpl in H. discriminate H.
Qed.

Lemma app_cons_not_nil : forall (A : Sort) (l m : list A) (x : A), app l (x :: m) <> [].
Proof.
  intros A l m x H. destruct l.
  - simpl in H. discriminate H.
  - simpl in H. discriminate H.
Qed.

(* ----- length ----- *)

Lemma length_nil : forall (A : Sort), length ([] : list A) = 0.
Proof. intros. reflexivity. Qed.

Lemma length_cons : forall (A : Sort) (x : A) (l : list A), length (x :: l) = S (length l).
Proof. intros. reflexivity. Qed.

Lemma length_zero_nil : forall (A : Sort) (l : list A), length l = 0 -> l = [].
Proof.
  intros A l H. destruct l.
  - reflexivity.
  - simpl in H. discriminate H.
Qed.

(* ----- rev ----- *)

Lemma rev_app_distr : forall (A : Sort) (l m : list A), rev (app l m) = app (rev m) (rev l).
Proof.
  induction l; intros; simpl.
  - rewrite app_nil_r. reflexivity.
  - rewrite IHl. rewrite app_assoc. reflexivity.
Qed.

Lemma rev_involutive : forall (A : Sort) (l : list A), rev (rev l) = l.
Proof.
  induction l; simpl.
  - reflexivity.
  - rewrite rev_app_distr. rewrite IHl. simpl. reflexivity.
Qed.

Lemma rev_length : forall (A : Sort) (l : list A), length (rev l) = length l.
Proof.
  induction l; simpl.
  - reflexivity.
  - rewrite app_length. rewrite IHl. simpl. lia.
Qed.

(* ----- In ----- *)

Lemma in_eq : forall (A : Sort) (a : A) (l : list A), In a (a :: l).
Proof. intros. simpl. left. reflexivity. Qed.

Lemma in_cons : forall (A : Sort) (a b : A) (l : list A), In b l -> In b (a :: l).
Proof. intros. simpl. right. assumption. Qed.

Hint Resolve in_eq.
Hint Resolve in_cons.

Lemma in_nil : forall (A : Sort) (a : A), ~ In a [].
Proof. intros A a H. simpl in H. assumption. Qed.

Lemma in_inv : forall (A : Sort) (a b : A) (l : list A), In b (a :: l) -> a = b \/ In b l.
Proof. intros A a b l H. simpl in H. assumption. Qed.

Lemma in_app_or : forall (A : Sort) (l m : list A) (a : A),
  In a (app l m) -> In a l \/ In a m.
Proof.
  induction l; intros; simpl in H.
  - right. assumption.
  - destruct H as [H|H].
    + left. simpl. left. assumption.
    + apply IHl in H. destruct H as [H|H].
      * left. simpl. right. assumption.
      * right. assumption.
Qed.

Lemma in_or_app : forall (A : Sort) (l m : list A) (a : A),
  In a l \/ In a m -> In a (app l m).
Proof.
  induction l; intros; simpl.
  - destruct H as [H|H].
    + simpl in H. contradiction.
    + assumption.
  - destruct H as [H|H].
    + simpl in H. destruct H as [H|H].
      * left. assumption.
      * right. apply IHl. left. assumption.
    + right. apply IHl. right. assumption.
Qed.

Lemma in_app_l : forall (A : Sort) (l m : list A) (a : A), In a l -> In a (app l m).
Proof. intros. apply in_or_app. left. assumption. Qed.

Lemma in_app_r : forall (A : Sort) (l m : list A) (a : A), In a m -> In a (app l m).
Proof. intros. apply in_or_app. right. assumption. Qed.

Lemma in_rev : forall (A : Sort) (l : list A) (a : A), In a l -> In a (rev l).
Proof.
  induction l; intros; simpl.
  - simpl in H. contradiction.
  - simpl in H. destruct H as [H|H].
    + apply in_app_r. simpl. left. assumption.
    + apply in_app_l. apply IHl. assumption.
Qed.

(* ----- incl ----- *)

Lemma incl_nil : forall (A : Sort) (l : list A), incl [] l.
Proof. unfold incl. intros A l x H. simpl in H. contradiction. Qed.

Hint Resolve incl_nil.

Lemma incl_refl : forall (A : Sort) (l : list A), incl l l.
Proof. unfold incl. intros. assumption. Qed.

Hint Resolve incl_refl.

Lemma incl_tl : forall (A : Sort) (a : A) (l m : list A), incl l m -> incl l (a :: m).
Proof.
  unfold incl. intros A a l m H x Hx.
  simpl. right. apply H. assumption.
Qed.

Lemma incl_cons : forall (A : Sort) (a : A) (l m : list A),
  In a m -> incl l m -> incl (a :: l) m.
Proof.
  unfold incl. intros A a l m Ha H x Hx.
  simpl in Hx. destruct Hx as [Hx|Hx].
  - subst. assumption.
  - apply H. assumption.
Qed.

Lemma incl_cons_inv : forall (A : Sort) (a : A) (l m : list A),
  incl (a :: l) m -> incl l m.
Proof.
  unfold incl. intros A a l m H x Hx.
  apply H. simpl. right. assumption.
Qed.

Lemma incl_cons_in : forall (A : Sort) (a : A) (l m : list A),
  incl (a :: l) m -> In a m.
Proof.
  intros A a l m H. apply H. apply in_eq.
Qed.

Lemma incl_appl : forall (A : Sort) (l m n : list A), incl l n -> incl l (app n m).
Proof.
  unfold incl. intros A l m n H x Hx.
  apply in_app_l. apply H. assumption.
Qed.

Lemma incl_appr : forall (A : Sort) (l m n : list A), incl l n -> incl l (app m n).
Proof.
  unfold incl. intros A l m n H x Hx.
  apply in_app_r. apply H. assumption.
Qed.

Lemma incl_app : forall (A : Sort) (l m n : list A),
  incl l n -> incl m n -> incl (app l m) n.
Proof.
  unfold incl. intros A l m n H1 H2 x Hx.
  apply in_app_or in Hx. destruct Hx as [Hx|Hx].
  - apply H1. assumption.
  - apply H2. assumption.
Qed.

Lemma incl_tran : forall (A : Sort) (l m n : list A),
  incl l m -> incl m n -> incl l n.
Proof.
  unfold incl. intros A l m n H1 H2 x Hx.
  apply H2. apply H1. assumption.
Qed.

(* Figure 2, Case A: the original human proof uses induction on l1. *)
Lemma incl_tl_inv : forall (A : Sort) (l1 l2 : list A) (a : A),
  incl l1 (a :: l2) -> ~ In a l1 -> incl l1 l2.
Proof.
  induction l1; intros.
  - apply incl_nil.
  - apply incl_cons.
    + assert (Hx : In x (a :: l2)).
      * apply H. apply in_eq.
      * simpl in Hx. destruct Hx as [Hx|Hx].
        -- exfalso. apply H0. simpl. left. symmetry. assumption.
        -- assumption.
    + apply incl_cons_inv in H. eapply IHl1.
      intro Hc. apply H0. simpl. right. assumption.
Qed.

(* ----- NoDup ----- *)

Lemma NoDup_cons_inv : forall (A : Sort) (x : A) (l : list A),
  NoDup (x :: l) -> NoDup l.
Proof. intros. inversion H. assumption. Qed.

Lemma NoDup_cons_not_in : forall (A : Sort) (x : A) (l : list A),
  NoDup (x :: l) -> ~ In x l.
Proof. intros. inversion H. contradiction. Qed.

Lemma NoDup_single : forall (A : Sort) (x : A), NoDup (x :: []).
Proof.
  intros. apply NoDup_cons.
  - apply in_nil.
  - apply NoDup_nil.
Qed.

Lemma NoDup_app_l : forall (A : Sort) (l m : list A), NoDup (app l m) -> NoDup l.
Proof.
  induction l; intros; simpl in H.
  - apply NoDup_nil.
  - inversion H. apply NoDup_cons.
    + intro Hc. apply H0. apply in_app_l. assumption.
    + eapply IHl.
Qed.

(* ----- selN / updN ----- *)

Lemma length_updN : forall (A : Sort) (l : list A) (n : nat) (v : A),
  length (updN l n v) = length l.
Proof.
  induction l; intros; simpl.
  - reflexivity.
  - destruct n; simpl.
    + reflexivity.
    + rewrite IHl. reflexivity.
Qed.

Lemma selN_updN_eq : forall (A : Sort) (l : list A) (n : nat) (v def : A),
  lt n (length l) -> selN (updN l n v) n def = v.
Proof.
  induction l; intros; simpl in H.
  - exfalso. lia.
  - destruct n; simpl.
    + reflexivity.
    + apply IHl. lia.
Qed.

Lemma selN_updN_ne : forall (A : Sort) (l : list A) (n m : nat) (v def : A),
  n <> m -> selN (updN l n v) m def = selN l m def.
Proof.
  induction l; intros; simpl.
  - reflexivity.
  - destruct n; destruct m; simpl.
    + exfalso. apply H. reflexivity.
    + reflexivity.
    + reflexivity.
    + apply IHl. intro Hc. apply H. rewrite Hc. reflexivity.
Qed.

Lemma updN_twice : forall (A : Sort) (l : list A) (n : nat) (v w : A),
  updN (updN l n v) n w = updN l n w.
Proof.
  induction l; intros; simpl.
  - reflexivity.
  - destruct n; simpl.
    + reflexivity.
    + rewrite IHl. reflexivity.
Qed.

Lemma updN_oob : forall (A : Sort) (l : list A) (n : nat) (v : A),
  le (length l) n -> updN l n v = l.
Proof.
  induction l; intros; simpl.
  - reflexivity.
  - destruct n; simpl in H.
    + exfalso. lia.
    + simpl. rewrite IHl.
      * reflexivity.
      * lia.
Qed.

Lemma selN_oob : forall (A : Sort) (l : list A) (n : nat) (def : A),
  le (length l) n -> selN l n def = def.
Proof.
  induction l; intros; simpl.
  - destruct n; reflexivity.
  - destruct n; simpl in H.
    + exfalso. lia.
    + simpl. apply IHl. lia.
Qed.

Lemma selN_app1 : forall (A : Sort) (l m : list A) (n : nat) (def : A),
  lt n (length l) -> selN (app l m) n def = selN l n def.
Proof.
  induction l; intros; simpl in H.
  - exfalso. lia.
  - destruct n; simpl.
    + reflexivity.
    + apply IHl. lia.
Qed.

Lemma updN_app1 : forall (A : Sort) (l m : list A) (n : nat) (v : A),
  lt n (length l) -> updN (app l m) n v = app (updN l n v) m.
Proof.
  induction l; intros; simpl in H.
  - exfalso. lia.
  - destruct n; simpl.
    + reflexivity.
    + rewrite IHl.
      * reflexivity.
      * lia.
Qed.

Lemma in_updN : forall (A : Sort) (l : list A) (n : nat) (v x : A),
  In x (updN l n v) -> In x l \/ x = v.
Proof.
  induction l; intros; simpl in H.
  - contradiction.
  - destruct n; simpl in H.
    + destruct H as [H|H].
      * right. symmetry. assumption.
      * left. simpl. right. assumption.
    + destruct H as [H|H].
      * left. simpl. left. assumption.
      * apply IHl in H. destruct H as [H|H].
        -- left. simpl. right. assumption.
        -- right. assumption.
Qed.

(* ----- firstn / skipn ----- *)

Lemma firstn_nil : forall (A : Sort) (n : nat), firstn n ([] : list A) = [].
Proof. intros. destruct n; reflexivity. Qed.

Lemma skipn_nil : forall (A : Sort) (n : nat), skipn n ([] : list A) = [].
Proof. intros. destruct n; reflexivity. Qed.

Lemma firstn_O : forall (A : Sort) (l : list A), firstn 0 l = [].
Proof. intros. reflexivity. Qed.

Lemma skipn_O : forall (A : Sort) (l : list A), skipn 0 l = l.
Proof. intros. reflexivity. Qed.

Lemma firstn_skipn : forall (A : Sort) (n : nat) (l : list A),
  app (firstn n l) (skipn n l) = l.
Proof.
  induction n; intros; simpl.
  - reflexivity.
  - destruct l; simpl.
    + reflexivity.
    + rewrite IHn. reflexivity.
Qed.

Lemma firstn_length : forall (A : Sort) (n : nat) (l : list A),
  length (firstn n l) = min n (length l).
Proof.
  induction n; intros; simpl.
  - reflexivity.
  - destruct l; simpl.
    + reflexivity.
    + rewrite IHn. reflexivity.
Qed.

Lemma firstn_oob : forall (A : Sort) (l : list A) (n : nat),
  le (length l) n -> firstn n l = l.
Proof.
  induction l; intros; simpl.
  - destruct n; reflexivity.
  - destruct n; simpl in H.
    + exfalso. lia.
    + simpl. rewrite IHl.
      * reflexivity.
      * lia.
Qed.

Lemma skipn_oob : forall (A : Sort) (l : list A) (n : nat),
  le (length l) n -> skipn n l = [].
Proof.
  induction l; intros; simpl.
  - destruct n; reflexivity.
  - destruct n; simpl in H.
    + exfalso. lia.
    + simpl. apply IHl. lia.
Qed.

Lemma skipn_length : forall (A : Sort) (n : nat) (l : list A),
  length (skipn n l) = sub (length l) n.
Proof.
  induction n; intros; simpl.
  - destruct l; reflexivity.
  - destruct l; simpl.
    + reflexivity.
    + rewrite IHn. reflexivity.
Qed.

Lemma firstn_app_l : forall (A : Sort) (l m : list A) (n : nat),
  le n (length l) -> firstn n (app l m) = firstn n l.
Proof.
  induction l; intros; simpl in H.
  - destruct n.
    + reflexivity.
    + exfalso. lia.
  - destruct n; simpl.
    + reflexivity.
    + rewrite IHl.
      * reflexivity.
      * lia.
Qed.

(* ----- repeat ----- *)

Lemma repeat_length : forall (A : Sort) (x : A) (n : nat), length (repeat x n) = n.
Proof.
  induction n; simpl.
  - reflexivity.
  - rewrite IHn. reflexivity.
Qed.

Lemma repeat_spec : forall (A : Sort) (x y : A) (n : nat), In y (repeat x n) -> x = y.
Proof.
  induction n; intros; simpl in H.
  - contradiction.
  - destruct H as [H|H].
    + assumption.
    + apply IHn. assumption.
Qed.

Lemma repeat_app : forall (A : Sort) (x : A) (n m : nat),
  app (repeat x n) (repeat x m) = repeat x (add n m).
Proof.
  induction n; intros; simpl.
  - reflexivity.
  - rewrite IHn. reflexivity.
Qed.

Lemma repeat_updN : forall (A : Sort) (x : A) (n m : nat),
  updN (repeat x n) m x = repeat x n.
Proof.
  induction n; intros; simpl.
  - reflexivity.
  - destruct m; simpl.
    + reflexivity.
    + rewrite IHn. reflexivity.
Qed.

(* ----- concat ----- *)

Lemma concat_nil : forall (A : Sort), concat ([] : list (list A)) = [].
Proof. intros. reflexivity. Qed.

Lemma concat_app : forall (A : Sort) (l1 l2 : list (list A)),
  concat (app l1 l2) = app (concat l1) (concat l2).
Proof.
  induction l1; intros; simpl.
  - reflexivity.
  - rewrite IHl1. rewrite app_assoc. reflexivity.
Qed.

Lemma in_concat : forall (A : Sort) (ls : list (list A)) (l : list A) (x : A),
  In l ls -> In x l -> In x (concat ls).
Proof.
  induction ls; intros; simpl in H.
  - contradiction.
  - destruct H as [H|H].
    + subst. apply in_app_l. assumption.
    + apply in_app_r. eapply IHls. assumption.
Qed.

Lemma selN_in : forall (A : Sort) (l : list A) (n : nat) (def : A),
  lt n (length l) -> In (selN l n def) l.
Proof.
  induction l; intros; simpl in H.
  - exfalso. lia.
  - destruct n; simpl.
    + left. reflexivity.
    + right. apply IHl. lia.
Qed.

Lemma incl_app_app : forall (A : Sort) (l1 l2 m1 m2 : list A),
  incl l1 m1 -> incl l2 m2 -> incl (app l1 l2) (app m1 m2).
Proof.
  intros A l1 l2 m1 m2 H1 H2.
  apply incl_app.
  - apply incl_appl. assumption.
  - apply incl_appr. assumption.
Qed.

Lemma updN_comm : forall (A : Sort) (l : list A) (n m : nat) (v w : A),
  n <> m -> updN (updN l n v) m w = updN (updN l m w) n v.
Proof.
  induction l; intros; simpl.
  - reflexivity.
  - destruct n; destruct m; simpl.
    + exfalso. apply H. reflexivity.
    + reflexivity.
    + reflexivity.
    + rewrite IHl.
      * reflexivity.
      * intro Hc. apply H. rewrite Hc. reflexivity.
Qed.

Lemma skipn_skipn : forall (A : Sort) (n m : nat) (l : list A),
  skipn n (skipn m l) = skipn (add m n) l.
Proof.
  induction m; intros; simpl.
  - reflexivity.
  - destruct l; simpl.
    + destruct n; reflexivity.
    + apply IHm.
Qed.

Lemma firstn_firstn_min : forall (A : Sort) (n m : nat) (l : list A),
  firstn n (firstn m l) = firstn (min n m) l.
Proof.
  induction n; intros; simpl.
  - reflexivity.
  - destruct m; simpl.
    + reflexivity.
    + destruct l; simpl.
      * reflexivity.
      * rewrite IHn. reflexivity.
Qed.

Lemma selN_updN_oob : forall (A : Sort) (l : list A) (n : nat) (v def : A),
  le (length l) n -> selN (updN l n v) n def = def.
Proof.
  intros A l n v def H.
  rewrite updN_oob.
  - apply selN_oob. assumption.
  - assumption.
Qed.

Lemma rev_unit : forall (A : Sort) (l : list A) (x : A),
  rev (app l (x :: [])) = x :: rev l.
Proof.
  intros A l x. rewrite rev_app_distr. simpl. reflexivity.
Qed.

Lemma min_l : forall (n m : nat), le n m -> min n m = n.
Proof.
  induction n; intros; destruct m; simpl.
  - reflexivity.
  - reflexivity.
  - exfalso. lia.
  - rewrite IHn.
    + reflexivity.
    + lia.
Qed.

Lemma length_firstn_le : forall (A : Sort) (n : nat) (l : list A),
  le n (length l) -> length (firstn n l) = n.
Proof.
  intros A n l H. rewrite firstn_length. apply min_l. assumption.
Qed.

Lemma in_firstn : forall (A : Sort) (n : nat) (l : list A) (x : A),
  In x (firstn n l) -> In x l.
Proof.
  induction n; intros; simpl in H.
  - contradiction.
  - destruct l; simpl in H.
    + contradiction.
    + destruct H as [H|H].
      * simpl. left. assumption.
      * simpl. right. eapply IHn. assumption.
Qed.
