(* Prog: programs and their crash semantics.
   Programs are sequences of disk operations. Writes are buffered (deferred
   writes, as in DFSCQ); Sync flushes the buffer to the durable disk. A
   crash exposes the durable disk with an arbitrary prefix-closed subset of
   the buffered writes applied, modelled by the recursive crash_disk
   relation. *)

Require Import NatUtils.
Require Import ListUtils.
Require Import Mem.

Inductive op :=
| Write (a : nat) (v : valu)
| Sync.

Fixpoint mflush (b : list (prod nat valu)) (d : list (prod nat valu)) : list (prod nat valu) :=
  match b with
  | [] => d
  | c :: rest => match c with
      | pair a v => mflush rest (mupd d a v)
      end
  end.

Fixpoint run (p : list op) (d : list (prod nat valu)) (b : list (prod nat valu)) : prod (list (prod nat valu)) (list (prod nat valu)) :=
  match p with
  | [] => pair d b
  | o :: rest => match o with
      | Write a v => run rest d (app b (pair a v :: []))
      | Sync => run rest (mflush b d) []
      end
  end.

Definition rfst (s : prod (list (prod nat valu)) (list (prod nat valu))) : list (prod nat valu) :=
  match s with | pair d b => d end.

Definition rsnd (s : prod (list (prod nat valu)) (list (prod nat valu))) : list (prod nat valu) :=
  match s with | pair d b => b end.

(* The logical (all-writes-applied) view of a machine state. *)
Definition ldisk (d : list (prod nat valu)) (b : list (prod nat valu)) : list (prod nat valu) :=
  mflush b d.

Fixpoint crash_disk (b : list (prod nat valu)) (d : list (prod nat valu)) (d2 : list (prod nat valu)) : Prop :=
  match b with
  | [] => meq d2 d
  | c :: rest => match c with
      | pair a v => crash_disk rest d d2 \/ crash_disk rest (mupd d a v) d2
      end
  end.

Lemma run_nil : forall (d b : list (prod nat valu)), run [] d b = pair d b.
Proof. intros. reflexivity. Qed.

Lemma run_app : forall (p1 p2 : list op) (d b : list (prod nat valu)),
  run (app p1 p2) d b = run p2 (rfst (run p1 d b)) (rsnd (run p1 d b)).
Proof.
  induction p1; intros; simpl.
  - reflexivity.
  - destruct x as [a v|]; simpl.
    + rewrite IHp1. reflexivity.
    + rewrite IHp1. reflexivity.
Qed.

Lemma mflush_nil : forall (d : list (prod nat valu)), mflush [] d = d.
Proof. intros. reflexivity. Qed.

Lemma mflush_app : forall (b1 b2 d : list (prod nat valu)),
  mflush (app b1 b2) d = mflush b2 (mflush b1 d).
Proof.
  induction b1; intros; simpl.
  - reflexivity.
  - destruct p as [a v]. simpl. rewrite IHb1. reflexivity.
Qed.

Lemma mflush_one : forall (d : list (prod nat valu)) (a : nat) (v : valu),
  mflush (pair a v :: []) d = mupd d a v.
Proof. intros. reflexivity. Qed.

Lemma write_buffers : forall (d b : list (prod nat valu)) (a : nat) (v : valu),
  run (Write a v :: []) d b = pair d (app b (pair a v :: [])).
Proof. intros. reflexivity. Qed.

Lemma sync_flushes : forall (d b : list (prod nat valu)),
  run (Sync :: []) d b = pair (mflush b d) [].
Proof. intros. reflexivity. Qed.

Lemma ldisk_write : forall (d b : list (prod nat valu)) (a : nat) (v : valu),
  ldisk (rfst (run (Write a v :: []) d b)) (rsnd (run (Write a v :: []) d b))
    = mupd (ldisk d b) a v.
Proof.
  intros. unfold ldisk. simpl. rewrite mflush_app. reflexivity.
Qed.

Lemma ldisk_sync : forall (d b : list (prod nat valu)),
  ldisk (rfst (run (Sync :: []) d b)) (rsnd (run (Sync :: []) d b)) = ldisk d b.
Proof.
  intros. unfold ldisk. simpl. reflexivity.
Qed.

Lemma crash_disk_none : forall (b d : list (prod nat valu)), crash_disk b d d.
Proof.
  induction b; intros; simpl.
  - apply meq_refl.
  - destruct p as [a v]. simpl. left. apply IHb.
Qed.

Hint Resolve crash_disk_none.

Lemma crash_disk_all : forall (b d : list (prod nat valu)),
  crash_disk b d (mflush b d).
Proof.
  induction b; intros; simpl.
  - apply meq_refl.
  - destruct p as [a v]. simpl. right. apply IHb.
Qed.

Hint Resolve crash_disk_all.

Lemma crash_disk_nil : forall (d d2 : list (prod nat valu)),
  crash_disk [] d d2 -> meq d2 d.
Proof. intros. simpl in H. assumption. Qed.

Lemma crash_disk_meq : forall (b d d2 d3 : list (prod nat valu)),
  meq d2 d3 -> crash_disk b d d2 -> crash_disk b d d3.
Proof.
  induction b; intros; simpl in H0; simpl.
  - pose proof (meq_sym d2 d3 H) as Hs.
    pose proof (meq_trans d3 d2 d Hs H0) as Ht. exact Ht.
  - destruct p as [a v]. simpl. simpl in H0. destruct H0 as [H0|H0].
    + left. eapply IHb.
      assumption.
    + right. eapply IHb.
      assumption.
Qed.

Lemma sync_crash_safe : forall (d b d2 : list (prod nat valu)),
  crash_disk (rsnd (run (Sync :: []) d b)) (rfst (run (Sync :: []) d b)) d2 ->
  meq d2 (mflush b d).
Proof.
  intros. simpl in H. assumption.
Qed.
