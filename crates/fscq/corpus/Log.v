(* Log: the write-ahead log layer.
   A log is an address list and a value list; address 0 is reserved for
   padding. Mirrors the DFSCQ log representation lemmas, including the
   padded-log lemmas of the paper's Figure 2 (Case B). *)

Require Import NatUtils.
Require Import ListUtils.
Require Import Mem.

Fixpoint nonzero_addrs (al : list nat) : nat :=
  match al with
  | [] => 0
  | a :: rest => match a with
      | 0 => nonzero_addrs rest
      | S p => S (nonzero_addrs rest)
      end
  end.

Definition ndata_log (al : list nat) : nat := nonzero_addrs al.

(* Pad the address list with reserved zero entries up to a block boundary. *)
Definition padded_log (al : list nat) : list nat :=
  app al (repeat 0 (sub 8 (length al))).

Fixpoint log_valid (al : list nat) : Prop :=
  match al with
  | [] => True
  | a :: rest => lt 0 a /\ log_valid rest
  end.

Fixpoint replay_log (al : list nat) (vl : list valu) (d : list (prod nat valu)) : list (prod nat valu) :=
  match al with
  | [] => d
  | a :: arest => match vl with
      | [] => d
      | v :: vrest => replay_log arest vrest (mupd d a v)
      end
  end.

Lemma nonzero_addrs_nil : nonzero_addrs [] = 0.
Proof. reflexivity. Qed.

Lemma nonzero_addrs_app : forall (a b : list nat),
  nonzero_addrs (app a b) = add (nonzero_addrs a) (nonzero_addrs b).
Proof.
  induction a; intros; simpl.
  - reflexivity.
  - destruct n; simpl.
    + apply IHa.
    + rewrite IHa. reflexivity.
Qed.

Lemma nonzero_addrs_repeat_0 : forall (n : nat), nonzero_addrs (repeat 0 n) = 0.
Proof.
  induction n; simpl.
  - reflexivity.
  - assumption.
Qed.

Lemma nonzero_addrs_bound : forall (al : list nat), le (nonzero_addrs al) (length al).
Proof.
  induction al; simpl.
  - apply le_n.
  - destruct n; simpl.
    + apply le_S. apply IHal.
    + apply le_n_S. apply IHal.
Qed.

Lemma nonzero_addrs_app_zeros : forall (n : nat) (al : list nat),
  nonzero_addrs (app al (repeat 0 n)) = nonzero_addrs al.
Proof.
  intros n al. rewrite nonzero_addrs_app.
  rewrite nonzero_addrs_repeat_0.
  rewrite add_0_r. reflexivity.
Qed.

(* Figure 2, Case B: entries in a log do not change when padded. *)
Lemma ndata_log_padded_log : forall (al : list nat),
  ndata_log (padded_log al) = ndata_log al.
Proof.
  unfold ndata_log. unfold padded_log. intros.
  rewrite nonzero_addrs_app.
  rewrite nonzero_addrs_repeat_0.
  rewrite add_0_r. reflexivity.
Qed.

Lemma padded_log_length : forall (al : list nat),
  length (padded_log al) = add (length al) (sub 8 (length al)).
Proof.
  intros. unfold padded_log. rewrite app_length. rewrite repeat_length. reflexivity.
Qed.

Lemma log_valid_app : forall (a b : list nat),
  log_valid a -> log_valid b -> log_valid (app a b).
Proof.
  induction a; intros; simpl.
  - assumption.
  - simpl in H. destruct H as [H1 H2]. split.
    + assumption.
    + apply IHa.
      * assumption.
      * assumption.
Qed.

Lemma log_valid_app_l : forall (a b : list nat), log_valid (app a b) -> log_valid a.
Proof.
  induction a; intros; simpl.
  - split.
  - simpl in H. destruct H as [H1 H2]. split.
    + assumption.
    + eapply IHa.
Qed.

Lemma log_valid_nonzero : forall (al : list nat),
  log_valid al -> nonzero_addrs al = length al.
Proof.
  induction al; intros; simpl.
  - reflexivity.
  - simpl in H. destruct H as [H1 H2]. destruct n.
    + exfalso. lia.
    + simpl. rewrite IHal.
      * reflexivity.
      * assumption.
Qed.

Lemma replay_log_nil : forall (vl : list valu) (d : list (prod nat valu)),
  replay_log [] vl d = d.
Proof. intros. reflexivity. Qed.

Lemma replay_log_single : forall (a : nat) (v : valu) (d : list (prod nat valu)),
  replay_log (a :: []) (v :: []) d = mupd d a v.
Proof. intros. reflexivity. Qed.

Lemma replay_log_miss : forall (al : list nat) (vl : list valu) (d : list (prod nat valu)) (x : nat),
  ~ In x al -> mfind (replay_log al vl d) x = mfind d x.
Proof.
  induction al; intros; simpl.
  - reflexivity.
  - destruct vl as [|v vl]; simpl.
    + reflexivity.
    + rewrite IHal.
      * apply mfind_mupd_ne. intro Hc. apply H. simpl. left. assumption.
      * intro Hc. apply H. simpl. right. assumption.
Qed.

Lemma replay_log_app : forall (a1 a2 : list nat) (v1 v2 : list valu) (d : list (prod nat valu)),
  length a1 = length v1 ->
  replay_log (app a1 a2) (app v1 v2) d = replay_log a2 v2 (replay_log a1 v1 d).
Proof.
  induction a1; intros; simpl.
  - simpl in H. symmetry in H. apply length_zero_nil in H. subst. reflexivity.
  - destruct v1 as [|v v1]; simpl.
    + simpl in H. discriminate H.
    + apply IHa1. simpl in H. injection H. assumption.
Qed.

Lemma replay_log_hit_head : forall (a : nat) (v : valu) (al : list nat) (vl : list valu) (d : list (prod nat valu)),
  ~ In a al -> mfind (replay_log (a :: al) (v :: vl) d) a = Some v.
Proof.
  intros a v al vl d H. simpl.
  pose proof (replay_log_miss al vl (mupd d a v) a H) as H1.
  rewrite H1. apply mfind_mupd_eq.
Qed.

Lemma log_valid_cons : forall (a : nat) (al : list nat),
  log_valid (a :: al) -> lt 0 a.
Proof.
  intros a al H. simpl in H. destruct H as [H1 H2]. assumption.
Qed.

Lemma log_valid_tail : forall (a : nat) (al : list nat),
  log_valid (a :: al) -> log_valid al.
Proof.
  intros a al H. simpl in H. destruct H as [H1 H2]. assumption.
Qed.

Lemma nonzero_addrs_cons_valid : forall (a : nat) (al : list nat),
  log_valid (a :: al) -> nonzero_addrs (a :: al) = S (nonzero_addrs al).
Proof.
  intros a al H. simpl in H. destruct H as [H1 H2].
  destruct a.
  - exfalso. lia.
  - simpl. reflexivity.
Qed.

Lemma ndata_log_valid_bound : forall (al : list nat),
  log_valid al -> ndata_log (padded_log al) = length al.
Proof.
  intros al H.
  rewrite ndata_log_padded_log.
  unfold ndata_log.
  apply log_valid_nonzero. assumption.
Qed.

Lemma replay_log_twice_head : forall (a : nat) (v w : valu) (d : list (prod nat valu)),
  meq (replay_log (a :: a :: []) (v :: w :: []) d) (mupd d a w).
Proof.
  intros a v w d. simpl.
  pose proof (mupd_shadow_mem d a v w) as H. exact H.
Qed.
