(* NatUtils: arithmetic utility lemmas over Peano naturals.
   Mirrors the arithmetic helper layer FSCQ builds on top of Coq's
   standard library. *)

Fixpoint min (n m : nat) : nat :=
  match n with
  | 0 => 0
  | S p => match m with | 0 => 0 | S q => S (min p q) end
  end.

Fixpoint max (n m : nat) : nat :=
  match n with
  | 0 => m
  | S p => match m with | 0 => n | S q => S (max p q) end
  end.

Fixpoint pow (b e : nat) : nat :=
  match e with
  | 0 => 1
  | S p => mul b (pow b p)
  end.

Lemma add_0_l : forall n : nat, add 0 n = n.
Proof. intros. reflexivity. Qed.

Lemma add_0_r : forall n : nat, add n 0 = n.
Proof.
  induction n.
  - reflexivity.
  - simpl. rewrite IHn. reflexivity.
Qed.

Lemma add_succ_l : forall n m : nat, add (S n) m = S (add n m).
Proof. intros. reflexivity. Qed.

Lemma add_succ_r : forall n m : nat, add n (S m) = S (add n m).
Proof.
  induction n; intros.
  - reflexivity.
  - simpl. rewrite IHn. reflexivity.
Qed.

Lemma add_comm : forall n m : nat, add n m = add m n.
Proof.
  induction n; intros; simpl.
  - rewrite add_0_r. reflexivity.
  - rewrite IHn. rewrite add_succ_r. reflexivity.
Qed.

Lemma add_assoc : forall a b c : nat, add a (add b c) = add (add a b) c.
Proof.
  induction a; intros; simpl.
  - reflexivity.
  - rewrite IHa. reflexivity.
Qed.

Lemma add_cancel_l : forall a b c : nat, add a b = add a c -> b = c.
Proof.
  induction a; intros; simpl in H.
  - assumption.
  - injection H. apply IHa. assumption.
Qed.

Lemma add_cancel_r : forall a b c : nat, add b a = add c a -> b = c.
Proof.
  intros a b c H.
  rewrite add_comm in H.
  assert (Hc : add c a = add a c).
  - apply add_comm.
  - rewrite Hc in H. apply add_cancel_l in H. assumption.
Qed.

Lemma add_eq_0 : forall a b : nat, add a b = 0 -> a = 0.
Proof.
  intros a b H. destruct a.
  - reflexivity.
  - simpl in H. discriminate H.
Qed.

Lemma succ_neq_0 : forall n : nat, S n <> 0.
Proof. intros. discriminate. Qed.

Lemma succ_inj : forall n m : nat, S n = S m -> n = m.
Proof. intros n m H. injection H. assumption. Qed.

Lemma mul_0_l : forall n : nat, mul 0 n = 0.
Proof. intros. reflexivity. Qed.

Lemma mul_0_r : forall n : nat, mul n 0 = 0.
Proof.
  induction n.
  - reflexivity.
  - simpl. assumption.
Qed.

Lemma mul_1_l : forall n : nat, mul 1 n = n.
Proof. intros. simpl. rewrite add_0_r. reflexivity. Qed.

Lemma mul_succ_r : forall n m : nat, mul n (S m) = add n (mul n m).
Proof.
  induction n; intros; simpl.
  - reflexivity.
  - rewrite IHn. rewrite add_assoc. rewrite add_assoc.
    assert (H : add m n = add n m).
    + apply add_comm.
    + rewrite H. reflexivity.
Qed.

Lemma mul_1_r : forall n : nat, mul n 1 = n.
Proof.
  intros. rewrite mul_succ_r. rewrite mul_0_r. rewrite add_0_r. reflexivity.
Qed.

Lemma mul_comm : forall n m : nat, mul n m = mul m n.
Proof.
  induction n; intros; simpl.
  - rewrite mul_0_r. reflexivity.
  - rewrite IHn. rewrite mul_succ_r. reflexivity.
Qed.

Lemma sub_0_l : forall n : nat, sub 0 n = 0.
Proof. intros. reflexivity. Qed.

Lemma sub_0_r : forall n : nat, sub n 0 = n.
Proof. intros n. destruct n; reflexivity. Qed.

Lemma sub_diag : forall n : nat, sub n n = 0.
Proof.
  induction n.
  - reflexivity.
  - simpl. assumption.
Qed.

Lemma sub_succ : forall n m : nat, sub (S n) (S m) = sub n m.
Proof. intros. reflexivity. Qed.

Lemma le_0_n : forall n : nat, le 0 n.
Proof.
  induction n.
  - apply le_n.
  - apply le_S. assumption.
Qed.

Hint Resolve le_0_n.

Lemma le_refl : forall n : nat, le n n.
Proof. intros. apply le_n. Qed.

Lemma le_n_S : forall n m : nat, le n m -> le (S n) (S m).
Proof.
  induction m; intros H.
  - inversion H. apply le_n.
  - inversion H.
    + apply le_n.
    + apply le_S. apply IHm. assumption.
Qed.

Hint Resolve le_n_S.

Lemma le_S_n : forall n m : nat, le (S n) (S m) -> le n m.
Proof. intros. lia. Qed.

Lemma le_trans : forall a b c : nat, le a b -> le b c -> le a c.
Proof. intros. lia. Qed.

Lemma le_antisym : forall a b : nat, le a b -> le b a -> a = b.
Proof. intros. lia. Qed.

Lemma lt_irrefl : forall n : nat, ~ lt n n.
Proof. intros n H. unfold lt in H. lia. Qed.

Lemma lt_le_incl : forall a b : nat, lt a b -> le a b.
Proof. intros. lia. Qed.

Lemma lt_trans : forall a b c : nat, lt a b -> lt b c -> lt a c.
Proof. intros. lia. Qed.

Lemma le_lt_trans : forall a b c : nat, le a b -> lt b c -> lt a c.
Proof. intros. lia. Qed.

Lemma lt_le_trans : forall a b c : nat, lt a b -> le b c -> lt a c.
Proof. intros. lia. Qed.

Lemma lt_0_succ : forall n : nat, lt 0 (S n).
Proof. intros. lia. Qed.

Lemma neq_0_lt : forall n : nat, n <> 0 -> lt 0 n.
Proof. intros. lia. Qed.

Lemma le_add_r : forall a b : nat, le a (add a b).
Proof. intros. lia. Qed.

Lemma le_add_l : forall a b : nat, le a (add b a).
Proof. intros. lia. Qed.

Lemma add_le_mono : forall a b c d : nat, le a b -> le c d -> le (add a c) (add b d).
Proof. intros. lia. Qed.

Lemma lt_succ_r : forall n m : nat, lt n (S m) <-> le n m.
Proof. intros. split; intros; lia. Qed.

Lemma eqb_refl : forall n : nat, eqb n n = true.
Proof.
  induction n.
  - reflexivity.
  - simpl. assumption.
Qed.

Lemma eqb_eq : forall n m : nat, eqb n m = true <-> n = m.
Proof.
  induction n; intros m; destruct m; simpl; split; intros H.
  - reflexivity.
  - reflexivity.
  - discriminate H.
  - discriminate H.
  - discriminate H.
  - discriminate H.
  - f_equal. apply IHn. assumption.
  - injection H. apply IHn. assumption.
Qed.

Lemma eqb_neq : forall n m : nat, eqb n m = false -> n <> m.
Proof.
  intros n m H He.
  rewrite He in H.
  rewrite eqb_refl in H.
  discriminate H.
Qed.

Lemma leb_le : forall n m : nat, leb n m = true <-> le n m.
Proof.
  induction n; intros m; destruct m; simpl; split; intros H.
  - apply le_n.
  - reflexivity.
  - apply le_0_n.
  - reflexivity.
  - discriminate H.
  - exfalso. lia.
  - apply le_n_S. apply IHn. assumption.
  - apply IHn. lia.
Qed.

Lemma leb_refl : forall n : nat, leb n n = true.
Proof.
  induction n.
  - reflexivity.
  - simpl. assumption.
Qed.

Lemma min_0_l : forall n : nat, min 0 n = 0.
Proof. intros. reflexivity. Qed.

Lemma min_comm : forall n m : nat, min n m = min m n.
Proof.
  induction n; intros; destruct m; simpl.
  - reflexivity.
  - reflexivity.
  - reflexivity.
  - rewrite IHn. reflexivity.
Qed.

Lemma min_le_l : forall n m : nat, le (min n m) n.
Proof.
  induction n; intros; destruct m; simpl.
  - apply le_n.
  - apply le_n.
  - apply le_0_n.
  - apply le_n_S. apply IHn.
Qed.

Lemma max_0_l : forall n : nat, max 0 n = n.
Proof. intros. reflexivity. Qed.

Lemma max_comm : forall n m : nat, max n m = max m n.
Proof.
  induction n; intros; destruct m; simpl.
  - reflexivity.
  - reflexivity.
  - reflexivity.
  - rewrite IHn. reflexivity.
Qed.

Lemma le_max_l : forall n m : nat, le n (max n m).
Proof.
  induction n; intros; destruct m; simpl.
  - apply le_n.
  - apply le_0_n.
  - apply le_n.
  - apply le_n_S. apply IHn.
Qed.

Lemma pow_0_r : forall b : nat, pow b 0 = 1.
Proof. intros. reflexivity. Qed.

Lemma pow_1_l : forall e : nat, pow 1 e = 1.
Proof.
  induction e.
  - reflexivity.
  - simpl. rewrite IHe. reflexivity.
Qed.

Lemma mul_add_distr_r : forall (a b c : nat), mul (add a b) c = add (mul a c) (mul b c).
Proof.
  induction a; intros; simpl.
  - reflexivity.
  - rewrite IHa. rewrite add_assoc. reflexivity.
Qed.

Lemma mul_assoc : forall (a b c : nat), mul a (mul b c) = mul (mul a b) c.
Proof.
  induction a; intros; simpl.
  - reflexivity.
  - rewrite IHa. rewrite mul_add_distr_r. reflexivity.
Qed.

Lemma min_assoc : forall (a b c : nat), min a (min b c) = min (min a b) c.
Proof.
  induction a; intros; destruct b; destruct c; simpl.
  - reflexivity.
  - reflexivity.
  - reflexivity.
  - reflexivity.
  - reflexivity.
  - reflexivity.
  - reflexivity.
  - rewrite IHa. reflexivity.
Qed.

Lemma max_assoc : forall (a b c : nat), max a (max b c) = max (max a b) c.
Proof.
  induction a; intros; destruct b; destruct c; simpl.
  - reflexivity.
  - reflexivity.
  - reflexivity.
  - reflexivity.
  - reflexivity.
  - reflexivity.
  - reflexivity.
  - rewrite IHa. reflexivity.
Qed.

Lemma min_le_r : forall (n m : nat), le (min n m) m.
Proof.
  induction n; intros; destruct m; simpl.
  - apply le_n.
  - apply le_0_n.
  - apply le_n.
  - apply le_n_S. apply IHn.
Qed.

Lemma sub_add_le : forall (a b : nat), le (sub a b) a.
Proof.
  induction a; intros; simpl.
  - apply le_n.
  - destruct b; simpl.
    + apply le_n.
    + apply le_S. apply IHa.
Qed.

Lemma add_sub_cancel : forall (a b : nat), sub (add a b) a = b.
Proof.
  induction a; intros; simpl.
  - apply sub_0_r.
  - apply IHa.
Qed.

Lemma leb_false_lt : forall (n m : nat), leb n m = false -> lt m n.
Proof.
  induction n; intros; destruct m; simpl in H.
  - discriminate H.
  - discriminate H.
  - lia.
  - apply IHn in H. lia.
Qed.
