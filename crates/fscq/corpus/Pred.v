(* Pred: the separation-logic predicate algebra of the Crash Hoare Logic.
   Predicates are a deep embedding (Emp, Ptsto, Star, Any) with a recursive
   satisfaction relation over memories; entailment is pimpl. Mirrors the
   algebraic core of FSCQ's Pred.v. *)

Require Import NatUtils.
Require Import ListUtils.
Require Import Mem.

Inductive pred :=
| Emp
| Ptsto (a : nat) (v : valu)
| Star (p : pred) (q : pred)
| Any.

Fixpoint psat (p : pred) (m : list (prod nat valu)) : Prop :=
  match p with
  | Emp => meq m []
  | Ptsto a v => meq m (pair a v :: [])
  | Star p1 p2 =>
      exists m1 : list (prod nat valu), exists m2 : list (prod nat valu),
        mdisj m1 m2 /\ meq m (munion m1 m2) /\ psat p1 m1 /\ psat p2 m2
  | Any => True
  end.

Definition pimpl (p q : pred) : Prop :=
  forall (m : list (prod nat valu)), psat p m -> psat q m.

Lemma pimpl_refl : forall (p : pred), pimpl p p.
Proof. unfold pimpl. intros. assumption. Qed.

Hint Resolve pimpl_refl.

Lemma pimpl_trans : forall (p q r : pred), pimpl p q -> pimpl q r -> pimpl p r.
Proof.
  unfold pimpl. intros p q r H1 H2 m Hm.
  apply H2. apply H1. assumption.
Qed.

Lemma pimpl_any : forall (p : pred), pimpl p Any.
Proof.
  unfold pimpl. intros. simpl. split.
Qed.

Lemma psat_emp_meq : forall (m : list (prod nat valu)), psat Emp m -> meq m [].
Proof. intros. simpl in H. assumption. Qed.

Lemma psat_meq : forall (p : pred) (m m2 : list (prod nat valu)),
  meq m m2 -> psat p m -> psat p m2.
Proof.
  destruct p as [|a v|q1 q2|]; intros; simpl in H0; simpl.
  - pose proof (meq_sym m m2 H) as Hs.
    pose proof (meq_trans m2 m [] Hs H0) as Ht. exact Ht.
  - pose proof (meq_sym m m2 H) as Hs.
    pose proof (meq_trans m2 m (pair a v :: []) Hs H0) as Ht. exact Ht.
  - destruct H0 as [m1 H0]. destruct H0 as [m3 H0].
    destruct H0 as [Hd H0]. destruct H0 as [Hm H0].
    exists m1. exists m3.
    split.
    + assumption.
    + split.
      * pose proof (meq_sym m m2 H) as Hs.
        pose proof (meq_trans m2 m (munion m1 m3) Hs Hm) as Ht. exact Ht.
      * assumption.
  - split.
Qed.

Lemma star_comm : forall (p q : pred), pimpl (Star p q) (Star q p).
Proof.
  unfold pimpl. intros p q m H. simpl in H. simpl.
  destruct H as [m1 H]. destruct H as [m2 H].
  destruct H as [Hd H]. destruct H as [Hm H]. destruct H as [Hp Hq].
  exists m2. exists m1.
  split.
  - apply mdisj_comm. assumption.
  - split.
    + pose proof (munion_comm m1 m2 Hd) as Hc.
      pose proof (meq_trans m (munion m1 m2) (munion m2 m1) Hm Hc) as Ht. exact Ht.
    + split.
      * assumption.
      * assumption.
Qed.

Lemma star_emp_l : forall (p : pred), pimpl (Star Emp p) p.
Proof.
  unfold pimpl. intros p m H. simpl in H.
  destruct H as [m1 H]. destruct H as [m2 H].
  destruct H as [Hd H]. destruct H as [Hm H]. destruct H as [He Hp].
  pose proof (meq_munion_l m1 [] m2 He) as H1.
  pose proof (munion_nil_l m2) as H2. rewrite H2 in H1.
  pose proof (meq_trans m (munion m1 m2) m2 Hm H1) as H3.
  pose proof (meq_sym m m2 H3) as H4.
  pose proof (psat_meq p m2 m H4 Hp) as H5. exact H5.
Qed.

Lemma emp_star_l : forall (p : pred), pimpl p (Star Emp p).
Proof.
  unfold pimpl. intros p m H. simpl.
  exists []. exists m.
  split.
  - apply mdisj_nil_l.
  - split.
    + apply meq_refl.
    + split.
      * apply meq_refl.
      * assumption.
Qed.

Lemma star_any_r : forall (p : pred), pimpl p (Star p Any).
Proof.
  unfold pimpl. intros p m H. simpl.
  exists m. exists [].
  split.
  - apply mdisj_nil_r.
  - split.
    + pose proof (munion_nil_r m) as Hu. rewrite Hu. apply meq_refl.
    + split.
      * assumption.
      * split.
Qed.

Lemma in_mkeys_some : forall (m : list (prod nat valu)) (a : nat),
  In a (mkeys m) -> exists v : valu, mfind m a = Some v.
Proof.
  intros m a H. destruct (mfind m a) eqn:E.
  - exists v. assumption.
  - apply mfind_none_not_in in E. contradiction.
Qed.

Lemma mdisj_meq_l : forall (m1 m2 m3 : list (prod nat valu)),
  meq m1 m2 -> mdisj m1 m3 -> mdisj m2 m3.
Proof.
  unfold mdisj. intros m1 m2 m3 H H0 a Ha.
  apply in_mkeys_some in Ha. destruct Ha as [v Hv].
  rewrite <- H in Hv.
  apply mfind_some_in in Hv.
  apply H0. assumption.
Qed.

Lemma mdisj_meq_r : forall (m1 m2 m3 : list (prod nat valu)),
  meq m2 m3 -> mdisj m1 m2 -> mdisj m1 m3.
Proof.
  intros m1 m2 m3 H H0.
  apply mdisj_comm. apply mdisj_comm in H0.
  pose proof (mdisj_meq_l m2 m3 m1 H H0) as Hx. exact Hx.
Qed.

Lemma star_assoc_1 : forall (p q r : pred),
  pimpl (Star (Star p q) r) (Star p (Star q r)).
Proof.
  unfold pimpl. intros p q r m H. simpl in H.
  destruct H as [m12 H]. destruct H as [m3 H].
  destruct H as [Hd H]. destruct H as [Hm H]. destruct H as [Hpq Hr].
  destruct Hpq as [m1 Hpq]. destruct Hpq as [m2 Hpq].
  destruct Hpq as [Hd2 Hpq]. destruct Hpq as [Hm2 Hpq]. destruct Hpq as [Hp Hq].
  pose proof (mdisj_meq_l m12 (munion m1 m2) m3 Hm2 Hd) as Hd3.
  pose proof (mdisj_munion_l m1 m2 m3 Hd3) as Hd13.
  pose proof (mdisj_munion_r m1 m2 m3 Hd3) as Hd23.
  simpl.
  exists m1. exists (munion m2 m3).
  split.
  - apply mdisj_comm. apply mdisj_munion_intro.
    + apply mdisj_comm. exact Hd2.
    + apply mdisj_comm. exact Hd13.
  - split.
    + pose proof (meq_munion_l m12 (munion m1 m2) m3 Hm2) as Ht1.
      pose proof (meq_trans m (munion m12 m3) (munion (munion m1 m2) m3) Hm Ht1) as Ht2.
      pose proof (munion_assoc m1 m2 m3) as Ha.
      rewrite <- Ha in Ht2. exact Ht2.
    + split.
      * assumption.
      * simpl. exists m2. exists m3.
        split.
        -- exact Hd23.
        -- split.
           ++ apply meq_refl.
           ++ split.
              ** assumption.
              ** assumption.
Qed.

Lemma pimpl_star_mono : forall (p p2 q q2 : pred),
  pimpl p p2 -> pimpl q q2 -> pimpl (Star p q) (Star p2 q2).
Proof.
  unfold pimpl. intros p p2 q q2 H1 H2 m H. simpl in H. simpl.
  destruct H as [m1 H]. destruct H as [m2 H].
  destruct H as [Hd H]. destruct H as [Hm H]. destruct H as [Hp Hq].
  exists m1. exists m2.
  split.
  - assumption.
  - split.
    + assumption.
    + split.
      * apply H1. assumption.
      * apply H2. assumption.
Qed.

Lemma ptsto_valid : forall (a : nat) (v : valu) (q : pred) (m : list (prod nat valu)),
  psat (Star (Ptsto a v) q) m -> mfind m a = Some v.
Proof.
  intros a v q m H. simpl in H.
  destruct H as [m1 H]. destruct H as [m2 H].
  destruct H as [Hd H]. destruct H as [Hm H]. destruct H as [Hp Hq].
  rewrite Hm.
  specialize (Hp a). simpl in Hp. rewrite eqb_refl in Hp. simpl in Hp.
  unfold munion.
  pose proof (mfind_app_some m1 m2 a v Hp) as Hx. rewrite Hx. reflexivity.
Qed.

Lemma psat_any : forall (m : list (prod nat valu)), psat Any m.
Proof. intros. simpl. split. Qed.

Hint Resolve psat_any.

Lemma star_any_any : pimpl (Star Any Any) Any.
Proof. apply pimpl_any. Qed.

Lemma ptsto_ne : forall (a b : nat) (v w : valu) (q : pred) (m : list (prod nat valu)),
  psat (Star (Ptsto a v) (Star (Ptsto b w) q)) m -> a <> b.
Proof.
  intros a b v w q m H He. subst.
  simpl in H.
  destruct H as [m1 H]. destruct H as [m2 H].
  destruct H as [Hd H]. destruct H as [Hm H]. destruct H as [Hp Hq].
  destruct Hq as [m3 Hq]. destruct Hq as [m4 Hq].
  destruct Hq as [Hd2 Hq]. destruct Hq as [Hm2 Hq]. destruct Hq as [Hb Hr].
  specialize (Hp b). simpl in Hp. rewrite eqb_refl in Hp. simpl in Hp.
  specialize (Hb b). simpl in Hb. rewrite eqb_refl in Hb. simpl in Hb.
  specialize (Hm2 b).
  pose proof (mfind_app_some m3 m4 b w Hb) as H3.
  unfold munion in Hm2. rewrite H3 in Hm2.
  apply mfind_some_in in Hp.
  apply mfind_some_in in Hm2.
  apply Hd in Hp.
  contradiction.
Qed.

Lemma mdisj_single : forall (a : nat) (v : valu) (m : list (prod nat valu)),
  ~ In a (mkeys m) -> mdisj (pair a v :: []) m.
Proof.
  unfold mdisj. intros a v m H x Hx.
  simpl in Hx. destruct Hx as [Hx|Hx].
  - subst. assumption.
  - contradiction.
Qed.

Lemma ptsto_upd : forall (a : nat) (v v0 : valu) (F : pred) (m : list (prod nat valu)),
  psat (Star (Ptsto a v0) F) m -> psat (Star (Ptsto a v) F) (mupd m a v).
Proof.
  intros a v v0 F m H. simpl in H. simpl.
  destruct H as [m1 H]. destruct H as [m2 H].
  destruct H as [Hd H]. destruct H as [Hm H]. destruct H as [Hp Hq].
  exists (pair a v :: []). exists m2.
  split.
  - apply mdisj_single.
    specialize (Hp a). simpl in Hp. rewrite eqb_refl in Hp. simpl in Hp.
    apply mfind_some_in in Hp. apply Hd in Hp. assumption.
  - split.
    + unfold meq. intros x. destruct (eqb a x) eqn:E.
      * apply eqb_eq in E. subst.
        pose proof (mfind_mupd_eq m x v) as H1. rewrite H1.
        unfold munion. simpl. rewrite eqb_refl. reflexivity.
      * apply eqb_neq in E.
        pose proof (mfind_mupd_ne m a x v E) as H1. rewrite H1.
        unfold munion. simpl. rewrite eqb_neq_false.
        -- specialize (Hm x). rewrite Hm. unfold munion.
           specialize (Hp x). simpl in Hp.
           rewrite eqb_neq_false in Hp.
           ++ simpl in Hp.
              pose proof (mfind_app_none m1 m2 x Hp) as H2. rewrite H2. reflexivity.
           ++ assumption.
        -- assumption.
    + split.
      * apply meq_refl.
      * assumption.
Qed.

Lemma star_assoc_2 : forall (p q r : pred),
  pimpl (Star p (Star q r)) (Star (Star p q) r).
Proof.
  intros p q r.
  pose proof (star_comm p (Star q r)) as H1.
  pose proof (star_assoc_1 q r p) as H2.
  pose proof (star_comm q (Star r p)) as H3.
  pose proof (star_assoc_1 r p q) as H4.
  pose proof (star_comm r (Star p q)) as H5.
  pose proof (pimpl_trans (Star p (Star q r)) (Star (Star q r) p) (Star q (Star r p)) H1 H2) as T1.
  pose proof (pimpl_trans (Star p (Star q r)) (Star q (Star r p)) (Star (Star r p) q) T1 H3) as T2.
  pose proof (pimpl_trans (Star p (Star q r)) (Star (Star r p) q) (Star r (Star p q)) T2 H4) as T3.
  pose proof (pimpl_trans (Star p (Star q r)) (Star r (Star p q)) (Star (Star p q) r) T3 H5) as T4.
  exact T4.
Qed.

(* The four-component exchange law: the workhorse of separation-logic frame
   reshuffling in the file-system proofs. The proof is a long but fully
   explicit chain of associativity, commutativity and monotonicity steps. *)
Lemma star_exchange : forall (p q r s : pred),
  pimpl (Star (Star p q) (Star r s)) (Star (Star p r) (Star q s)).
Proof.
  intros p q r s.
  pose proof (star_assoc_1 p q (Star r s)) as H1.
  pose proof (star_assoc_2 q r s) as I2.
  pose proof (star_comm q r) as I3.
  pose proof (pimpl_refl s) as Rs.
  pose proof (pimpl_star_mono (Star q r) (Star r q) s s I3 Rs) as I4.
  pose proof (star_assoc_1 r q s) as I5.
  pose proof (pimpl_trans (Star q (Star r s)) (Star (Star q r) s) (Star (Star r q) s) I2 I4) as J1.
  pose proof (pimpl_trans (Star q (Star r s)) (Star (Star r q) s) (Star r (Star q s)) J1 I5) as J2.
  pose proof (pimpl_refl p) as Rp.
  pose proof (pimpl_star_mono p p (Star q (Star r s)) (Star r (Star q s)) Rp J2) as K.
  pose proof (star_assoc_2 p r (Star q s)) as L.
  pose proof (pimpl_trans (Star (Star p q) (Star r s)) (Star p (Star q (Star r s))) (Star p (Star r (Star q s))) H1 K) as M1.
  pose proof (pimpl_trans (Star (Star p q) (Star r s)) (Star p (Star r (Star q s))) (Star (Star p r) (Star q s)) M1 L) as M2.
  exact M2.
Qed.

Lemma star_comm_frame : forall (p q f : pred),
  pimpl (Star (Star p q) f) (Star (Star q p) f).
Proof.
  intros p q f.
  pose proof (star_comm p q) as H1.
  pose proof (pimpl_refl f) as Hf.
  pose proof (pimpl_star_mono (Star p q) (Star q p) f f H1 Hf) as H2.
  exact H2.
Qed.

Lemma ptsto_any : forall (a : nat) (v : valu), pimpl (Ptsto a v) (Star (Ptsto a v) Emp).
Proof.
  unfold pimpl. intros a v m H. simpl.
  exists m. exists [].
  split.
  - apply mdisj_nil_r.
  - split.
    + pose proof (munion_nil_r m) as Hu. rewrite Hu. apply meq_refl.
    + split.
      * simpl in H. assumption.
      * apply meq_refl.
Qed.

Lemma star_rotate : forall (p q r : pred),
  pimpl (Star p (Star q r)) (Star q (Star r p)).
Proof.
  intros p q r.
  pose proof (star_comm p (Star q r)) as H1.
  pose proof (star_assoc_1 q r p) as H2.
  pose proof (pimpl_trans (Star p (Star q r)) (Star (Star q r) p) (Star q (Star r p)) H1 H2) as H3.
  exact H3.
Qed.

Lemma star_exchange_rev : forall (p q r s : pred),
  pimpl (Star (Star p r) (Star q s)) (Star (Star p q) (Star r s)).
Proof.
  intros p q r s.
  pose proof (star_exchange p r q s) as H. exact H.
Qed.

Lemma pimpl_star_any_absorb : forall (p : pred),
  pimpl (Star p (Star Any Any)) (Star p Any).
Proof.
  intros p.
  pose proof (star_any_any) as H1.
  pose proof (pimpl_refl p) as Hp.
  pose proof (pimpl_star_mono p p (Star Any Any) Any Hp H1) as H2.
  exact H2.
Qed.
