(* Hoare: Crash Hoare Logic triples over deferred-write programs.
   hoare pre p post crash: from any machine state whose logical disk
   satisfies pre, running p yields a logical disk satisfying post, and any
   disk exposed by a crash in the final state satisfies crash. *)

Require Import NatUtils.
Require Import ListUtils.
Require Import Mem.
Require Import Pred.
Require Import Prog.

Definition hoare (pre : pred) (p : list op) (post : pred) (crash : pred) : Prop :=
  forall (d b : list (prod nat valu)),
    psat pre (ldisk d b) ->
    psat post (ldisk (rfst (run p d b)) (rsnd (run p d b)))
    /\ (forall (d2 : list (prod nat valu)),
          crash_disk (rsnd (run p d b)) (rfst (run p d b)) d2 -> psat crash d2).

Lemma hoare_nil : forall (F : pred), hoare F [] F Any.
Proof.
  unfold hoare. intros F d b Hpre. split.
  - simpl. assumption.
  - intros d2 Hc. apply psat_any.
Qed.

Lemma hoare_conseq : forall (pre pre2 post post2 crash crash2 : pred) (p : list op),
  hoare pre p post crash -> pimpl pre2 pre -> pimpl post post2 -> pimpl crash crash2 ->
  hoare pre2 p post2 crash2.
Proof.
  unfold hoare. intros pre pre2 post post2 crash crash2 p H Hp Hq Hc d b Hpre.
  apply Hp in Hpre.
  specialize (H d b Hpre). destruct H as [H1 H2].
  split.
  - apply Hq. assumption.
  - intros d2 Hcr. apply Hc. apply H2. assumption.
Qed.

Lemma hoare_weaken_pre : forall (pre pre2 post crash : pred) (p : list op),
  hoare pre p post crash -> pimpl pre2 pre -> hoare pre2 p post crash.
Proof.
  intros pre pre2 post crash p H Hp.
  pose proof (hoare_conseq pre pre2 post post crash crash p H Hp) as Hx.
  apply Hx.
  - apply pimpl_refl.
  - apply pimpl_refl.
Qed.

Lemma hoare_strengthen_post : forall (pre post post2 crash : pred) (p : list op),
  hoare pre p post crash -> pimpl post post2 -> hoare pre p post2 crash.
Proof.
  intros pre post post2 crash p H Hq.
  pose proof (hoare_conseq pre pre post post2 crash crash p H) as Hx.
  apply Hx.
  - apply pimpl_refl.
  - assumption.
  - apply pimpl_refl.
Qed.

Lemma hoare_seq : forall (pre mid post crash : pred) (p1 p2 : list op),
  hoare pre p1 mid crash -> hoare mid p2 post crash ->
  hoare pre (app p1 p2) post crash.
Proof.
  unfold hoare. intros pre mid post crash p1 p2 H1 H2 d b Hpre.
  specialize (H1 d b Hpre). destruct H1 as [H1a H1b].
  pose proof (run_app p1 p2 d b) as Hr. rewrite Hr.
  specialize (H2 (rfst (run p1 d b)) (rsnd (run p1 d b)) H1a).
  destruct H2 as [H2a H2b].
  split.
  - assumption.
  - intros d2 Hc. apply H2b. assumption.
Qed.

Lemma hoare_write : forall (a : nat) (v v0 : valu) (F : pred),
  hoare (Star (Ptsto a v0) F) (Write a v :: []) (Star (Ptsto a v) F) Any.
Proof.
  unfold hoare. intros a v v0 F d b Hpre.
  split.
  - pose proof (ldisk_write d b a v) as Hl. rewrite Hl.
    eapply ptsto_upd.
  - intros d2 Hc. apply psat_any.
Qed.

Lemma hoare_sync : forall (F : pred), hoare F (Sync :: []) F F.
Proof.
  unfold hoare. intros F d b Hpre.
  split.
  - pose proof (ldisk_sync d b) as Hl. rewrite Hl. assumption.
  - intros d2 Hc. simpl in Hc.
    unfold ldisk in Hpre.
    pose proof (psat_meq F (mflush b d) d2) as Hx.
    apply Hx.
    + apply meq_sym. assumption.
    + assumption.
Qed.

Lemma hoare_write_twice : forall (a : nat) (v0 v1 v2 : valu) (F : pred),
  hoare (Star (Ptsto a v0) F) (Write a v1 :: Write a v2 :: []) (Star (Ptsto a v2) F) Any.
Proof.
  intros a v0 v1 v2 F.
  pose proof (hoare_write a v1 v0 F) as H1.
  pose proof (hoare_write a v2 v1 F) as H2.
  pose proof (hoare_seq (Star (Ptsto a v0) F) (Star (Ptsto a v1) F) (Star (Ptsto a v2) F) Any (Write a v1 :: []) (Write a v2 :: []) H1 H2) as H3.
  simpl in H3. exact H3.
Qed.

Lemma hoare_write_sync : forall (a : nat) (v v0 : valu),
  hoare (Star (Ptsto a v0) Any) (Write a v :: Sync :: [])
        (Star (Ptsto a v) Any) (Star (Ptsto a v) Any).
Proof.
  unfold hoare. intros a v v0 d b Hpre.
  unfold ldisk in Hpre.
  assert (He : ldisk (rfst (run (Write a v :: Sync :: []) d b)) (rsnd (run (Write a v :: Sync :: []) d b)) = mupd (ldisk d b) a v).
  - unfold ldisk. simpl. rewrite mflush_app. reflexivity.
  - split.
    + rewrite He. unfold ldisk. eapply ptsto_upd.
    + intros d2 Hc. simpl in Hc.
      rewrite mflush_app in Hc. simpl in Hc.
      pose proof (ptsto_upd a v v0 Any (mflush b d) Hpre) as Hu.
      pose proof (meq_sym d2 (mupd (mflush b d) a v) Hc) as Hs.
      pose proof (psat_meq (Star (Ptsto a v) Any) (mupd (mflush b d) a v) d2 Hs Hu) as Hf.
      exact Hf.
Qed.

(* Writing two distinct locations: the specification requires reshuffling
   the separation frame between the writes. The proof is the canonical
   long-form chain of consequence and exchange steps. *)
Lemma hoare_write_two : forall (a1 a2 : nat) (v1 v2 w1 w2 : valu) (F : pred),
  hoare (Star (Ptsto a1 v1) (Star (Ptsto a2 v2) F))
        (Write a1 w1 :: Write a2 w2 :: [])
        (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) F))
        Any.
Proof.
  intros a1 a2 v1 v2 w1 w2 F.
  pose proof (hoare_write a1 w1 v1 (Star (Ptsto a2 v2) F)) as H1.
  pose proof (star_comm (Ptsto a1 w1) (Star (Ptsto a2 v2) F)) as C1.
  pose proof (star_assoc_1 (Ptsto a2 v2) F (Ptsto a1 w1)) as C2.
  pose proof (pimpl_trans (Star (Ptsto a1 w1) (Star (Ptsto a2 v2) F))
                          (Star (Star (Ptsto a2 v2) F) (Ptsto a1 w1))
                          (Star (Ptsto a2 v2) (Star F (Ptsto a1 w1)))
                          C1 C2) as C3.
  pose proof (hoare_write a2 w2 v2 (Star F (Ptsto a1 w1))) as H2.
  pose proof (star_assoc_2 (Ptsto a2 w2) F (Ptsto a1 w1)) as D1.
  pose proof (star_comm (Star (Ptsto a2 w2) F) (Ptsto a1 w1)) as D2.
  pose proof (pimpl_trans (Star (Ptsto a2 w2) (Star F (Ptsto a1 w1)))
                          (Star (Star (Ptsto a2 w2) F) (Ptsto a1 w1))
                          (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) F))
                          D1 D2) as D3.
  pose proof (pimpl_refl Any) as RA.
  pose proof (hoare_conseq (Star (Ptsto a2 v2) (Star F (Ptsto a1 w1)))
                           (Star (Ptsto a1 w1) (Star (Ptsto a2 v2) F))
                           (Star (Ptsto a2 w2) (Star F (Ptsto a1 w1)))
                           (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) F))
                           Any Any
                           (Write a2 w2 :: [])
                           H2 C3 D3 RA) as H2b.
  pose proof (hoare_seq (Star (Ptsto a1 v1) (Star (Ptsto a2 v2) F))
                        (Star (Ptsto a1 w1) (Star (Ptsto a2 v2) F))
                        (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) F))
                        Any
                        (Write a1 w1 :: [])
                        (Write a2 w2 :: [])
                        H1 H2b) as FIN.
  simpl in FIN. exact FIN.
Qed.

(* Sequencing with independent crash conditions: in the deferred-write
   model the combined program's crash states are those of the second leg's
   final state, so only the second crash condition is required. *)
Lemma hoare_seq_crash : forall (pre mid post c1 c2 : pred) (p1 p2 : list op),
  hoare pre p1 mid c1 -> hoare mid p2 post c2 ->
  hoare pre (app p1 p2) post c2.
Proof.
  unfold hoare. intros pre mid post c1 c2 p1 p2 H1 H2 d b Hpre.
  specialize (H1 d b Hpre). destruct H1 as [H1a H1b].
  pose proof (run_app p1 p2 d b) as Hr. rewrite Hr.
  specialize (H2 (rfst (run p1 d b)) (rsnd (run p1 d b)) H1a).
  destruct H2 as [H2a H2b].
  split.
  - assumption.
  - intros d2 Hc. apply H2b. assumption.
Qed.

(* Committing two locations: buffer both writes, then a single sync makes
   them durable; the crash condition carries both points-to facts. *)
Lemma hoare_write_two_sync : forall (a1 a2 : nat) (v1 v2 w1 w2 : valu),
  hoare (Star (Ptsto a1 v1) (Star (Ptsto a2 v2) Any))
        (Write a1 w1 :: Write a2 w2 :: Sync :: [])
        (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) Any))
        (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) Any)).
Proof.
  intros a1 a2 v1 v2 w1 w2.
  pose proof (hoare_write_two a1 a2 v1 v2 w1 w2 Any) as H1.
  pose proof (hoare_sync (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) Any))) as H2.
  pose proof (hoare_seq_crash (Star (Ptsto a1 v1) (Star (Ptsto a2 v2) Any))
                              (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) Any))
                              (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) Any))
                              Any
                              (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) Any))
                              (Write a1 w1 :: Write a2 w2 :: [])
                              (Sync :: [])
                              H1 H2) as H3.
  simpl in H3. exact H3.
Qed.

(* Three buffered writes: two frame reshuffles thread the third points-to
   fact to the head and back. The longest proof of the corpus, written in
   the fully explicit consequence-chain style. *)
Lemma hoare_write_three : forall (a1 a2 a3 : nat) (v1 v2 v3 w1 w2 w3 : valu) (F : pred),
  hoare (Star (Ptsto a1 v1) (Star (Ptsto a2 v2) (Star (Ptsto a3 v3) F)))
        (Write a1 w1 :: Write a2 w2 :: Write a3 w3 :: [])
        (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) (Star (Ptsto a3 w3) F)))
        Any.
Proof.
  intros a1 a2 a3 v1 v2 v3 w1 w2 w3 F.
  pose proof (pimpl_refl (Ptsto a1 w1)) as RA.
  pose proof (pimpl_refl F) as RF.
  pose proof (pimpl_refl Any) as RAny.
  pose proof (star_assoc_2 (Ptsto a2 w2) (Ptsto a3 v3) F) as P1.
  pose proof (pimpl_star_mono (Ptsto a1 w1) (Ptsto a1 w1) (Star (Ptsto a2 w2) (Star (Ptsto a3 v3) F)) (Star (Star (Ptsto a2 w2) (Ptsto a3 v3)) F) RA P1) as P1m.
  pose proof (star_assoc_2 (Ptsto a1 w1) (Star (Ptsto a2 w2) (Ptsto a3 v3)) F) as P2.
  pose proof (star_assoc_2 (Ptsto a1 w1) (Ptsto a2 w2) (Ptsto a3 v3)) as P3.
  pose proof (pimpl_star_mono (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) (Ptsto a3 v3))) (Star (Star (Ptsto a1 w1) (Ptsto a2 w2)) (Ptsto a3 v3)) F F P3 RF) as P3m.
  pose proof (star_comm (Star (Ptsto a1 w1) (Ptsto a2 w2)) (Ptsto a3 v3)) as P4.
  pose proof (pimpl_star_mono (Star (Star (Ptsto a1 w1) (Ptsto a2 w2)) (Ptsto a3 v3)) (Star (Ptsto a3 v3) (Star (Ptsto a1 w1) (Ptsto a2 w2))) F F P4 RF) as P4m.
  pose proof (star_assoc_1 (Ptsto a3 v3) (Star (Ptsto a1 w1) (Ptsto a2 w2)) F) as P5.
  pose proof (pimpl_trans (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) (Star (Ptsto a3 v3) F))) (Star (Ptsto a1 w1) (Star (Star (Ptsto a2 w2) (Ptsto a3 v3)) F)) (Star (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) (Ptsto a3 v3))) F) P1m P2) as Q1.
  pose proof (pimpl_trans (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) (Star (Ptsto a3 v3) F))) (Star (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) (Ptsto a3 v3))) F) (Star (Star (Star (Ptsto a1 w1) (Ptsto a2 w2)) (Ptsto a3 v3)) F) Q1 P3m) as Q2.
  pose proof (pimpl_trans (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) (Star (Ptsto a3 v3) F))) (Star (Star (Star (Ptsto a1 w1) (Ptsto a2 w2)) (Ptsto a3 v3)) F) (Star (Star (Ptsto a3 v3) (Star (Ptsto a1 w1) (Ptsto a2 w2))) F) Q2 P4m) as Q3.
  pose proof (pimpl_trans (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) (Star (Ptsto a3 v3) F))) (Star (Star (Ptsto a3 v3) (Star (Ptsto a1 w1) (Ptsto a2 w2))) F) (Star (Ptsto a3 v3) (Star (Star (Ptsto a1 w1) (Ptsto a2 w2)) F)) Q3 P5) as Q4.
  pose proof (hoare_write a3 w3 v3 (Star (Star (Ptsto a1 w1) (Ptsto a2 w2)) F)) as HW.
  pose proof (star_assoc_2 (Ptsto a3 w3) (Star (Ptsto a1 w1) (Ptsto a2 w2)) F) as R1.
  pose proof (star_comm (Ptsto a3 w3) (Star (Ptsto a1 w1) (Ptsto a2 w2))) as R2.
  pose proof (pimpl_star_mono (Star (Ptsto a3 w3) (Star (Ptsto a1 w1) (Ptsto a2 w2))) (Star (Star (Ptsto a1 w1) (Ptsto a2 w2)) (Ptsto a3 w3)) F F R2 RF) as R2m.
  pose proof (star_assoc_1 (Ptsto a1 w1) (Ptsto a2 w2) (Ptsto a3 w3)) as R3.
  pose proof (pimpl_star_mono (Star (Star (Ptsto a1 w1) (Ptsto a2 w2)) (Ptsto a3 w3)) (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) (Ptsto a3 w3))) F F R3 RF) as R3m.
  pose proof (star_assoc_1 (Ptsto a1 w1) (Star (Ptsto a2 w2) (Ptsto a3 w3)) F) as R4.
  pose proof (star_assoc_1 (Ptsto a2 w2) (Ptsto a3 w3) F) as R5.
  pose proof (pimpl_star_mono (Ptsto a1 w1) (Ptsto a1 w1) (Star (Star (Ptsto a2 w2) (Ptsto a3 w3)) F) (Star (Ptsto a2 w2) (Star (Ptsto a3 w3) F)) RA R5) as R5m.
  pose proof (pimpl_trans (Star (Ptsto a3 w3) (Star (Star (Ptsto a1 w1) (Ptsto a2 w2)) F)) (Star (Star (Ptsto a3 w3) (Star (Ptsto a1 w1) (Ptsto a2 w2))) F) (Star (Star (Star (Ptsto a1 w1) (Ptsto a2 w2)) (Ptsto a3 w3)) F) R1 R2m) as S1.
  pose proof (pimpl_trans (Star (Ptsto a3 w3) (Star (Star (Ptsto a1 w1) (Ptsto a2 w2)) F)) (Star (Star (Star (Ptsto a1 w1) (Ptsto a2 w2)) (Ptsto a3 w3)) F) (Star (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) (Ptsto a3 w3))) F) S1 R3m) as S2.
  pose proof (pimpl_trans (Star (Ptsto a3 w3) (Star (Star (Ptsto a1 w1) (Ptsto a2 w2)) F)) (Star (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) (Ptsto a3 w3))) F) (Star (Ptsto a1 w1) (Star (Star (Ptsto a2 w2) (Ptsto a3 w3)) F)) S2 R4) as S3.
  pose proof (pimpl_trans (Star (Ptsto a3 w3) (Star (Star (Ptsto a1 w1) (Ptsto a2 w2)) F)) (Star (Ptsto a1 w1) (Star (Star (Ptsto a2 w2) (Ptsto a3 w3)) F)) (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) (Star (Ptsto a3 w3) F))) S3 R5m) as S4.
  pose proof (hoare_conseq (Star (Ptsto a3 v3) (Star (Star (Ptsto a1 w1) (Ptsto a2 w2)) F)) (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) (Star (Ptsto a3 v3) F))) (Star (Ptsto a3 w3) (Star (Star (Ptsto a1 w1) (Ptsto a2 w2)) F)) (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) (Star (Ptsto a3 w3) F))) Any Any (Write a3 w3 :: []) HW Q4 S4 RAny) as HW2.
  pose proof (hoare_write_two a1 a2 v1 v2 w1 w2 (Star (Ptsto a3 v3) F)) as H12.
  pose proof (hoare_seq (Star (Ptsto a1 v1) (Star (Ptsto a2 v2) (Star (Ptsto a3 v3) F))) (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) (Star (Ptsto a3 v3) F))) (Star (Ptsto a1 w1) (Star (Ptsto a2 w2) (Star (Ptsto a3 w3) F))) Any (Write a1 w1 :: Write a2 w2 :: []) (Write a3 w3 :: []) H12 HW2) as FIN.
  simpl in FIN. exact FIN.
Qed.

Lemma hoare_sync_twice : forall (F : pred), hoare F (Sync :: Sync :: []) F F.
Proof.
  intros F.
  pose proof (hoare_sync F) as H1.
  pose proof (hoare_seq F F F F (Sync :: []) (Sync :: []) H1 H1) as H2.
  simpl in H2. exact H2.
Qed.

Lemma hoare_nil_pre : forall (pre post : pred),
  pimpl pre post -> hoare pre [] post Any.
Proof.
  intros pre post Hp.
  pose proof (hoare_nil pre) as H1.
  pose proof (pimpl_refl pre) as Rp.
  pose proof (pimpl_refl Any) as RA.
  pose proof (hoare_conseq pre pre pre post Any Any [] H1 Rp Hp RA) as H2.
  exact H2.
Qed.
