use minicoq::fuel::Fuel;
use minicoq::goal::ProofState;
use minicoq::parse::{parse_tactic, split_sentences};
use minicoq::tactic::apply_tactic;

fn main() {
    let dev = fscq_corpus::load_corpus(false).unwrap();
    let t = dev.theorem("incl_tl_inv").expect("theorem");
    let env = dev.env_before(t);
    let mut st = ProofState::new(t.stmt.clone());
    let prefix = "induction l1; intros. - apply incl_nil. - apply incl_cons. + assert (Hx : In x (a :: l2)). * apply H. apply in_eq. * simpl in Hx. destruct Hx as [Hx|Hx]. -- exfalso. apply H0. simpl. left. symmetry. assumption. -- assumption. + apply incl_cons_inv in H.";
    for s in split_sentences(prefix) {
        let tac = parse_tactic(env, st.focused(), &s).unwrap();
        st = apply_tactic(env, &st, &tac, &mut Fuel::unlimited()).unwrap();
    }
    println!("state:\n{}", st.display());
    for attempt in ["eapply IHl1", "apply IHl1", "eauto"] {
        let tac = parse_tactic(env, st.focused(), attempt).unwrap();
        let mut fuel = Fuel::new(50_000_000);
        match apply_tactic(env, &st, &tac, &mut fuel) {
            Ok(n) => println!("`{attempt}` OK (fuel {}):\n{}", fuel.spent(), n.display()),
            Err(e) => println!("`{attempt}` ERR (fuel {}): {e}", fuel.spent()),
        }
    }
}
