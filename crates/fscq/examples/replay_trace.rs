//! Developer tool: replay a corpus theorem's human proof sentence by
//! sentence, printing the proof state after each step (and the failing
//! state on error).
//!
//! ```sh
//! cargo run -p fscq-corpus --example replay_trace <lemma_name>
//! ```

use minicoq::fuel::Fuel;
use minicoq::goal::ProofState;
use minicoq::parse::{parse_tactic, split_sentences};
use minicoq::tactic::apply_tactic;

fn main() {
    let name = std::env::args().nth(1).expect("lemma name");
    let dev = fscq_corpus::load_corpus(false).unwrap();
    let t = dev.theorem(&name).expect("theorem");
    let env = dev.env_before(t);
    let mut st = ProofState::new(t.stmt.clone());
    for s in split_sentences(&t.proof_text) {
        let tac = match parse_tactic(env, st.focused(), &s) {
            Ok(t) => t,
            Err(e) => {
                println!("PARSE FAIL `{s}`: {e}\nstate:\n{}", st.display());
                return;
            }
        };
        match apply_tactic(env, &st, &tac, &mut Fuel::new(20_000_000)) {
            Ok(n) => st = n,
            Err(e) => {
                println!("APPLY FAIL `{s}`: {e}\nstate:\n{}", st.display());
                return;
            }
        }
        println!("== {s}\n{}", st.display());
    }
    println!("complete: {}", st.is_complete());
}
