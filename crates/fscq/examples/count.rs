//! Developer tool: per-module theorem counts of the corpus.

fn main() {
    let dev = fscq_corpus::load_corpus(false).unwrap();
    let mut by_file = std::collections::BTreeMap::new();
    for t in &dev.theorems {
        *by_file.entry(t.file.clone()).or_insert(0) += 1;
    }
    for (f, c) in &by_file {
        println!("{f}: {c}");
    }
    println!("TOTAL: {}", dev.theorems.len());
}
