//! Test configuration and the deterministic RNG behind every strategy.

/// How many generated cases each property test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Real proptest defaults to 256; 64 keeps the full suite quick on
        // small machines while still exercising the generators broadly.
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// The deterministic generator driving all strategies (splitmix64).
///
/// Seeded from the test's own name, so every run of a given test sees the
/// identical case sequence — failures reproduce by re-running the test.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds an RNG seeded from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// A uniform length in `min..=max`.
    pub fn length(&mut self, min: usize, max: usize) -> usize {
        min + self.below((max.saturating_sub(min) as u64) + 1) as usize
    }
}
