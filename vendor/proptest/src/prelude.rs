//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::prop;
pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::{ProptestConfig, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
