//! The [`Strategy`] trait and its core combinators.

use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// The `Clone` supertrait mirrors how the workspace's tests reuse
/// strategies (e.g. `inner.clone()` inside `prop_recursive`).
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + Clone,
    {
        Map { source: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves and `recurse`
    /// wraps an inner strategy into one more layer, up to `depth` layers.
    ///
    /// `desired_size` and `expected_branch_size` are accepted for API
    /// compatibility; depth alone bounds the trees here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.clone().boxed();
        for _ in 0..depth {
            let leaf = self.clone().boxed();
            let layer = recurse(strat).boxed();
            // Mix leaves back in so generated structures vary in depth
            // instead of always reaching the maximum.
            strat = BoxedStrategy(Arc::new(move |rng: &mut TestRng| {
                if rng.below(4) == 0 {
                    leaf.generate(rng)
                } else {
                    layer.generate(rng)
                }
            }));
        }
        strat
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let source = self;
        BoxedStrategy(Arc::new(move |rng: &mut TestRng| source.generate(rng)))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// A type-erased strategy (the result of [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A uniform choice among boxed strategies (what `prop_oneof!` builds).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given arms; at least one is required.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Union<T> {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.arms.len() as u64) as usize;
        self.arms[pick].generate(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = self.end.saturating_sub(self.start) as u64;
                self.start + rng.below(span.max(1)) as $t
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($name:ident),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies!((A, B), (A, B, C), (A, B, C, D));
