//! String strategies from regex-like patterns.
//!
//! A `&'static str` is itself a strategy: the pattern is parsed into a
//! tiny regex AST (literals, classes, `.`, `\PC`, alternation groups,
//! `{m}`/`{m,n}`/`*`/`+`/`?` quantifiers) and sampled. This covers every
//! pattern the workspace's tests use; unsupported syntax panics with the
//! offending pattern so gaps surface immediately.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let ast = parse_alternatives(&mut Chars::new(self), false);
        let mut out = String::new();
        gen_alternatives(&ast, rng, &mut out);
        out
    }
}

struct Chars {
    chars: Vec<char>,
    pos: usize,
    pattern: &'static str,
}

impl Chars {
    fn new(pattern: &'static str) -> Chars {
        Chars {
            chars: pattern.chars().collect(),
            pos: 0,
            pattern,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn fail(&self, what: &str) -> ! {
        panic!(
            "proptest stub: {what} at position {} in pattern {:?}",
            self.pos, self.pattern
        );
    }
}

enum Node {
    Lit(char),
    Class(Vec<(char, char)>),
    /// `.` — any printable ASCII character.
    Dot,
    /// `\PC` — any non-control character.
    Printable,
    Alt(Vec<Vec<(Node, Quant)>>),
}

struct Quant {
    min: usize,
    max: usize,
}

fn parse_alternatives(input: &mut Chars, in_group: bool) -> Vec<Vec<(Node, Quant)>> {
    let mut alternatives = Vec::new();
    let mut seq: Vec<(Node, Quant)> = Vec::new();
    loop {
        match input.peek() {
            None => {
                if in_group {
                    input.fail("unclosed group");
                }
                break;
            }
            Some(')') if in_group => {
                input.next();
                break;
            }
            Some('|') => {
                input.next();
                alternatives.push(std::mem::take(&mut seq));
                continue;
            }
            Some(_) => {}
        }
        let node = match input.next().unwrap() {
            '(' => Node::Alt(parse_alternatives(input, true)),
            '[' => Node::Class(parse_class(input)),
            '.' => Node::Dot,
            '\\' => match input.next() {
                Some('P') => match input.next() {
                    Some('C') => Node::Printable,
                    _ => input.fail("only \\PC is supported"),
                },
                Some('t') => Node::Lit('\t'),
                Some('n') => Node::Lit('\n'),
                Some(c) => Node::Lit(c),
                None => input.fail("dangling backslash"),
            },
            c => Node::Lit(c),
        };
        let quant = parse_quantifier(input);
        seq.push((node, quant));
    }
    alternatives.push(seq);
    alternatives
}

fn parse_quantifier(input: &mut Chars) -> Quant {
    match input.peek() {
        Some('{') => {
            input.next();
            let min = parse_usize(input);
            let max = match input.next() {
                Some('}') => min,
                Some(',') => {
                    let max = parse_usize(input);
                    if input.next() != Some('}') {
                        input.fail("expected `}` after {m,n}");
                    }
                    max
                }
                _ => input.fail("bad quantifier"),
            };
            Quant { min, max }
        }
        // Unbounded repetitions are capped at 8 — plenty for fuzz text.
        Some('*') => {
            input.next();
            Quant { min: 0, max: 8 }
        }
        Some('+') => {
            input.next();
            Quant { min: 1, max: 8 }
        }
        Some('?') => {
            input.next();
            Quant { min: 0, max: 1 }
        }
        _ => Quant { min: 1, max: 1 },
    }
}

fn parse_usize(input: &mut Chars) -> usize {
    let mut n: usize = 0;
    let mut any = false;
    while let Some(c) = input.peek() {
        if let Some(d) = c.to_digit(10) {
            input.next();
            n = n * 10 + d as usize;
            any = true;
        } else {
            break;
        }
    }
    if !any {
        input.fail("expected a number");
    }
    n
}

fn parse_class(input: &mut Chars) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    loop {
        let c = match input.next() {
            Some(']') => return ranges,
            Some('\\') => match input.next() {
                Some('t') => '\t',
                Some('n') => '\n',
                Some(c) => c,
                None => input.fail("dangling backslash in class"),
            },
            Some(c) => c,
            None => input.fail("unclosed character class"),
        };
        // A `-` between two characters forms a range; elsewhere a literal.
        if input.peek() == Some('-') && input.chars.get(input.pos + 1) != Some(&']') {
            input.next();
            let hi = match input.next() {
                Some('\\') => input.next().unwrap_or_else(|| input.fail("bad range")),
                Some(h) => h,
                None => input.fail("unclosed range"),
            };
            if hi < c {
                input.fail("inverted class range");
            }
            ranges.push((c, hi));
        } else {
            ranges.push((c, c));
        }
    }
}

fn gen_alternatives(alts: &[Vec<(Node, Quant)>], rng: &mut TestRng, out: &mut String) {
    let pick = rng.below(alts.len() as u64) as usize;
    for (node, quant) in &alts[pick] {
        let reps = rng.length(quant.min, quant.max);
        for _ in 0..reps {
            gen_node(node, rng, out);
        }
    }
}

fn gen_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                .sum();
            let mut idx = rng.below(total);
            for (lo, hi) in ranges {
                let size = (*hi as u64) - (*lo as u64) + 1;
                if idx < size {
                    out.push(char::from_u32(*lo as u32 + idx as u32).unwrap_or(*lo));
                    return;
                }
                idx -= size;
            }
        }
        Node::Dot => {
            // Printable ASCII (space through tilde).
            out.push(char::from_u32(0x20 + rng.below(95) as u32).unwrap());
        }
        Node::Printable => {
            // Mostly printable ASCII with an occasional non-ASCII
            // character, so totality tests see multi-byte input too.
            const EXTRAS: [char; 6] = ['é', 'λ', 'ß', '→', '∀', '🦀'];
            if rng.below(20) == 0 {
                out.push(EXTRAS[rng.below(EXTRAS.len() as u64) as usize]);
            } else {
                out.push(char::from_u32(0x20 + rng.below(95) as u32).unwrap());
            }
        }
        Node::Alt(alts) => gen_alternatives(alts, rng, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(pattern: &'static str) -> Vec<String> {
        let mut rng = TestRng::from_name(pattern);
        (0..64).map(|_| pattern.generate(&mut rng)).collect()
    }

    #[test]
    fn classes_and_quantifiers() {
        for s in sample("[a-z][a-z0-9_]{0,8}") {
            assert!(!s.is_empty() && s.len() <= 9);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn alternation_groups() {
        for s in sample("(apply|rewrite|destruct|exact) [A-Za-z_]{1,12}") {
            let (head, tail) = s.split_once(' ').unwrap();
            assert!(["apply", "rewrite", "destruct", "exact"].contains(&head));
            assert!((1..=12).contains(&tail.len()));
        }
    }

    #[test]
    fn escaped_class_members() {
        for s in sample("[a-z\\.;() ]{0,48}") {
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || ".;() ".contains(c)));
        }
    }

    #[test]
    fn printable_never_emits_controls() {
        for s in sample("\\PC{0,40}") {
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }
}
