//! Collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy for vectors whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// The result of [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.length(self.size.start, self.size.end.saturating_sub(1));
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
