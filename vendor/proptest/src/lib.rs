//! Offline stand-in for `proptest`.
//!
//! Implements the slice of proptest this workspace's property tests use:
//! the [`strategy::Strategy`] trait with `prop_map`/`prop_recursive`/
//! `boxed`, regex-pattern string strategies, integer ranges, tuples,
//! `collection::vec`, `bool::ANY`, and the `proptest!`/`prop_oneof!`/
//! `prop_assert!` macros.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! seeds: each test derives a fixed RNG seed from its own name, so runs
//! are fully deterministic and failures reproduce by just re-running the
//! test. That trades minimized counterexamples for zero dependencies,
//! which is the right trade in this registry-less build environment.

pub mod bool;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Namespace mirror of real proptest's `prop::` re-exports.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

/// Defines property tests: each `fn` runs its body `cases` times with
/// freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$attr:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),* $(,)?
    ) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Chooses uniformly among the listed strategies (all arms are boxed to a
/// common value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a property inside `proptest!` (plain `assert!` here — no
/// shrinking machinery to feed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}
