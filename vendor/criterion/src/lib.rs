//! Offline stand-in for `criterion`.
//!
//! Implements the small surface the workspace's benches use
//! (`Criterion::default().sample_size(n)`, `bench_function`,
//! `criterion_group!`/`criterion_main!`, `black_box`) with a simple
//! timed loop: each sample runs the closure enough times to cross a
//! minimum duration, and the harness reports min/mean/max per-iteration
//! time. No statistics engine, plots, or CLI — just honest wall-clock
//! numbers suitable for coarse regression tracking offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                per_iter: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.per_iter);
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{name:<40} time: [{} {} {}]",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max)
        );
        self
    }
}

/// Times a closure for one sample.
pub struct Bencher {
    per_iter: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean per-iteration time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm up once, then time batches until we cross a floor so very
        // fast routines still get a stable measurement.
        black_box(routine());
        let floor = Duration::from_millis(20);
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= floor || iters >= 1 << 20 {
                self.per_iter = elapsed / iters as u32;
                return;
            }
            iters = (iters * 4).min(1 << 20);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}
