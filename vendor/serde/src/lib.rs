//! Offline stand-in for `serde`.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the narrow slice of serde it actually uses: a
//! self-describing [`Value`] tree, [`Serialize`]/[`Deserialize`] traits
//! that convert to and from it, and derive macros for plain structs and
//! enums (externally tagged, like real serde's default representation).
//!
//! The JSON text layer lives in the sibling `serde_json` stub.

use std::collections::BTreeMap;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data value — the meeting point of serialization and
/// deserialization, structurally identical to a JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (JSON numbers without a fraction or exponent).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An object; insertion order is preserved so output is deterministic.
    Object(Vec<(String, Value)>),
}

/// The shared null used when a key is absent.
pub const NULL: Value = Value::Null;

impl Value {
    /// The object entries, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The array elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `f64`, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The numeric value as `i64`, when this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            _ => None,
        }
    }

    /// Looks up a key, when this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// A (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Derive-macro helper: deserializes an object field, treating a missing
/// key as `null` (so `Option` fields tolerate omission).
pub fn de_field<T: Deserialize>(v: &Value, key: &str) -> Result<T, Error> {
    let field = v.get(key).unwrap_or(&NULL);
    T::deserialize(field).map_err(|e| Error(format!("field `{key}`: {e}")))
}

/// As [`de_field`], but a missing (or null) field falls back to
/// `T::default()` — the backing for `#[serde(default)]`.
pub fn de_field_or_default<T: Deserialize + Default>(v: &Value, key: &str) -> Result<T, Error> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(T::default()),
        Some(field) => T::deserialize(field).map_err(|e| Error(format!("field `{key}`: {e}"))),
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::Float(*self as f64),
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| Error(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(i).map_err(|_| Error(format!("integer {i} out of range")))
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error(format!("expected bool, got {v:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let a = v
            .as_array()
            .ok_or_else(|| Error(format!("expected 2-element array, got {v:?}")))?;
        if a.len() != 2 {
            return Err(Error(format!("expected 2 elements, got {}", a.len())));
        }
        Ok((A::deserialize(&a[0])?, B::deserialize(&a[1])?))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error(format!("expected object, got {v:?}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
