//! Derive macros for the vendored `serde` stand-in.
//!
//! Supports non-generic structs with named fields (including
//! `#[serde(default)]` and `#[serde(skip_serializing_if = "...")]`) and
//! enums whose variants are unit, named-field, or single/multi-element
//! tuple variants — the shapes this workspace actually derives. Enums use real serde's default
//! externally-tagged representation so the JSON output looks familiar:
//! unit variants serialize as `"Variant"`, data-carrying variants as
//! `{"Variant": ...}`.
//!
//! Written against `proc_macro` directly because `syn`/`quote` are not
//! available in this offline environment.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed `struct` or `enum` shape.
enum Input {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Field {
    name: String,
    /// `#[serde(default)]`: a missing field deserializes to
    /// `Default::default()` instead of erroring.
    default: bool,
    /// `#[serde(skip_serializing_if = "path")]`: the field is omitted from
    /// the serialized object when `path(&self.field)` is true.
    skip_if: Option<String>,
}

struct Variant {
    name: String,
    /// `None` for unit variants, `Some(named fields)` for brace variants,
    /// `Some(x0..xN)` synthesized names for tuple variants.
    fields: Option<(bool, Vec<String>)>, // (named, field names)
}

fn parse_input(input: TokenStream) -> Input {
    let mut toks = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                toks.next();
                // `pub(crate)` and friends carry a parenthesized group.
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported by the offline stub");
        }
    }
    let body = loop {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(_) => continue, // e.g. `where` clauses never appear here
            None => panic!("serde_derive: missing body for {name}"),
        }
    };
    match kind.as_str() {
        "struct" => Input::Struct {
            name,
            fields: parse_named_fields(body.stream()),
        },
        "enum" => Input::Enum {
            name,
            variants: parse_variants(body.stream()),
        },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

/// True when an attribute group's tokens spell `serde(default)`.
fn is_serde_default(attr: &TokenStream) -> bool {
    let mut toks = attr.clone().into_iter();
    match (toks.next(), toks.next()) {
        (Some(TokenTree::Ident(i)), Some(TokenTree::Group(g)))
            if i.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            g.stream()
                .into_iter()
                .any(|t| matches!(t, TokenTree::Ident(i) if i.to_string() == "default"))
        }
        _ => false,
    }
}

/// Extracts the predicate path from `serde(... skip_serializing_if = "path" ...)`.
fn serde_skip_if(attr: &TokenStream) -> Option<String> {
    let mut toks = attr.clone().into_iter();
    match (toks.next(), toks.next()) {
        (Some(TokenTree::Ident(i)), Some(TokenTree::Group(g)))
            if i.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let mut inner = g.stream().into_iter();
            while let Some(t) = inner.next() {
                if matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip_serializing_if") {
                    match (inner.next(), inner.next()) {
                        (Some(TokenTree::Punct(p)), Some(TokenTree::Literal(l)))
                            if p.as_char() == '=' =>
                        {
                            return Some(l.to_string().trim_matches('"').to_string());
                        }
                        _ => return None,
                    }
                }
            }
            None
        }
        _ => None,
    }
}

/// Parses `name: Type, ...` from a brace group, noting `#[serde(default)]`
/// and `#[serde(skip_serializing_if = "...")]` markers and skipping other
/// attributes, visibility and the type tokens (commas inside `<...>` are
/// not separators).
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Attributes and visibility before the field name.
        let mut default = false;
        let mut skip_if = None;
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.next() {
                        default |= is_serde_default(&g.stream());
                        skip_if = skip_if.or_else(|| serde_skip_if(&g.stream()));
                    }
                }
                Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(field)) = toks.next() else {
            break;
        };
        fields.push(Field {
            name: field.to_string(),
            default,
            skip_if,
        });
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field, got {other:?}"),
        }
        // Consume the type up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match toks.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => break,
                Some(_) => continue,
                None => break,
            }
        }
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next();
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(vname)) = toks.next() else {
            break;
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream())
                    .into_iter()
                    .map(|f| f.name)
                    .collect();
                toks.next();
                Some((true, named))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                // Count tuple elements by commas at angle depth 0.
                let mut depth = 0i32;
                let mut count = 0usize;
                let mut any = false;
                for t in g.stream() {
                    any = true;
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
                        _ => {}
                    }
                }
                let n = if any { count + 1 } else { 0 };
                toks.next();
                Some((false, (0..n).map(|i| format!("x{i}")).collect()))
            }
            _ => None,
        };
        variants.push(Variant {
            name: vname.to_string(),
            fields,
        });
        // Skip to the comma separating variants (past discriminants).
        loop {
            match toks.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => continue,
                None => break,
            }
        }
    }
    variants
}

/// Derives `serde::Serialize` (the offline stand-in's `to_value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_input(input) {
        Input::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in &fields {
                let n = &f.name;
                let push = format!(
                    "o.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n})));"
                );
                match &f.skip_if {
                    Some(pred) => pushes.push_str(&format!("if !{pred}(&self.{n}) {{ {push} }}")),
                    None => pushes.push_str(&push),
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut o: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\n\
                         ::serde::Value::Object(o)\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.fields {
                    None => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                    )),
                    Some((true, fields)) => {
                        let binds = fields.join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![\
                                 (\"{vn}\".to_string(), ::serde::Value::Object(vec![{pushes}]))]),"
                        ));
                    }
                    Some((false, fields)) if fields.len() == 1 => arms.push_str(&format!(
                        "{name}::{vn}(x0) => ::serde::Value::Object(vec![\
                             (\"{vn}\".to_string(), ::serde::Serialize::to_value(x0))]),"
                    )),
                    Some((false, fields)) => {
                        let binds = fields.join(", ");
                        let mut elems = String::new();
                        for f in fields {
                            elems.push_str(&format!("::serde::Serialize::to_value({f}),"));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Object(vec![\
                                 (\"{vn}\".to_string(), ::serde::Value::Array(vec![{elems}]))]),"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde_derive: generated code parses")
}

/// Derives `serde::Deserialize` (the offline stand-in's `deserialize`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_input(input) {
        Input::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                let helper = if f.default {
                    "de_field_or_default"
                } else {
                    "de_field"
                };
                let f = &f.name;
                inits.push_str(&format!("{f}: ::serde::{helper}(v, \"{f}\")?,"));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if v.as_object().is_none() {{\n\
                             return Err(::serde::Error::custom(format!(\n\
                                 \"expected object for {name}, got {{v:?}}\")));\n\
                         }}\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.fields {
                    None => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),"));
                        tagged_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),"));
                    }
                    Some((true, fields)) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!("{f}: ::serde::de_field(inner, \"{f}\")?,"));
                        }
                        tagged_arms
                            .push_str(&format!("\"{vn}\" => Ok({name}::{vn} {{ {inits} }}),"));
                    }
                    Some((false, fields)) if fields.len() == 1 => tagged_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::deserialize(inner)?)),"
                    )),
                    Some((false, fields)) => {
                        let n = fields.len();
                        let mut elems = String::new();
                        for i in 0..n {
                            elems.push_str(&format!(
                                "::serde::Deserialize::deserialize(&arr[{i}])?,"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let arr = inner.as_array().ok_or_else(|| \
                                     ::serde::Error::custom(\"expected array\"))?;\n\
                                 if arr.len() != {n} {{\n\
                                     return Err(::serde::Error::custom(\"wrong tuple arity\"));\n\
                                 }}\n\
                                 Ok({name}::{vn}({elems}))\n\
                             }},"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(::serde::Error::custom(format!(\n\
                                     \"unknown {name} variant {{other}}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(o) if o.len() == 1 => {{\n\
                                 let (tag, inner) = &o[0];\n\
                                 let _ = inner;\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     other => Err(::serde::Error::custom(format!(\n\
                                         \"unknown {name} variant {{other}}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::Error::custom(format!(\n\
                                 \"cannot deserialize {name} from {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde_derive: generated code parses")
}
