//! Offline stand-in for `rand`.
//!
//! This workspace only uses seeded, reproducible randomness
//! (`StdRng::seed_from_u64` + `SliceRandom::shuffle` for the corpus
//! dev/eval split), so the stub provides exactly that: a splitmix64
//! generator and a Fisher–Yates shuffle. The stream differs from
//! upstream rand's ChaCha-based `StdRng`, which is fine here — the split
//! only needs to be deterministic, not match any external artifact.

/// A source of random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014) — passes BigCrush and
            // is trivially seedable, which is all the corpus split needs.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                // Modulo bias is negligible for corpus-sized slices and
                // keeps the stream simple and stable.
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(0xF5C9);
        let mut b = StdRng::seed_from_u64(0xF5C9);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut v1: Vec<u32> = (0..50).collect();
        let mut v2: Vec<u32> = (0..50).collect();
        v1.shuffle(&mut StdRng::seed_from_u64(7));
        v2.shuffle(&mut StdRng::seed_from_u64(7));
        assert_eq!(v1, v2);
        let mut sorted = v1.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v1, sorted, "seed 7 should actually permute");
    }
}
