//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored [`serde::Value`] tree to JSON text and parses it
//! back with a small recursive-descent parser. Output is deterministic
//! (object insertion order is preserved), and `f64` values round-trip
//! exactly because Rust's `Display` for floats is shortest-round-trip.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// A JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.0)
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into any deserializable value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::deserialize(&v)?)
}

fn write_value(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // JSON requires a fraction or exponent to stay a float.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                write_value(item, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..level * width {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("expected `{word}` at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf8 in number".to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error(format!("bad number `{text}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid utf8 in string".to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".to_string()))?;
                            self.pos += 4;
                            // Surrogate pairs: \uD800-\uDBFF followed by \uDC00-\uDFFF.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos + 1) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 2) == Some(&b'u')
                                {
                                    let hex2 = self
                                        .bytes
                                        .get(self.pos + 3..self.pos + 7)
                                        .ok_or_else(|| Error("truncated surrogate".to_string()))?;
                                    let low = u32::from_str_radix(
                                        std::str::from_utf8(hex2)
                                            .map_err(|_| Error("bad surrogate".to_string()))?,
                                        16,
                                    )
                                    .map_err(|_| Error("bad surrogate".to_string()))?;
                                    self.pos += 6;
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?} at {}", self.pos)))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error(format!("expected `,` or `]`, got {other:?}"))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => return Err(Error(format!("expected `,` or `}}`, got {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("lemma_1".to_string())),
            ("score".to_string(), Value::Float(0.125)),
            ("count".to_string(), Value::Int(-3)),
            (
                "tags".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn parses_escapes() {
        let back: String = from_str(r#""a\n\t\"\\ A 😀""#).unwrap();
        assert_eq!(back, "a\n\t\"\\ A 😀");
    }
}
