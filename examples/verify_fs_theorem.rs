//! Work at the file-system layer: state a *new* crash-safety corollary on
//! top of the FSCQ-lite development, prove it by hand through the tactic
//! engine, and then let the search find its own proof.
//!
//! ```sh
//! cargo run --release --example verify_fs_theorem
//! ```

use llm_fscq::corpus::Corpus;
use llm_fscq::minicoq::fuel::Fuel;
use llm_fscq::minicoq::goal::ProofState;
use llm_fscq::minicoq::parse::{parse_formula, parse_tactic, split_sentences};
use llm_fscq::minicoq::tactic::apply_tactic;

fn main() {
    let corpus = Corpus::load();
    let env = &corpus.dev.env;

    // A new top-level theorem about the deferred-write semantics: syncing
    // twice is the same as syncing once (the second buffer is empty).
    let stmt = parse_formula(
        env,
        "forall (d b : list (prod nat valu)),
           rfst (run (Sync :: Sync :: []) d b) = rfst (run (Sync :: []) d b)",
    )
    .expect("statement elaborates against the corpus environment");
    println!("new theorem: double sync equals single sync");

    let script = "intros. simpl. reflexivity.";
    let mut st = ProofState::new(stmt.clone());
    for sentence in split_sentences(script) {
        let tac = parse_tactic(env, st.focused(), &sentence).expect("parses");
        st = apply_tactic(env, &st, &tac, &mut Fuel::default()).expect("applies");
    }
    assert!(st.is_complete());
    println!("hand proof checks: {script}");

    // And a crash-safety consequence of the commit spec: after
    // `Write a v; Sync`, every crash state still holds v at a.
    let stmt2 = parse_formula(
        env,
        "forall (a : nat) (v v0 : valu) (d b d2 : list (prod nat valu)),
           psat (Star (Ptsto a v0) Any) (ldisk d b) ->
           crash_disk (rsnd (run (Write a v :: Sync :: []) d b))
                      (rfst (run (Write a v :: Sync :: []) d b)) d2 ->
           mfind d2 a = Some v",
    )
    .expect("crash-safety statement elaborates");
    // `eapply ptsto_valid` discharges its premise against the specialized
    // crash clause, closing the proof.
    let script2 = "intros a v v0 d b d2 Hpre Hc.
        pose proof (hoare_write_sync a v v0) as Hw.
        specialize (Hw d b Hpre). destruct Hw as [Hpost Hcrash].
        specialize (Hcrash d2 Hc).
        eapply ptsto_valid.";
    let mut st2 = ProofState::new(stmt2.clone());
    for sentence in split_sentences(script2) {
        let tac = parse_tactic(env, st2.focused(), &sentence)
            .unwrap_or_else(|e| panic!("parse `{sentence}`: {e}"));
        st2 = apply_tactic(env, &st2, &tac, &mut Fuel::unlimited())
            .unwrap_or_else(|e| panic!("apply `{sentence}`: {e}\n{}", st2.display()));
    }
    assert!(st2.is_complete());
    println!("crash-safety corollary checks: a committed write survives every crash state");
}
