//! Drive the SerAPI-like state-transition machine interactively, the way
//! the paper's search harness drives Coq: `Add` tactics, inspect goals,
//! `Cancel` dead ends — over the s-expression wire protocol.
//!
//! ```sh
//! cargo run --release --example interactive_session
//! ```

use llm_fscq::minicoq::env::Env;
use llm_fscq::minicoq::parse::parse_formula;
use llm_fscq::stm::protocol::handle_line;
use llm_fscq::stm::{ProofSession, SessionConfig};

fn main() {
    let env = Env::with_prelude();
    let stmt = parse_formula(&env, "forall n m : nat, add n (S m) = S (add n m)")
        .expect("statement parses");
    let mut session = ProofSession::new(env, stmt, SessionConfig::default());

    // A scripted exchange; each request is one protocol line.
    let requests = [
        "(Goals 0)",
        "(Add (at 0) (tactic \"induction n; intros; simpl\"))",
        "(Goals 1)",
        "(Add (at 1) (tactic \"reflexivity\"))",
        "(Add (at 2) (tactic \"rewrite IHn\"))",
        "(Add (at 3) (tactic \"reflexivity\"))",
        "(Script 4)",
        // A rejected tactic and a duplicate state, for flavour.
        "(Add (at 0) (tactic \"assumption\"))",
        "(Add (at 0) (tactic \"induction n; intros; simpl\"))",
        "(Cancel 1)",
    ];
    for req in requests {
        let resp = handle_line(&mut session, req);
        println!("> {req}");
        for line in resp.lines() {
            println!("  {line}");
        }
    }
}
