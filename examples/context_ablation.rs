//! Context-selection ablation (§4.3 and §5 "Improving context retrieval"):
//! for one theorem, compare the full hint prompt, a truncated window, and
//! the minimal dependency-sliced prompt.
//!
//! ```sh
//! cargo run --release --example context_ablation [theorem_name]
//! ```

use llm_fscq::corpus::Corpus;
use llm_fscq::oracle::profiles::ModelProfile;
use llm_fscq::oracle::prompt::{build_prompt, PromptConfig, PromptSetting};
use llm_fscq::oracle::split::hint_set;
use llm_fscq::oracle::SimulatedModel;
use llm_fscq::search::{search, SearchConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "in_cons".into());
    let corpus = Corpus::load();
    let thm = corpus.dev.theorem(&name).expect("theorem exists");
    let env = corpus.dev.env_before(thm);
    let hints = hint_set(&corpus.dev);

    let configs = [
        ("full hint prompt", PromptConfig::hints()),
        (
            "8k-token window",
            PromptConfig {
                setting: PromptSetting::Hints,
                window: Some(8_000),
                minimal: false,
                retrieval: None,
            },
        ),
        (
            "minimal dependency slice",
            PromptConfig {
                setting: PromptSetting::Hints,
                window: None,
                minimal: true,
                retrieval: None,
            },
        ),
    ];
    println!("theorem: {}", thm.statement_text.replace('\n', " "));
    for (label, cfg) in configs {
        let prompt = build_prompt(&corpus.dev, thm, &hints, &cfg);
        let mut model = SimulatedModel::new(ModelProfile::gpt4o());
        let r = search(
            env,
            &thm.stmt,
            &thm.name,
            &mut model,
            &prompt,
            &SearchConfig::default(),
        );
        println!(
            "  {label:26} {:6} tokens, {:3} lemmas visible -> {:8} ({} queries){}",
            prompt.tokens,
            prompt.visible_lemmas.len(),
            if r.proved() { "PROVED" } else { "failed" },
            r.stats.queries,
            r.script_text()
                .map(|s| format!("  proof: {s}"))
                .unwrap_or_default()
        );
    }
}
