//! Quickstart: prove a theorem from the FSCQ-lite corpus with the
//! best-first search, then replay the found proof through the kernel.
//!
//! ```sh
//! cargo run --release --example quickstart [theorem_name]
//! ```

use llm_fscq::corpus::Corpus;
use llm_fscq::oracle::profiles::ModelProfile;
use llm_fscq::oracle::prompt::{build_prompt, PromptConfig};
use llm_fscq::oracle::split::hint_set;
use llm_fscq::oracle::SimulatedModel;
use llm_fscq::search::{search, SearchConfig};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "app_nil_r".into());

    // Load the corpus (fast path: the checked-in proofs are trusted here;
    // `Corpus::load_checked()` replays all 238 of them through the kernel).
    let corpus = Corpus::load();
    let thm = corpus
        .dev
        .theorem(&name)
        .unwrap_or_else(|| panic!("no theorem named {name} in the corpus"));
    println!("theorem: {}.", thm.statement_text);
    println!("human proof: {}", thm.proof_text);

    // Build the hint-setting prompt the model will see, exactly as in the
    // paper: everything in scope before the theorem, with the human proofs
    // of the 50% hint split included.
    let env = corpus.dev.env_before(thm);
    let hints = hint_set(&corpus.dev);
    let prompt = build_prompt(&corpus.dev, thm, &hints, &PromptConfig::hints());
    println!(
        "prompt: {} tokens, {} lemma statements visible, {} hint proofs",
        prompt.tokens,
        prompt.visible_lemmas.len(),
        prompt.hint_scripts.len()
    );

    // Best-first search (width 8, query limit 128 — the paper's settings).
    let mut model = SimulatedModel::new(ModelProfile::gpt4o());
    let result = search(
        env,
        &thm.stmt,
        &thm.name,
        &mut model,
        &prompt,
        &SearchConfig::default(),
    );
    println!(
        "search: {} queries, {} valid / {} rejected / {} duplicate / {} timed-out tactics",
        result.stats.queries,
        result.stats.valid_tactics,
        result.stats.rejected,
        result.stats.duplicates,
        result.stats.timeouts
    );

    match result.script_text() {
        Some(script) => {
            println!("found proof: {script}");
            // Soundness check: replay through the kernel.
            llm_fscq::vernac::loader::replay_proof(env, &thm.stmt, &script)
                .expect("found proofs always replay");
            println!("replayed through the kernel: QED");
        }
        None => println!("no proof found ({:?})", result.outcome),
    }
}
