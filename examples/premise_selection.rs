//! Automated premise selection (§5 "Improving context retrieval"): rank
//! the lemmas visible to a theorem by rarity-weighted symbol overlap with
//! the goal, show the top of the ranking, and compare proof search over
//! the full prompt against the retrieval-pruned prompt at several k.
//!
//! ```sh
//! cargo run --release --example premise_selection [theorem_name]
//! ```

use llm_fscq::corpus::Corpus;
use llm_fscq::oracle::profiles::ModelProfile;
use llm_fscq::oracle::prompt::{build_prompt, PromptConfig};
use llm_fscq::oracle::retrieval::rank_lemmas;
use llm_fscq::oracle::split::hint_set;
use llm_fscq::oracle::SimulatedModel;
use llm_fscq::search::{search, SearchConfig};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "write_buffers".into());
    let corpus = Corpus::load();
    let thm = corpus.dev.theorem(&name).expect("theorem exists");
    let env = corpus.dev.env_before(thm);
    let hints = hint_set(&corpus.dev);

    println!("theorem: {}", thm.statement_text.replace('\n', " "));
    println!("\ntop-ranked premises (rarity-weighted symbol overlap):");
    for r in rank_lemmas(&corpus.dev, thm).iter().take(8) {
        if r.score > 0.0 {
            println!("  {:30} score {:.3}", r.name, r.score);
        }
    }

    println!("\nsearch under different context budgets:");
    let mut configs = vec![("full prompt".to_string(), PromptConfig::hints())];
    for k in [4usize, 16, 64] {
        let mut cfg = PromptConfig::hints();
        cfg.retrieval = Some(k);
        configs.push((format!("retrieval top-{k}"), cfg));
    }
    for (label, cfg) in configs {
        let prompt = build_prompt(&corpus.dev, thm, &hints, &cfg);
        let mut model = SimulatedModel::new(ModelProfile::gpt4o());
        let r = search(
            env,
            &thm.stmt,
            &thm.name,
            &mut model,
            &prompt,
            &SearchConfig::default(),
        );
        println!(
            "  {label:18} {:6} tokens, {:3} lemmas visible -> {:6} ({} queries){}",
            prompt.tokens,
            prompt.visible_lemmas.len(),
            if r.proved() { "PROVED" } else { "failed" },
            r.stats.queries,
            r.script_text()
                .map(|s| format!("  proof: {s}"))
                .unwrap_or_default()
        );
    }
}
