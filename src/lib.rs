//! LLM-guided best-first proof search for system software — an executable
//! reproduction of *"Can Large Language Models Verify System Software? A
//! Case Study Using FSCQ as a Benchmark"* (HotOS '25).
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`minicoq`] — a small Coq-like proof assistant (logic, tactics,
//!   parser);
//! * [`vernac`] — the Gallina-lite vernacular language and proof-checked
//!   development loader;
//! * [`stm`] — the SerAPI-like state-transition machine the search drives;
//! * [`corpus`] — FSCQ-lite, the 294-theorem crash-safe file-system
//!   benchmark corpus;
//! * [`gen`] — the seeded procedural theorem generator (backward
//!   template-driven construction with recorded, kernel-replayed
//!   witnesses);
//! * [`oracle`] — the tactic-prediction model layer (prompts, profiles,
//!   and the offline simulator);
//! * [`search`] — the paper's best-first tactic tree search;
//! * [`analysis`] — the whole-corpus semantic analyzer (dependency graph,
//!   hint-loop/positivity/dead-symbol/rewrite/axiom passes, and the
//!   premise-ranking heuristic);
//! * [`metrics`] — the evaluation harness regenerating every table and
//!   figure.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for paper-vs-measured numbers.
//!
//! # Example: prove a corpus theorem and replay it through the kernel
//!
//! ```
//! use llm_fscq::corpus::Corpus;
//! use llm_fscq::oracle::profiles::ModelProfile;
//! use llm_fscq::oracle::prompt::{build_prompt, PromptConfig};
//! use llm_fscq::oracle::split::hint_set;
//! use llm_fscq::oracle::SimulatedModel;
//! use llm_fscq::search::{search, SearchConfig};
//!
//! let corpus = Corpus::load();
//! let thm = corpus.dev.theorem("app_nil_l").unwrap();
//! let env = corpus.dev.env_before(thm);
//! let hints = hint_set(&corpus.dev);
//! let prompt = build_prompt(&corpus.dev, thm, &hints, &PromptConfig::hints());
//!
//! let mut model = SimulatedModel::new(ModelProfile::gpt4o());
//! let result = search(env, &thm.stmt, &thm.name, &mut model, &prompt, &SearchConfig::default());
//! if let Some(script) = result.script_text() {
//!     // Every found proof replays through the kernel.
//!     llm_fscq::vernac::loader::replay_proof(env, &thm.stmt, &script).unwrap();
//! }
//! ```

pub use corpus_analysis as analysis;
pub use corpus_gen as gen;
pub use fscq_corpus as corpus;
pub use minicoq;
pub use minicoq_stm as stm;
pub use minicoq_vernac as vernac;
pub use proof_metrics as metrics;
pub use proof_oracle as oracle;
pub use proof_search as search;
