//! `lint` — audit the bundled FSCQ-lite corpus for hygiene problems.
//!
//! ```sh
//! lint            # lint the bundled corpus
//! ```
//!
//! Runs every [`llm_fscq::vernac::lint`] pass over the loaded development
//! and prints one line per diagnostic (`file:item: kind: message`). Exits
//! non-zero when any diagnostic fires or the corpus fails to load, so CI
//! can gate on a clean corpus.

use llm_fscq::corpus::Corpus;
use llm_fscq::vernac::lint_development;
use std::process::ExitCode;

fn main() -> ExitCode {
    let corpus = match Corpus::try_load() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("lint: corpus failed to load: {e}");
            return ExitCode::FAILURE;
        }
    };
    let diags = lint_development(&corpus.dev);
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!(
            "lint: {} files, {} theorems — clean",
            corpus.dev.files.len(),
            corpus.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("lint: {} diagnostic(s)", diags.len());
        ExitCode::FAILURE
    }
}
