//! `lint` — audit the bundled FSCQ-lite corpus for hygiene problems.
//!
//! ```sh
//! lint [--local-only]
//! ```
//!
//! Two layers run in sequence:
//!
//! 1. the per-item lints of [`llm_fscq::vernac::lint`] (duplicate names,
//!    shadowed binders, unused hypotheses), which need no global view;
//! 2. the whole-corpus semantic analysis of [`llm_fscq::analysis`]
//!    (hint loops, positivity, dead symbols, rewrite orientation,
//!    axioms/admits, unresolved references), which this binary delegates
//!    to rather than reimplementing — `--local-only` skips it.
//!
//! One line per diagnostic. Exit codes: 0 = clean, 1 = findings,
//! 2 = corpus failed to load.

use llm_fscq::analysis::{analyze_development, AnalysisConfig};
use llm_fscq::corpus::Corpus;
use llm_fscq::vernac::lint_development;
use std::process::ExitCode;

fn main() -> ExitCode {
    let local_only = std::env::args().skip(1).any(|a| a == "--local-only");
    let corpus = match Corpus::try_load() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("lint: corpus failed to load: {e}");
            return ExitCode::from(2);
        }
    };
    let diags = lint_development(&corpus.dev);
    for d in &diags {
        println!("{d}");
    }
    let mut total = diags.len();

    if !local_only {
        let sources: Vec<(String, String)> = llm_fscq::corpus::corpus_sources()
            .into_iter()
            .map(|(n, t)| (n.to_string(), t.to_string()))
            .collect();
        let (report, _) = analyze_development(&corpus.dev, &sources, &AnalysisConfig::default());
        for f in &report.findings {
            println!("{f}");
        }
        total += report.findings.len();
    }

    if total == 0 {
        println!(
            "lint: {} files, {} theorems — clean",
            corpus.dev.files.len(),
            corpus.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("lint: {total} diagnostic(s)");
        ExitCode::from(1)
    }
}
