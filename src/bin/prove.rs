//! `prove` — run the LLM-guided best-first search on one corpus theorem,
//! or re-verify an edited corpus incrementally.
//!
//! ```sh
//! prove <theorem> [--model mini|gpt4o|flash|pro|pro128k] [--vanilla]
//!       [--retrieval K] [--limit N] [--width W] [--strategy best|greedy|bfs]
//!       [--show-query] [--preflight|--no-preflight]
//!       [--premise-rank off|graph|learned] [--rank-model PATH]
//!       [--attempt-log PATH] [--proof-jobs N]
//! prove --incremental --save-baseline DIR [--corpus DIR] [cell flags]
//! prove --incremental --baseline DIR [--corpus DIR] [cell flags] [--jobs N]
//! ```
//!
//! Single-theorem mode prints the outcome, the search statistics, and
//! (when proved) the found script together with its kernel replay check.
//!
//! `--incremental` runs the change-impact workflow instead: with
//! `--save-baseline DIR` it evaluates the whole cell cold and writes the
//! baseline artifacts (`snapshot.json` + `baseline.json`) to `DIR`; with
//! `--baseline DIR` it diffs the baseline snapshot against the corpus
//! (the embedded one, or a directory of `.v` modules via `--corpus DIR`),
//! prints the impact report, re-verifies only the dirty cone, and merges
//! the baseline results for the clean remainder.

use llm_fscq::analysis::Snapshot;
use llm_fscq::corpus::Corpus;
use llm_fscq::metrics::incremental::{run_incremental, IncrementalConfig};
use llm_fscq::metrics::runner::cell_cache_key;
use llm_fscq::metrics::{run_cell_jobs, CellConfig, CellResult};
use llm_fscq::oracle::profiles::ModelProfile;
use llm_fscq::oracle::prompt::{build_prompt, PromptConfig, PromptSetting};
use llm_fscq::oracle::split::hint_set;
use llm_fscq::oracle::SimulatedModel;
use llm_fscq::search::{search_with_recovery, PremiseRank, RecoveryConfig, SearchConfig, Strategy};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    theorem: Option<String>,
    profile: ModelProfile,
    setting: PromptSetting,
    retrieval: Option<usize>,
    cfg: SearchConfig,
    rank_model: Option<PathBuf>,
    attempt_log: Option<PathBuf>,
    proof_jobs: usize,
    show_query: bool,
    incremental: bool,
    baseline: Option<PathBuf>,
    save_baseline: Option<PathBuf>,
    corpus_dir: Option<PathBuf>,
    jobs: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: prove <theorem> [--model mini|gpt4o|flash|pro|pro128k] [--vanilla]\n\
         \x20             [--retrieval K] [--limit N] [--width W] [--strategy best|greedy|bfs]\n\
         \x20             [--preflight|--no-preflight] [--premise-rank off|graph|learned]\n\
         \x20             [--rank-model PATH] [--attempt-log PATH] [--proof-jobs N]\n\
         \x20      prove --incremental --save-baseline DIR [--corpus DIR]\n\
         \x20      prove --incremental --baseline DIR [--corpus DIR] [--jobs N]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut theorem = None;
    let mut profile = ModelProfile::gpt4o();
    let mut setting = PromptSetting::Hints;
    let mut retrieval = None;
    let mut cfg = SearchConfig::default();
    let mut rank_model = None;
    let mut attempt_log = None;
    let mut proof_jobs = 1usize;
    let mut show_query = false;
    let mut incremental = false;
    let mut baseline = None;
    let mut save_baseline = None;
    let mut corpus_dir = None;
    let mut jobs = 1usize;
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--model" => {
                profile = match value("--model").as_str() {
                    "mini" => ModelProfile::gpt4o_mini(),
                    "gpt4o" => ModelProfile::gpt4o(),
                    "flash" => ModelProfile::gemini_flash(),
                    "pro" => ModelProfile::gemini_pro(),
                    "pro128k" => ModelProfile::gemini_pro_128k(),
                    other => {
                        eprintln!("unknown model {other}");
                        usage()
                    }
                }
            }
            "--vanilla" => setting = PromptSetting::Vanilla,
            "--preflight" => cfg.preflight = true,
            "--no-preflight" => cfg.preflight = false,
            "--premise-rank" => {
                cfg.premise_rank = match value("--premise-rank").as_str() {
                    "off" => PremiseRank::Off,
                    "graph" => PremiseRank::Graph,
                    "learned" => PremiseRank::Learned,
                    other => {
                        eprintln!("unknown premise-rank mode {other}");
                        usage()
                    }
                }
            }
            "--rank-model" => rank_model = Some(PathBuf::from(value("--rank-model"))),
            "--attempt-log" => attempt_log = Some(PathBuf::from(value("--attempt-log"))),
            "--show-query" => show_query = true,
            "--retrieval" => retrieval = value("--retrieval").parse().ok(),
            "--limit" => cfg.query_limit = value("--limit").parse().unwrap_or_else(|_| usage()),
            "--width" => cfg.width = value("--width").parse().unwrap_or_else(|_| usage()),
            "--proof-jobs" => {
                proof_jobs = value("--proof-jobs")
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage())
                    .max(1)
            }
            "--strategy" => {
                cfg.strategy = match value("--strategy").as_str() {
                    "best" => Strategy::BestFirst,
                    "greedy" => Strategy::Greedy,
                    "bfs" => Strategy::BreadthFirst,
                    other => {
                        eprintln!("unknown strategy {other}");
                        usage()
                    }
                }
            }
            "--incremental" => incremental = true,
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline"))),
            "--save-baseline" => save_baseline = Some(PathBuf::from(value("--save-baseline"))),
            "--corpus" => corpus_dir = Some(PathBuf::from(value("--corpus"))),
            "--jobs" => {
                jobs = value("--jobs")
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage())
                    .max(1)
            }
            "--help" | "-h" => usage(),
            other if theorem.is_none() && !other.starts_with('-') => {
                theorem = Some(other.to_string())
            }
            other => {
                eprintln!("unexpected argument {other}");
                usage()
            }
        }
    }
    Args {
        theorem,
        profile,
        setting,
        retrieval,
        cfg,
        rank_model,
        attempt_log,
        proof_jobs,
        show_query,
        incremental,
        baseline,
        save_baseline,
        corpus_dir,
        jobs,
    }
}

/// The corpus sources: the embedded benchmark, or every `.v` module in a
/// directory (the loader topologically sorts by imports, so file order
/// does not matter).
fn corpus_sources_from(dir: Option<&Path>) -> Result<Vec<(String, String)>, String> {
    let Some(dir) = dir else {
        return Ok(llm_fscq::corpus::corpus_sources()
            .into_iter()
            .map(|(n, t)| (n.to_string(), t.to_string()))
            .collect());
    };
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("v") {
            continue;
        }
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| format!("bad module filename {}", path.display()))?
            .to_string();
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push((name, text));
    }
    out.sort();
    if out.is_empty() {
        return Err(format!("no .v modules under {}", dir.display()));
    }
    Ok(out)
}

/// The cell configuration the incremental modes evaluate, assembled from
/// the same model/setting/search flags single-theorem mode takes.
fn cell_of(args: &Args) -> CellConfig {
    let mut cell = CellConfig::standard(args.profile.clone(), args.setting);
    cell.search = args.cfg.clone();
    cell.retrieval = args.retrieval;
    cell
}

/// `--incremental`: baseline capture or dirty-cone re-verification.
fn incremental_main(args: &Args) -> ExitCode {
    let fail = |msg: String| {
        eprintln!("prove --incremental: {msg}");
        ExitCode::FAILURE
    };
    let sources = match corpus_sources_from(args.corpus_dir.as_deref()) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let cell = cell_of(args);

    if let Some(dir) = &args.save_baseline {
        let (corpus, _graph) = match llm_fscq::metrics::incremental::load_edited(&sources) {
            Ok(v) => v,
            Err(e) => return fail(e),
        };
        let snapshot = Snapshot::capture(&corpus.dev);
        let result = run_cell_jobs(&corpus, &cell, args.jobs);
        if let Err(e) = std::fs::create_dir_all(dir) {
            return fail(format!("{}: {e}", dir.display()));
        }
        let baseline_json = match serde_json::to_string_pretty(&result) {
            Ok(t) => t,
            Err(e) => return fail(format!("serialize baseline: {e:?}")),
        };
        if let Err(e) = std::fs::write(dir.join("snapshot.json"), snapshot.to_json())
            .and_then(|()| std::fs::write(dir.join("baseline.json"), baseline_json))
            .and_then(|()| std::fs::write(dir.join("cell_key.txt"), cell_cache_key(&cell)))
        {
            return fail(format!("{}: {e}", dir.display()));
        }
        println!(
            "baseline: {} — {} theorems evaluated, artifacts in {}",
            cell.label(),
            result.outcomes.len(),
            dir.display()
        );
        return ExitCode::SUCCESS;
    }

    let Some(dir) = &args.baseline else {
        return fail("need --baseline DIR (or --save-baseline DIR to create one)".to_string());
    };
    let read = |name: &str| {
        std::fs::read_to_string(dir.join(name)).map_err(|e| {
            format!(
                "{}: {e} (run --save-baseline first?)",
                dir.join(name).display()
            )
        })
    };
    let snapshot = match read("snapshot.json").and_then(|t| Snapshot::from_json(&t)) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let baseline: CellResult = match read("baseline.json")
        .and_then(|t| serde_json::from_str(&t).map_err(|e| format!("baseline.json: {e:?}")))
    {
        Ok(b) => b,
        Err(e) => return fail(e),
    };
    // The saved key pins every outcome-affecting flag (--model, --vanilla,
    // --limit, ...); run_incremental additionally re-checks the cell
    // label/setting, but only the key catches search-knob-only drift.
    // Baselines predating the key file skip this check.
    if let Ok(saved) = std::fs::read_to_string(dir.join("cell_key.txt")) {
        if saved.trim() != cell_cache_key(&cell) {
            return fail(format!(
                "baseline in {} was saved under different cell flags (key {} vs requested {}): \
                 re-save the baseline or pass the flags it was saved with",
                dir.display(),
                saved.trim(),
                cell_cache_key(&cell)
            ));
        }
    }
    let cfg = IncrementalConfig {
        recovery: RecoveryConfig {
            proof_jobs: args.proof_jobs,
            ..RecoveryConfig::default()
        },
        jobs: args.jobs,
        ..IncrementalConfig::new(cell)
    };
    let inc = match run_incremental(Some(&baseline), &snapshot, &sources, &cfg) {
        Ok(i) => i,
        Err(e) => return fail(e),
    };
    print!("{}", inc.impact.render());
    if inc.fallback_full {
        println!("(theorem set changed — fell back to a full re-verification)");
    }
    println!(
        "merged  : {} theorems — {} re-verified, {} cone-cache hits, {} from baseline",
        inc.result.outcomes.len(),
        inc.reverified.len(),
        inc.cone_cache_hits,
        inc.served_baseline
    );
    println!(
        "proved  : {:.1}% ({} of {})",
        100.0 * inc.result.proved_rate(),
        inc.result
            .outcomes
            .iter()
            .filter(|o| o.outcome == "proved")
            .count(),
        inc.result.outcomes.len()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(path) = &args.rank_model {
        let model = std::fs::read(path)
            .map_err(|e| format!("{}: {e}", path.display()))
            .and_then(|bytes| llm_fscq::analysis::score::Model::from_bytes(&bytes));
        match model {
            Ok(m) => llm_fscq::analysis::score::install_model(m),
            Err(e) => {
                eprintln!("prove: bad --rank-model: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &args.attempt_log {
        llm_fscq::metrics::experiment::install_attempt_log(path.clone());
    }
    if args.incremental || args.save_baseline.is_some() {
        return incremental_main(&args);
    }
    let Some(theorem) = args.theorem.clone() else {
        usage();
    };
    let corpus = Corpus::load();
    let Some(thm) = corpus.dev.theorem(&theorem) else {
        eprintln!("unknown theorem `{theorem}`; try one of:");
        for t in corpus.dev.theorems.iter().take(10) {
            eprintln!("  {}", t.name);
        }
        eprintln!("  ... ({} total)", corpus.dev.theorems.len());
        return ExitCode::FAILURE;
    };
    let env = corpus.dev.env_before(thm);
    let hints = hint_set(&corpus.dev);
    let prompt_cfg = PromptConfig {
        setting: args.setting,
        window: Some(args.profile.window),
        minimal: false,
        retrieval: args.retrieval,
    };
    let prompt = build_prompt(&corpus.dev, thm, &hints, &prompt_cfg);
    println!("theorem : {}", thm.statement_text.replace('\n', " "));
    println!(
        "model   : {} ({}), prompt {} tokens / {} lemmas{}",
        args.profile.name,
        match args.setting {
            PromptSetting::Hints => "w/ hints",
            PromptSetting::Vanilla => "vanilla",
        },
        prompt.tokens,
        prompt.visible_lemmas.len(),
        if prompt.truncated { " (truncated)" } else { "" },
    );

    if args.show_query {
        // The exact first-query payload a real LLM client would send.
        let st = llm_fscq::minicoq::goal::ProofState::new(thm.stmt.clone());
        let ctx = llm_fscq::oracle::model::QueryCtx {
            prompt: &prompt,
            state: &st,
            env,
            path: &[],
            theorem: &thm.name,
            query_index: 0,
        };
        println!("--- query payload ---");
        println!("{}", llm_fscq::oracle::model::render_query(&ctx));
        println!("--- end payload ---");
    }

    let mut model = SimulatedModel::new(args.profile.clone());
    let recovery = RecoveryConfig {
        proof_jobs: args.proof_jobs,
        collect_attempts: args.attempt_log.is_some(),
        ..RecoveryConfig::default()
    };
    let r = search_with_recovery(
        env, &thm.stmt, &thm.name, &mut model, &prompt, &args.cfg, &recovery,
    );
    if args.attempt_log.is_some() {
        llm_fscq::metrics::experiment::append_attempts(&thm.name, &r.stats);
    }
    let outcome_name = match &r.outcome {
        llm_fscq::search::Outcome::Proved { .. } => "Proved",
        llm_fscq::search::Outcome::Stuck => "Stuck",
        llm_fscq::search::Outcome::Fuelout => "Fuelout",
    };
    println!(
        "search  : {outcome_name} — {} queries, {} valid / {} rejected / {} duplicate / {} timeout / {} preflight-pruned",
        r.stats.queries,
        r.stats.valid_tactics,
        r.stats.rejected,
        r.stats.duplicates,
        r.stats.timeouts,
        r.stats.preflight_pruned,
    );
    if !r.stats.preflight_reasons.is_empty() {
        let reasons: Vec<String> = r
            .stats
            .preflight_reasons
            .iter()
            .map(|(code, n)| format!("{code} x{n}"))
            .collect();
        println!("pruned  : {}", reasons.join(", "));
    }
    match r.script_text() {
        Some(script) => {
            println!("proof   : {script}");
            match llm_fscq::vernac::loader::replay_proof(env, &thm.stmt, &script) {
                Ok(_) => {
                    println!("replay  : QED (kernel-checked)");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    println!("replay  : FAILED — {e}");
                    ExitCode::FAILURE
                }
            }
        }
        None => {
            println!(
                "outcome : not proved ({})",
                if r.stats.queries >= args.cfg.query_limit {
                    "query limit exhausted"
                } else {
                    "search stuck"
                }
            );
            ExitCode::FAILURE
        }
    }
}
