//! `prove` — run the LLM-guided best-first search on one corpus theorem.
//!
//! ```sh
//! prove <theorem> [--model mini|gpt4o|flash|pro|pro128k] [--vanilla]
//!       [--retrieval K] [--limit N] [--width W] [--strategy best|greedy|bfs]
//!       [--show-query] [--preflight|--no-preflight] [--premise-rank]
//!       [--proof-jobs N]
//! ```
//!
//! Prints the outcome, the search statistics, and (when proved) the found
//! script together with its kernel replay check.

use llm_fscq::corpus::Corpus;
use llm_fscq::oracle::profiles::ModelProfile;
use llm_fscq::oracle::prompt::{build_prompt, PromptConfig, PromptSetting};
use llm_fscq::oracle::split::hint_set;
use llm_fscq::oracle::SimulatedModel;
use llm_fscq::search::{search_with_recovery, RecoveryConfig, SearchConfig, Strategy};
use std::process::ExitCode;

struct Args {
    theorem: String,
    profile: ModelProfile,
    setting: PromptSetting,
    retrieval: Option<usize>,
    cfg: SearchConfig,
    proof_jobs: usize,
    show_query: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: prove <theorem> [--model mini|gpt4o|flash|pro|pro128k] [--vanilla]\n\
         \x20             [--retrieval K] [--limit N] [--width W] [--strategy best|greedy|bfs]\n\
         \x20             [--preflight|--no-preflight] [--premise-rank] [--proof-jobs N]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut theorem = None;
    let mut profile = ModelProfile::gpt4o();
    let mut setting = PromptSetting::Hints;
    let mut retrieval = None;
    let mut cfg = SearchConfig::default();
    let mut proof_jobs = 1usize;
    let mut show_query = false;
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--model" => {
                profile = match value("--model").as_str() {
                    "mini" => ModelProfile::gpt4o_mini(),
                    "gpt4o" => ModelProfile::gpt4o(),
                    "flash" => ModelProfile::gemini_flash(),
                    "pro" => ModelProfile::gemini_pro(),
                    "pro128k" => ModelProfile::gemini_pro_128k(),
                    other => {
                        eprintln!("unknown model {other}");
                        usage()
                    }
                }
            }
            "--vanilla" => setting = PromptSetting::Vanilla,
            "--preflight" => cfg.preflight = true,
            "--no-preflight" => cfg.preflight = false,
            "--premise-rank" => cfg.premise_rank = true,
            "--show-query" => show_query = true,
            "--retrieval" => retrieval = value("--retrieval").parse().ok(),
            "--limit" => cfg.query_limit = value("--limit").parse().unwrap_or_else(|_| usage()),
            "--width" => cfg.width = value("--width").parse().unwrap_or_else(|_| usage()),
            "--proof-jobs" => {
                proof_jobs = value("--proof-jobs")
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage())
                    .max(1)
            }
            "--strategy" => {
                cfg.strategy = match value("--strategy").as_str() {
                    "best" => Strategy::BestFirst,
                    "greedy" => Strategy::Greedy,
                    "bfs" => Strategy::BreadthFirst,
                    other => {
                        eprintln!("unknown strategy {other}");
                        usage()
                    }
                }
            }
            "--help" | "-h" => usage(),
            other if theorem.is_none() && !other.starts_with('-') => {
                theorem = Some(other.to_string())
            }
            other => {
                eprintln!("unexpected argument {other}");
                usage()
            }
        }
    }
    Args {
        theorem: theorem.unwrap_or_else(|| usage()),
        profile,
        setting,
        retrieval,
        cfg,
        proof_jobs,
        show_query,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let corpus = Corpus::load();
    let Some(thm) = corpus.dev.theorem(&args.theorem) else {
        eprintln!("unknown theorem `{}`; try one of:", args.theorem);
        for t in corpus.dev.theorems.iter().take(10) {
            eprintln!("  {}", t.name);
        }
        eprintln!("  ... ({} total)", corpus.dev.theorems.len());
        return ExitCode::FAILURE;
    };
    let env = corpus.dev.env_before(thm);
    let hints = hint_set(&corpus.dev);
    let prompt_cfg = PromptConfig {
        setting: args.setting,
        window: Some(args.profile.window),
        minimal: false,
        retrieval: args.retrieval,
    };
    let prompt = build_prompt(&corpus.dev, thm, &hints, &prompt_cfg);
    println!("theorem : {}", thm.statement_text.replace('\n', " "));
    println!(
        "model   : {} ({}), prompt {} tokens / {} lemmas{}",
        args.profile.name,
        match args.setting {
            PromptSetting::Hints => "w/ hints",
            PromptSetting::Vanilla => "vanilla",
        },
        prompt.tokens,
        prompt.visible_lemmas.len(),
        if prompt.truncated { " (truncated)" } else { "" },
    );

    if args.show_query {
        // The exact first-query payload a real LLM client would send.
        let st = llm_fscq::minicoq::goal::ProofState::new(thm.stmt.clone());
        let ctx = llm_fscq::oracle::model::QueryCtx {
            prompt: &prompt,
            state: &st,
            env,
            path: &[],
            theorem: &thm.name,
            query_index: 0,
        };
        println!("--- query payload ---");
        println!("{}", llm_fscq::oracle::model::render_query(&ctx));
        println!("--- end payload ---");
    }

    let mut model = SimulatedModel::new(args.profile.clone());
    let recovery = RecoveryConfig {
        proof_jobs: args.proof_jobs,
        ..RecoveryConfig::default()
    };
    let r = search_with_recovery(
        env, &thm.stmt, &thm.name, &mut model, &prompt, &args.cfg, &recovery,
    );
    let outcome_name = match &r.outcome {
        llm_fscq::search::Outcome::Proved { .. } => "Proved",
        llm_fscq::search::Outcome::Stuck => "Stuck",
        llm_fscq::search::Outcome::Fuelout => "Fuelout",
    };
    println!(
        "search  : {outcome_name} — {} queries, {} valid / {} rejected / {} duplicate / {} timeout / {} preflight-pruned",
        r.stats.queries,
        r.stats.valid_tactics,
        r.stats.rejected,
        r.stats.duplicates,
        r.stats.timeouts,
        r.stats.preflight_pruned,
    );
    if !r.stats.preflight_reasons.is_empty() {
        let reasons: Vec<String> = r
            .stats
            .preflight_reasons
            .iter()
            .map(|(code, n)| format!("{code} x{n}"))
            .collect();
        println!("pruned  : {}", reasons.join(", "));
    }
    match r.script_text() {
        Some(script) => {
            println!("proof   : {script}");
            match llm_fscq::vernac::loader::replay_proof(env, &thm.stmt, &script) {
                Ok(_) => {
                    println!("replay  : QED (kernel-checked)");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    println!("replay  : FAILED — {e}");
                    ExitCode::FAILURE
                }
            }
        }
        None => {
            println!(
                "outcome : not proved ({})",
                if r.stats.queries >= args.cfg.query_limit {
                    "query limit exhausted"
                } else {
                    "search stuck"
                }
            );
            ExitCode::FAILURE
        }
    }
}
