//! `serapi` — a SerAPI-style s-expression server over stdin/stdout.
//!
//! The paper drives Coq through SerAPI as a subprocess; this binary makes
//! the reproduction drivable the same way. Start it with a theorem name
//! (or a `--stmt` formula), then write one request per line:
//!
//! ```text
//! (Add (at 0) (tactic "intros n"))   ->  (Added 1 ...)
//! (Goals 1)                          ->  (Goals "...")
//! (Cancel 1)                         ->  (Cancelled 1)
//! (Script 2)                         ->  (Script "intros n" ...)
//! ```
//!
//! ```sh
//! serapi add_0_r
//! serapi --stmt "forall n : nat, n = n"
//! echo '(Add (at 0) (tactic "reflexivity"))' | serapi --stmt "0 = 0"
//! ```

use llm_fscq::corpus::Corpus;
use llm_fscq::minicoq::env::Env;
use llm_fscq::minicoq::parse::parse_formula;
use llm_fscq::stm::protocol::handle_line;
use llm_fscq::stm::{ProofSession, SessionConfig};
use std::io::{BufRead, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut session = match args.first().map(String::as_str) {
        Some("--stmt") => {
            let Some(src) = args.get(1) else {
                eprintln!("--stmt needs a formula");
                return ExitCode::from(2);
            };
            let env = Env::with_prelude();
            match parse_formula(&env, src) {
                Ok(f) => ProofSession::new(env, f, SessionConfig::default()),
                Err(e) => {
                    eprintln!("bad statement: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        Some(name) if !name.starts_with('-') => {
            let corpus = Corpus::load();
            let Some(thm) = corpus.dev.theorem(name) else {
                eprintln!("unknown theorem `{name}`");
                return ExitCode::FAILURE;
            };
            ProofSession::new(
                corpus.dev.env_before(thm).clone(),
                thm.stmt.clone(),
                SessionConfig::default(),
            )
        }
        _ => {
            eprintln!("usage: serapi <theorem> | serapi --stmt \"<formula>\"");
            return ExitCode::from(2);
        }
    };

    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    // One request per line, one response per line; EOF ends the session.
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(&mut session, &line);
        if writeln!(stdout, "{response}")
            .and_then(|()| stdout.flush())
            .is_err()
        {
            break;
        }
    }
    ExitCode::SUCCESS
}
