//! Replays every corpus proof through the state-transition machine — the
//! same interface the search uses — rather than through the tactic engine
//! directly. Exercises session bookkeeping (ids, scripts, fuel accounting)
//! at corpus scale.

use llm_fscq::corpus::Corpus;
use llm_fscq::minicoq::parse::split_sentences;
use llm_fscq::stm::{ProofSession, SessionConfig, StateId};

#[test]
fn full_corpus_replays_through_sessions() {
    let corpus = Corpus::load();
    let mut replayed = 0usize;
    for thm in &corpus.dev.theorems {
        let env = corpus.dev.env_before(thm);
        // Linear replay: duplicate detection off (idempotent steps such as
        // a no-op `intros` are legal in scripts), generous fuel.
        let mut session = ProofSession::new(
            env.clone(),
            thm.stmt.clone(),
            SessionConfig {
                tactic_fuel: 50_000_000,
                dedupe_states: false,
                ..Default::default()
            },
        );
        let mut at: StateId = session.root();
        let mut expected_script = Vec::new();
        for sentence in split_sentences(&thm.proof_text) {
            let out = session
                .add(at, &sentence)
                .unwrap_or_else(|e| panic!("{}: `{sentence}`: {e}", thm.name));
            at = out.id;
            expected_script.push(sentence);
        }
        assert!(session.is_proved(at), "{} did not finish", thm.name);
        assert_eq!(session.script_to(at), expected_script, "{}", thm.name);
        assert!(session.fuel_spent() > 0);
        replayed += 1;
    }
    assert!(replayed >= 280, "only {replayed} theorems replayed");
}
