//! End-to-end integration: corpus → prompt → search → metrics, across all
//! workspace crates.

use llm_fscq::corpus::Corpus;
use llm_fscq::metrics::levenshtein::canonical_script;
use llm_fscq::oracle::profiles::ModelProfile;
use llm_fscq::oracle::prompt::{build_prompt, PromptConfig, PromptSetting};
use llm_fscq::oracle::split::{eval_set, hint_set};
use llm_fscq::oracle::SimulatedModel;
use llm_fscq::search::{search, SearchConfig};

#[test]
fn pipeline_proves_and_replays() {
    let corpus = Corpus::load();
    let hints = hint_set(&corpus.dev);
    let mut proved = 0usize;
    let mut checked = 0usize;
    // A spread of easy theorems across the three categories.
    for name in [
        "add_0_l",
        "le_refl",
        "app_nil_l",
        "mflush_nil",
        "replay_log_nil",
        "tl_find_nil",
        "incl_refl",
        "meq_refl",
    ] {
        let thm = corpus.dev.theorem(name).expect("theorem exists");
        let env = corpus.dev.env_before(thm);
        let prompt = build_prompt(&corpus.dev, thm, &hints, &PromptConfig::hints());
        let mut model = SimulatedModel::new(ModelProfile::gpt4o());
        let r = search(
            env,
            &thm.stmt,
            &thm.name,
            &mut model,
            &prompt,
            &SearchConfig::default(),
        );
        checked += 1;
        if let Some(script) = r.script_text() {
            proved += 1;
            // Every found proof must replay through the kernel.
            llm_fscq::vernac::loader::replay_proof(env, &thm.stmt, &script)
                .unwrap_or_else(|e| panic!("{name}: unsound search result: {e}"));
        }
    }
    assert!(
        proved * 2 >= checked,
        "only {proved}/{checked} easy theorems proved"
    );
}

#[test]
fn searches_are_reproducible_across_runs() {
    let corpus = Corpus::load();
    let hints = hint_set(&corpus.dev);
    let eval = eval_set(&corpus.dev);
    for &i in eval.iter().take(6) {
        let thm = &corpus.dev.theorems[i];
        let env = corpus.dev.env_before(thm);
        let prompt = build_prompt(&corpus.dev, thm, &hints, &PromptConfig::hints());
        let run = |qi: u32| {
            let _ = qi;
            let mut model = SimulatedModel::new(ModelProfile::gemini_flash());
            search(
                env,
                &thm.stmt,
                &thm.name,
                &mut model,
                &prompt,
                &SearchConfig::default(),
            )
        };
        let a = run(0);
        let b = run(1);
        assert_eq!(a.outcome, b.outcome, "{}", thm.name);
        assert_eq!(a.stats.queries, b.stats.queries, "{}", thm.name);
        assert_eq!(a.stats.valid_tactics, b.stats.valid_tactics, "{}", thm.name);
    }
}

#[test]
fn vanilla_prompts_never_leak_proofs() {
    let corpus = Corpus::load();
    let hints = hint_set(&corpus.dev);
    let eval = eval_set(&corpus.dev);
    for &i in eval.iter().take(10) {
        let thm = &corpus.dev.theorems[i];
        let vanilla = build_prompt(
            &corpus.dev,
            thm,
            &hints,
            &PromptConfig {
                setting: PromptSetting::Vanilla,
                window: None,
                minimal: false,
                retrieval: None,
            },
        );
        assert!(vanilla.hint_scripts.is_empty());
        // The theorem's own human proof must never appear in any prompt.
        let hinted = build_prompt(&corpus.dev, thm, &hints, &PromptConfig::hints());
        let own = canonical_script(&thm.proof_text);
        if own.len() > 25 {
            assert!(
                !canonical_script(&hinted.text).contains(&own),
                "{}'s own proof leaked into its prompt",
                thm.name
            );
        }
        for (name, _) in &hinted.hint_scripts {
            assert_ne!(name, &thm.name);
            assert!(hints.contains(name));
        }
    }
}

#[test]
fn query_limit_is_respected_everywhere() {
    let corpus = Corpus::load();
    let hints = hint_set(&corpus.dev);
    let thm = corpus.dev.theorem("ptsto_upd").expect("hard theorem");
    let env = corpus.dev.env_before(thm);
    let prompt = build_prompt(&corpus.dev, thm, &hints, &PromptConfig::hints());
    for limit in [1, 8, 32] {
        let mut model = SimulatedModel::new(ModelProfile::gpt4o());
        let cfg = SearchConfig {
            query_limit: limit,
            ..Default::default()
        };
        let r = search(env, &thm.stmt, &thm.name, &mut model, &prompt, &cfg);
        assert!(r.stats.queries <= limit);
    }
}
