//! Tests of the simulated model's load-bearing mechanisms: positional
//! attention ("lost in the middle") and the hint channels. These are the
//! mechanisms DESIGN.md credits for Figure 1b and the hint uplift, so they
//! are pinned here independently of end-to-end coverage numbers.

use llm_fscq::corpus::Corpus;
use llm_fscq::minicoq::goal::ProofState;
use llm_fscq::oracle::profiles::ModelProfile;
use llm_fscq::oracle::prompt::{build_prompt, PromptConfig};
use llm_fscq::oracle::split::hint_set;
use llm_fscq::oracle::{QueryCtx, SimulatedModel, TacticModel};

/// Counts lemma-directed proposals (apply/rewrite of a known lemma) whose
/// target lemma sits in the given region of the prompt.
fn lemma_proposals_by_region(sample: usize) -> (usize, usize) {
    let corpus = Corpus::load();
    let hints = hint_set(&corpus.dev);
    let mut near = 0usize;
    let mut far = 0usize;
    for thm in corpus.dev.theorems.iter().rev().take(sample) {
        let env = corpus.dev.env_before(thm);
        let prompt = build_prompt(&corpus.dev, thm, &hints, &PromptConfig::hints());
        let n = prompt.visible_lemmas.len();
        if n < 20 {
            continue;
        }
        let st = ProofState::new(thm.stmt.clone());
        let mut model = SimulatedModel::new(ModelProfile::gpt4o());
        for qi in 0..6 {
            let ctx = QueryCtx {
                prompt: &prompt,
                state: &st,
                env,
                path: &[],
                theorem: &thm.name,
                query_index: qi,
            };
            for p in model.propose(&ctx, 8) {
                let name = p
                    .tactic
                    .strip_prefix("apply ")
                    .or_else(|| p.tactic.strip_prefix("rewrite "))
                    .map(|s| s.split_whitespace().next().unwrap_or(""))
                    .unwrap_or("");
                if let Some(pos) = prompt.visible_lemmas.iter().position(|l| l == name) {
                    if pos * 2 >= n {
                        near += 1; // Second half of the prompt: close to the goal.
                    } else {
                        far += 1;
                    }
                }
            }
        }
    }
    (near, far)
}

#[test]
fn attention_prefers_lemmas_near_the_goal() {
    // Deep theorems see hundreds of lemmas; the positional-attention
    // mechanism must make near-goal lemmas dominate the proposals.
    let (near, far) = lemma_proposals_by_region(60);
    assert!(
        near + far >= 20,
        "not enough lemma-directed proposals to judge ({near}+{far})"
    );
    assert!(
        near > far,
        "near-goal lemmas should dominate: near={near}, far={far}"
    );
}

#[test]
fn hint_scripts_change_proposals() {
    // The hint channels (frequency, bigram, retrieval) must make the
    // hinted and vanilla proposal streams differ for most theorems.
    let corpus = Corpus::load();
    let hints = hint_set(&corpus.dev);
    let mut differing = 0usize;
    let mut total = 0usize;
    for thm in corpus.dev.theorems.iter().take(40) {
        let env = corpus.dev.env_before(thm);
        let hinted = build_prompt(&corpus.dev, thm, &hints, &PromptConfig::hints());
        if hinted.hint_scripts.is_empty() {
            continue;
        }
        let vanilla = build_prompt(&corpus.dev, thm, &hints, &PromptConfig::vanilla());
        let st = ProofState::new(thm.stmt.clone());
        let propose = |prompt| {
            let mut model = SimulatedModel::new(ModelProfile::gemini_pro());
            let ctx = QueryCtx {
                prompt,
                state: &st,
                env,
                path: &[],
                theorem: &thm.name,
                query_index: 0,
            };
            model
                .propose(&ctx, 8)
                .into_iter()
                .map(|p| p.tactic)
                .collect::<Vec<_>>()
        };
        total += 1;
        if propose(&hinted) != propose(&vanilla) {
            differing += 1;
        }
    }
    assert!(total >= 20);
    assert!(
        differing * 3 >= total * 2,
        "hints barely affect proposals: {differing}/{total}"
    );
}
