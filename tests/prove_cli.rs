//! Drives the `prove` binary end to end: exit codes, output shape, and the
//! kernel-replay line a downstream user would script against.

use std::process::Command;

fn prove(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_prove"))
        .args(args)
        .output()
        .expect("spawn prove");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn proves_a_theorem_and_replays_it() {
    let (ok, text) = prove(&["ndata_log_padded_log", "--model", "gpt4o"]);
    assert!(ok, "{text}");
    assert!(text.contains("proof   :"), "{text}");
    assert!(text.contains("QED (kernel-checked)"), "{text}");
}

#[test]
fn failure_exits_nonzero_with_the_outcome() {
    // A one-query budget cannot prove anything beyond a lucky root close.
    let (ok, text) = prove(&["incl_tl_inv", "--model", "mini", "--limit", "1"]);
    assert!(!ok, "{text}");
    assert!(text.contains("not proved"), "{text}");
}

#[test]
fn unknown_theorem_is_a_clean_error() {
    let (ok, text) = prove(&["definitely_not_a_theorem"]);
    assert!(!ok);
    assert!(text.contains("unknown theorem"), "{text}");
}

#[test]
fn bad_flags_print_usage() {
    let (ok, text) = prove(&["add_0_l", "--model", "gpt5"]);
    assert!(!ok);
    assert!(text.contains("usage:"), "{text}");
}

#[test]
fn retrieval_flag_prunes_the_prompt() {
    let (_, full) = prove(&["write_buffers", "--model", "gpt4o"]);
    let (ok, pruned) = prove(&["write_buffers", "--model", "gpt4o", "--retrieval", "16"]);
    let lemmas = |s: &str| {
        s.lines()
            .find(|l| l.contains("lemmas"))
            .and_then(|l| {
                l.split("tokens / ")
                    .nth(1)?
                    .split_whitespace()
                    .next()?
                    .parse::<usize>()
                    .ok()
            })
            .unwrap_or(usize::MAX)
    };
    assert!(lemmas(&pruned) <= 16, "{pruned}");
    assert!(lemmas(&pruned) < lemmas(&full), "{pruned}\n{full}");
    // This particular theorem is the motivating case: retrieval wins.
    assert!(ok, "{pruned}");
}

#[test]
fn show_query_prints_the_payload() {
    let (_, text) = prove(&["add_0_l", "--show-query", "--limit", "2"]);
    assert!(text.contains("--- query payload ---"), "{text}");
    assert!(text.contains("Next tactic:"), "{text}");
    assert!(text.contains("Current proof state"), "{text}");
}
