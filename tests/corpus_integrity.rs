//! Corpus integrity: every human proof checks, and the corpus has the
//! structural properties the evaluation depends on.

use llm_fscq::corpus::{Category, Corpus};
use llm_fscq::oracle::split::{eval_set, eval_set_small, hint_set};
use llm_fscq::oracle::tokenizer::{bin_of, count_tokens};

#[test]
fn every_human_proof_replays() {
    // The strictest corpus test: replay all 238 proofs through the kernel.
    let corpus = Corpus::load_checked().unwrap_or_else(|e| panic!("corpus broken: {e}"));
    assert!(corpus.len() >= 200, "corpus shrank to {}", corpus.len());
}

#[test]
fn corpus_has_the_papers_shape() {
    let corpus = Corpus::load();
    let n = corpus.len();

    // All three categories are populated, with Utilities the largest (as
    // in FSCQ).
    let mut by_cat = [0usize; 3];
    for t in &corpus.dev.theorems {
        by_cat[corpus.category_of(t) as usize] += 1;
    }
    assert!(by_cat.iter().all(|c| *c >= 20), "{by_cat:?}");
    assert!(by_cat[Category::Utilities as usize] >= by_cat[Category::FileSystem as usize]);

    // A long-tailed length distribution: most proofs are short, but the
    // upper bins are inhabited.
    let mut bins = [0usize; 7];
    for t in &corpus.dev.theorems {
        bins[bin_of(count_tokens(&t.proof_text))] += 1;
    }
    assert!(bins[0] > 0 && bins[1] > 0 && bins[2] > 0 && bins[3] > 0);
    assert!(bins[4] + bins[5] + bins[6] > 0, "no long proofs: {bins:?}");
    let under64: usize = bins[..3].iter().sum();
    let share = under64 as f64 / n as f64;
    assert!(
        (0.5..0.95).contains(&share),
        "under-64-token share {share:.2} out of range"
    );
}

#[test]
fn hint_split_and_samples_are_consistent() {
    let corpus = Corpus::load();
    let hints = hint_set(&corpus.dev);
    let eval = eval_set(&corpus.dev);
    let small = eval_set_small(&corpus.dev);
    assert_eq!(hints.len() + eval.len(), corpus.len());
    assert!(small.len() < eval.len());
    for i in &small {
        assert!(eval.contains(i), "sampled theorem outside the eval set");
    }
    // Stability: the same split on a fresh load.
    let again = Corpus::load();
    assert_eq!(hints, hint_set(&again.dev));
    assert_eq!(eval, eval_set(&again.dev));
}

#[test]
fn env_before_hides_the_future() {
    let corpus = Corpus::load();
    // For a mid-corpus theorem, earlier lemmas are visible and later ones
    // are not — the environment a prover legitimately has.
    let t = corpus.dev.theorem("incl_tl_inv").unwrap();
    let env = corpus.dev.env_before(t);
    assert!(env.lemma("incl_cons_inv").is_some());
    assert!(env.lemma("in_eq").is_some());
    assert!(env.lemma("incl_tl_inv").is_none());
    assert!(env.lemma("ptsto_valid").is_none());
    // The final environment has everything.
    assert!(corpus.dev.env.lemma("incl_tl_inv").is_some());
    assert!(corpus.dev.env.lemma("ptsto_valid").is_some());
}

#[test]
fn figure2_case_lemmas_exist() {
    let corpus = Corpus::load();
    for name in [
        "incl_tl_inv",
        "ndata_log_padded_log",
        "tree_name_distinct_head",
    ] {
        assert!(corpus.dev.theorem(name).is_some(), "{name} missing");
    }
}

#[test]
fn cached_grid_if_present_parses_and_matches_the_corpus() {
    // The experiment cache must stay readable by the current schema; a
    // fresh clone (no cache) skips this check.
    let path = std::path::Path::new("target/experiments/main_grid.json");
    let Ok(json) = std::fs::read_to_string(path) else {
        return;
    };
    let rs = llm_fscq::metrics::report::ResultSet::from_json(&json)
        .expect("stale cache: delete target/experiments/main_grid.json");
    let corpus = Corpus::load();
    for cell in &rs.cells {
        assert!(!cell.outcomes.is_empty(), "{}", cell.label);
        for o in &cell.outcomes {
            assert!(
                corpus.dev.theorem(&o.name).is_some(),
                "cached outcome for unknown theorem {}",
                o.name
            );
        }
    }
}

#[test]
fn every_statement_pretty_prints_and_reparses() {
    // Corpus-scale printer round-trip: the rendered form of every theorem
    // statement must reparse to an alpha-equal formula in its own
    // environment. The prompt builder and the goal display both lean on
    // this.
    let corpus = Corpus::load();
    let mut ok = 0usize;
    for thm in &corpus.dev.theorems {
        let env = corpus.dev.env_before(thm);
        let printed = llm_fscq::minicoq::pretty::formula_to_string(&thm.stmt);
        match llm_fscq::minicoq::parse::parse_formula(env, &printed) {
            Ok(back) => {
                assert_eq!(
                    llm_fscq::minicoq::statehash::formula_key(&thm.stmt),
                    llm_fscq::minicoq::statehash::formula_key(&back),
                    "{}: round-trip changed the statement",
                    thm.name
                );
                ok += 1;
            }
            Err(e) => {
                // The one information the printer cannot reconstruct is a
                // sort ascription on an empty-list literal (the source
                // wrote `(nil : list A)`); anything else is a bug.
                assert!(
                    printed.contains("[]") || printed.contains("nil"),
                    "{}: `{printed}`: {e}",
                    thm.name
                );
            }
        }
    }
    assert!(
        ok * 100 >= corpus.len() * 95,
        "only {ok}/{} statements round-trip",
        corpus.len()
    );
}

#[test]
fn every_proof_splits_into_parseable_first_sentences() {
    // The first sentence of each human proof must parse against the fresh
    // goal — the property hint-script head-word statistics rely on.
    let corpus = Corpus::load();
    let mut checked = 0;
    for thm in &corpus.dev.theorems {
        let env = corpus.dev.env_before(thm);
        let sents = llm_fscq::minicoq::parse::split_sentences(&thm.proof_text);
        assert!(!sents.is_empty(), "{} has an empty proof", thm.name);
        let st = llm_fscq::minicoq::goal::ProofState::new(thm.stmt.clone());
        if llm_fscq::minicoq::parse::parse_tactic(env, st.focused(), &sents[0]).is_ok() {
            checked += 1;
        }
    }
    // Virtually all first sentences parse standalone (a handful use
    // notations that need the post-intro context).
    assert!(
        checked * 100 >= corpus.len() * 95,
        "only {checked}/{} first sentences parse",
        corpus.len()
    );
}
