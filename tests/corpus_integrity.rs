//! Corpus integrity: every human proof checks, and the corpus has the
//! structural properties the evaluation depends on.
//!
//! The per-theorem checks are corpus-agnostic ([`check_statement_round_trips`]
//! and friends take any loaded [`Development`]): they run over the embedded
//! FSCQ-lite corpus, over the pinned-seed generated fixture corpus
//! (`fixtures/gen_1k.json`, rebuilt in-test — sources are never committed),
//! and, when `CORPUS_DIR` points at a directory written by
//! `gen generate`, over that external corpus too.

use llm_fscq::corpus::{Category, Corpus};
use llm_fscq::oracle::split::{eval_set, eval_set_small, hint_set};
use llm_fscq::oracle::tokenizer::{bin_of, count_tokens};
use llm_fscq::vernac::Development;

#[test]
fn every_human_proof_replays() {
    // The strictest corpus test: replay all 238 proofs through the kernel.
    let corpus = Corpus::load_checked().unwrap_or_else(|e| panic!("corpus broken: {e}"));
    assert!(corpus.len() >= 200, "corpus shrank to {}", corpus.len());
}

#[test]
fn corpus_has_the_papers_shape() {
    let corpus = Corpus::load();
    let n = corpus.len();

    // All three categories are populated, with Utilities the largest (as
    // in FSCQ).
    let mut by_cat = [0usize; 3];
    for t in &corpus.dev.theorems {
        by_cat[corpus.category_of(t) as usize] += 1;
    }
    assert!(by_cat.iter().all(|c| *c >= 20), "{by_cat:?}");
    assert!(by_cat[Category::Utilities as usize] >= by_cat[Category::FileSystem as usize]);

    // A long-tailed length distribution: most proofs are short, but the
    // upper bins are inhabited.
    let mut bins = [0usize; 7];
    for t in &corpus.dev.theorems {
        bins[bin_of(count_tokens(&t.proof_text))] += 1;
    }
    assert!(bins[0] > 0 && bins[1] > 0 && bins[2] > 0 && bins[3] > 0);
    assert!(bins[4] + bins[5] + bins[6] > 0, "no long proofs: {bins:?}");
    let under64: usize = bins[..3].iter().sum();
    let share = under64 as f64 / n as f64;
    assert!(
        (0.5..0.95).contains(&share),
        "under-64-token share {share:.2} out of range"
    );
}

#[test]
fn hint_split_and_samples_are_consistent() {
    let corpus = Corpus::load();
    let hints = hint_set(&corpus.dev);
    let eval = eval_set(&corpus.dev);
    let small = eval_set_small(&corpus.dev);
    assert_eq!(hints.len() + eval.len(), corpus.len());
    assert!(small.len() < eval.len());
    for i in &small {
        assert!(eval.contains(i), "sampled theorem outside the eval set");
    }
    // Stability: the same split on a fresh load.
    let again = Corpus::load();
    assert_eq!(hints, hint_set(&again.dev));
    assert_eq!(eval, eval_set(&again.dev));
}

#[test]
fn env_before_hides_the_future() {
    let corpus = Corpus::load();
    // For a mid-corpus theorem, earlier lemmas are visible and later ones
    // are not — the environment a prover legitimately has.
    let t = corpus.dev.theorem("incl_tl_inv").unwrap();
    let env = corpus.dev.env_before(t);
    assert!(env.lemma("incl_cons_inv").is_some());
    assert!(env.lemma("in_eq").is_some());
    assert!(env.lemma("incl_tl_inv").is_none());
    assert!(env.lemma("ptsto_valid").is_none());
    // The final environment has everything.
    assert!(corpus.dev.env.lemma("incl_tl_inv").is_some());
    assert!(corpus.dev.env.lemma("ptsto_valid").is_some());
}

#[test]
fn figure2_case_lemmas_exist() {
    let corpus = Corpus::load();
    for name in [
        "incl_tl_inv",
        "ndata_log_padded_log",
        "tree_name_distinct_head",
    ] {
        assert!(corpus.dev.theorem(name).is_some(), "{name} missing");
    }
}

#[test]
fn cached_grid_if_present_parses_and_matches_the_corpus() {
    // The experiment cache must stay readable by the current schema; a
    // fresh clone (no cache) skips this check.
    let path = std::path::Path::new("target/experiments/main_grid.json");
    let Ok(json) = std::fs::read_to_string(path) else {
        return;
    };
    let rs = llm_fscq::metrics::report::ResultSet::from_json(&json)
        .expect("stale cache: delete target/experiments/main_grid.json");
    let corpus = Corpus::load();
    for cell in &rs.cells {
        assert!(!cell.outcomes.is_empty(), "{}", cell.label);
        for o in &cell.outcomes {
            assert!(
                corpus.dev.theorem(&o.name).is_some(),
                "cached outcome for unknown theorem {}",
                o.name
            );
        }
    }
}

/// Corpus-agnostic check: the rendered form of every theorem statement
/// must reparse to an alpha-equal formula in its own environment. The
/// prompt builder and the goal display both lean on this. Returns the
/// round-tripped count; tolerated misses must involve empty-list literals
/// (the one form the printer cannot reconstruct).
fn check_statement_round_trips(dev: &Development, ctx: &str) -> usize {
    let mut ok = 0usize;
    for thm in &dev.theorems {
        let env = dev.env_before(thm);
        let printed = llm_fscq::minicoq::pretty::formula_to_string(&thm.stmt);
        match llm_fscq::minicoq::parse::parse_formula(env, &printed) {
            Ok(back) => {
                assert_eq!(
                    llm_fscq::minicoq::statehash::formula_key(&thm.stmt),
                    llm_fscq::minicoq::statehash::formula_key(&back),
                    "{ctx}: {}: round-trip changed the statement",
                    thm.name
                );
                ok += 1;
            }
            Err(e) => {
                // The one information the printer cannot reconstruct is a
                // sort ascription on an empty-list literal (the source
                // wrote `(nil : list A)`); anything else is a bug.
                assert!(
                    printed.contains("[]") || printed.contains("nil"),
                    "{ctx}: {}: `{printed}`: {e}",
                    thm.name
                );
            }
        }
    }
    ok
}

/// Corpus-agnostic check: the first sentence of each human proof must
/// parse against the fresh goal — the property hint-script head-word
/// statistics rely on. Returns how many did.
fn check_first_sentences_parse(dev: &Development, ctx: &str) -> usize {
    let mut checked = 0;
    for thm in &dev.theorems {
        let env = dev.env_before(thm);
        let sents = llm_fscq::minicoq::parse::split_sentences(&thm.proof_text);
        assert!(!sents.is_empty(), "{ctx}: {} has an empty proof", thm.name);
        let st = llm_fscq::minicoq::goal::ProofState::new(thm.stmt.clone());
        if llm_fscq::minicoq::parse::parse_tactic(env, st.focused(), &sents[0]).is_ok() {
            checked += 1;
        }
    }
    checked
}

#[test]
fn every_statement_pretty_prints_and_reparses() {
    let corpus = Corpus::load();
    let ok = check_statement_round_trips(&corpus.dev, "embedded");
    assert!(
        ok * 100 >= corpus.len() * 95,
        "only {ok}/{} statements round-trip",
        corpus.len()
    );
}

#[test]
fn every_proof_splits_into_parseable_first_sentences() {
    let corpus = Corpus::load();
    let checked = check_first_sentences_parse(&corpus.dev, "embedded");
    // Virtually all first sentences parse standalone (a handful use
    // notations that need the post-intro context).
    assert!(
        checked * 100 >= corpus.len() * 95,
        "only {checked}/{} first sentences parse",
        corpus.len()
    );
}

/// The checked-in fixture: spec plus the invariants the rebuilt corpus
/// must reproduce.
fn gen_1k_fixture() -> (llm_fscq::gen::GenSpec, usize, usize, String) {
    let text = std::fs::read_to_string("fixtures/gen_1k.json").expect("fixtures/gen_1k.json");
    let v: serde_json::Value = serde_json::from_str(&text).expect("fixture parses");
    let field = |obj: &serde_json::Value, key: &str| -> serde_json::Value {
        obj.as_object()
            .expect("fixture object")
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("fixture missing `{key}`"))
            .1
            .clone()
    };
    let spec_json = serde_json::to_string(&field(&v, "spec")).expect("spec renders");
    let spec: llm_fscq::gen::GenSpec = serde_json::from_str(&spec_json).expect("fixture spec");
    let expected = field(&v, "expected");
    let int = |key: &str| match field(&expected, key) {
        serde_json::Value::Int(i) => i as usize,
        other => panic!("fixture `{key}`: expected integer, got {other:?}"),
    };
    let fingerprint = match field(&expected, "fingerprint") {
        serde_json::Value::Str(s) => s,
        other => panic!("fixture fingerprint: {other:?}"),
    };
    (spec, int("count"), int("modules"), fingerprint)
}

#[test]
fn generated_fixture_corpus_rebuilds_and_passes_integrity() {
    // The 1k-theorem corpus is pinned by seed, not by committed sources:
    // rebuild it and hold it to the same bar as the embedded corpus.
    let (spec, count, modules, fingerprint) = gen_1k_fixture();
    let corpus = llm_fscq::gen::generate(&spec);
    assert_eq!(corpus.manifest.count, count, "fixture corpus size drifted");
    assert_eq!(corpus.manifest.modules, modules);
    assert_eq!(
        corpus.manifest.fingerprint, fingerprint,
        "generator output drifted from the pinned fixture — if the change \
         is intentional, regenerate fixtures/gen_1k.json"
    );
    let report = llm_fscq::gen::validate(&corpus);
    assert!(
        report.is_clean(),
        "witness validation failed: {:?}",
        report.failures
    );
    assert_eq!(report.replayed, count);
    // Per-module integrity, same checks as the embedded corpus — and for
    // generated modules there is no tolerated miss.
    for (name, src) in &corpus.modules {
        let mut loader = llm_fscq::vernac::Loader::new().check_proofs(false);
        loader.add_source(name.clone(), src.clone());
        let dev = loader.load().unwrap_or_else(|e| panic!("{name}: {e}"));
        let n = dev.theorems.len();
        assert_eq!(check_statement_round_trips(&dev, name), n);
        assert_eq!(check_first_sentences_parse(&dev, name), n);
    }
}

#[test]
fn external_corpus_dir_passes_integrity_when_set() {
    // The directory-argument entry point: point CORPUS_DIR at any corpus
    // written by `gen generate` and the integrity suite covers it.
    let Ok(dir) = std::env::var("CORPUS_DIR") else {
        return;
    };
    let corpus = llm_fscq::gen::read_dir(std::path::Path::new(&dir))
        .unwrap_or_else(|e| panic!("CORPUS_DIR={dir}: {e}"));
    let report = llm_fscq::gen::validate(&corpus);
    assert!(
        report.is_clean(),
        "CORPUS_DIR={dir}: validation failed: {:?}",
        report.failures
    );
    for (name, src) in &corpus.modules {
        let mut loader = llm_fscq::vernac::Loader::new().check_proofs(false);
        loader.add_source(name.clone(), src.clone());
        let dev = loader.load().unwrap_or_else(|e| panic!("{name}: {e}"));
        let n = dev.theorems.len();
        assert_eq!(check_statement_round_trips(&dev, name), n);
        assert_eq!(check_first_sentences_parse(&dev, name), n);
    }
}
