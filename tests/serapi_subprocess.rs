//! Drives the `serapi` binary as a subprocess over stdin/stdout — the
//! interaction mode the paper uses against the real Coq (SerAPI). This is
//! the deployment-shaped test: a client that only speaks s-expressions
//! over pipes can add tactics, read goals, cancel, and extract scripts.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

fn run_session(args: &[&str], requests: &[&str]) -> Vec<String> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serapi"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serapi");
    {
        let stdin = child.stdin.as_mut().expect("stdin");
        for r in requests {
            writeln!(stdin, "{r}").expect("write request");
        }
    }
    drop(child.stdin.take());
    let stdout = child.stdout.take().expect("stdout");
    let lines: Vec<String> = BufReader::new(stdout)
        .lines()
        .map(|l| l.expect("read response"))
        .collect();
    let status = child.wait().expect("wait");
    assert!(status.success(), "serapi exited with {status}");
    assert_eq!(
        lines.len(),
        requests.len(),
        "one response per request: {lines:?}"
    );
    lines
}

#[test]
fn proves_an_ad_hoc_statement_over_pipes() {
    let out = run_session(
        &["--stmt", "forall n : nat, n = n"],
        &[
            r#"(Add (at 0) (tactic "intros n"))"#,
            r#"(Add (at 1) (tactic "reflexivity"))"#,
            "(Script 2)",
        ],
    );
    assert!(out[0].contains("Added"), "{}", out[0]);
    assert!(out[1].contains("Proved"), "{}", out[1]);
    assert!(
        out[2].contains("intros n") && out[2].contains("reflexivity"),
        "{}",
        out[2]
    );
}

#[test]
fn proves_a_corpus_theorem_with_its_human_script() {
    // add_0_l's human proof is a simple reflexivity after intros.
    let out = run_session(
        &["add_0_l"],
        &[
            r#"(Add (at 0) (tactic "intros n"))"#,
            r#"(Add (at 1) (tactic "reflexivity"))"#,
        ],
    );
    assert!(out[1].contains("Proved"), "{}", out[1]);
}

#[test]
fn rejections_cancellation_and_goals_round_trip() {
    let out = run_session(
        &["--stmt", "0 = 0 /\\ 1 = 1"],
        &[
            r#"(Add (at 0) (tactic "apply bogus"))"#,
            r#"(Add (at 0) (tactic "split"))"#,
            "(Goals 1)",
            "(Cancel 1)",
            r#"(Add (at 1) (tactic "reflexivity"))"#,
            "(nonsense request)",
        ],
    );
    assert!(
        out[0].contains("Error") || out[0].contains("Rejected"),
        "{}",
        out[0]
    );
    assert!(out[1].contains("Added"), "{}", out[1]);
    assert!(out[2].contains("0 = 0"), "{}", out[2]);
    assert!(out[3].contains("Cancel"), "{}", out[3]);
    // State 1 was cancelled; extending it must fail.
    assert!(
        out[4].contains("Error") || out[4].contains("NoSuchState"),
        "{}",
        out[4]
    );
    assert!(out[5].contains("Error"), "{}", out[5]);
}

#[test]
fn bad_invocation_fails_cleanly() {
    let status = Command::new(env!("CARGO_BIN_EXE_serapi"))
        .arg("no_such_theorem_xyz")
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn");
    assert!(!status.success());
}
